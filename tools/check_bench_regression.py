#!/usr/bin/env python
"""Gate bench regressions against committed BENCH_*.json baselines.

CI regenerates the smoke benches (serving, compile, faults) into a scratch
directory and then runs this script to diff the fresh metrics against the
baselines committed at the repo root.  Only *deterministic, scale-free*
metrics are gated -- kernel-launch counts, shed/failure fractions, numeric
parity -- because wall-clock style numbers (epoch times, speedups) vary with
the host and would make the gate flaky.

A metric regresses when it moves in the "worse" direction by more than
``--tolerance`` (relative, default 10%) past a small absolute floor that
keeps zero-valued baselines from tripping on noise.

Exit status: 0 when every gated metric holds, 1 when anything regressed,
2 on usage errors (missing files, malformed JSON).

Usage::

    python tools/check_bench_regression.py --baseline-dir . --current-dir out/
    python tools/check_bench_regression.py \
        --baseline BENCH_compile.json --current out/BENCH_compile.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Bench files the directory mode looks for.
BENCH_FILES = ("BENCH_serving.json", "BENCH_compile.json", "BENCH_faults.json",
               "BENCH_overlap.json", "BENCH_scale.json", "BENCH_scaling.json",
               "BENCH_ops.json", "BENCH_fleet.json")

#: Gated metrics per experiment kind: (metric, direction, absolute floor).
#: ``lower`` means a larger current value is a regression; ``higher`` the
#: reverse; ``exact`` must match the baseline bit for bit.
COMPILE_METRICS = (
    ("eager_launches_per_step", "lower", 0.5),
    ("compiled_launches_per_step", "lower", 0.5),
    ("guard_failures", "lower", 0.5),
    ("parity", "exact", 0.0),
)
SERVING_METRICS = (
    ("shed_fraction", "lower", 0.01),
    ("completed", "higher", 0.5),
)
FAULTS_METRICS = (
    ("goodput", "higher", 1.0),
    ("p99", "lower", 1e-4),
    ("failed_fraction", "lower", 0.01),
)
#: Overlap cells are fully deterministic (simulated clock), so numeric
#: parity and projection convergence gate exactly; the epoch speedup only
#: guards against losing the overlap win outright.
OVERLAP_METRICS = (
    ("parity", "exact", 0.0),
    ("within_projection", "exact", 0.0),
    ("speedup", "higher", 0.01),
)
#: Scale cells run on the simulated clock and a capped memory pool, so
#: all three sections are deterministic: the fit/parity booleans gate
#: exactly, the accuracy gap and throughput within the relative tolerance.
SCALE_TRAINING_METRICS = (
    ("under_cap", "exact", 0.0),
    ("full_graph_exceeds_cap", "exact", 0.0),
    ("epochs_per_sec", "higher", 0.01),
)
SCALE_PARITY_METRICS = (
    ("within_tolerance", "exact", 0.0),
    ("gap", "lower", 0.005),
)
SCALE_PARTITIONED_METRICS = (
    ("under_cap", "exact", 0.0),
    ("test_acc", "higher", 0.01),
)
#: DDP scaling cells are deterministic (simulated clock + modelled
#: fabric): the beat-the-baseline boolean and collective count gate
#: exactly, the speedup within the relative tolerance so cost-model
#: tweaks that shift both curves together do not trip the gate.
SCALING_CELL_METRICS = (
    ("beats_dataparallel", "exact", 0.0),
    ("collectives", "exact", 0.0),
    ("speedup_vs_dp", "higher", 0.05),
)
SCALING_PARITY_METRICS = (
    ("loss_bitwise_identical", "exact", 0.0),
    ("test_acc_equal", "exact", 0.0),
)
#: Operation-level cells run entirely on the simulated clock, so the
#: roofline classification and launch counts gate exactly-ish (``lower``
#: lets launch-count *improvements* through) and the wall clock within
#: the relative tolerance — a >10% op slowdown or any bound-class flip
#: (e.g. a kernel sliding from bandwidth- to launch-bound) fails CI.
OPS_METRICS = (
    ("bound", "exact", 0.0),
    ("launches", "lower", 0.5),
    ("wall_time", "lower", 1e-7),
)
#: Fleet cells run on the simulated clock from seeded traffic, routing
#: and chaos streams, so goodput/completed/p99 are deterministic and gate
#: within the relative tolerance; the per-tenant no-silent-loss invariant
#: gates exactly (any silent drop fails CI regardless of magnitude).
FLEET_METRICS = (
    ("goodput", "higher", 1.0),
    ("completed", "higher", 0.5),
    ("p99", "lower", 1e-4),
    ("no_silent_loss", "exact", 0.0),
)


@dataclass
class Regression:
    """One gated metric that moved the wrong way."""

    label: str
    metric: str
    baseline: object
    current: object
    note: str = ""

    def render(self) -> str:
        detail = f"baseline={_fmt(self.baseline)} -> current={_fmt(self.current)}"
        delta = self._relative_delta()
        if delta is not None:
            detail += f"  ({delta:+.1%})"
        if self.note:
            detail += f"  [{self.note}]"
        return f"  {self.label}  {self.metric}: {detail}"

    def _relative_delta(self) -> Optional[float]:
        """Relative move of current vs baseline, when both are numeric."""
        if isinstance(self.baseline, bool) or isinstance(self.current, bool):
            return None
        if not isinstance(self.baseline, (int, float)) or not isinstance(
                self.current, (int, float)):
            return None
        if self.baseline == 0:
            return None
        return (self.current - self.baseline) / abs(self.baseline)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value) if isinstance(value, str) else str(value)


def _is_worse(direction: str, baseline: float, current: float,
              tolerance: float, floor: float) -> bool:
    if direction == "exact":
        return current != baseline
    delta = current - baseline if direction == "lower" else baseline - current
    return delta > max(tolerance * abs(baseline), floor)


def _check_metrics(label: str, metrics: Sequence[Tuple[str, str, float]],
                   baseline: Dict, current: Dict,
                   tolerance: float) -> List[Regression]:
    out: List[Regression] = []
    for metric, direction, floor in metrics:
        if metric not in baseline:
            continue  # older baseline predates this metric: nothing to gate
        if metric not in current:
            out.append(Regression(label, metric, baseline[metric], None,
                                  "metric missing from current run"))
            continue
        if _is_worse(direction, baseline[metric], current[metric],
                     tolerance, floor):
            out.append(Regression(label, metric, baseline[metric],
                                  current[metric]))
    return out


def _serving_view(entry: Dict) -> Dict:
    n = max(entry.get("n_requests", 0), 1)
    return {
        "shed_fraction": entry.get("shed", 0) / n,
        "completed": entry.get("completed", 0),
    }


def _faults_view(cell: Dict) -> Dict:
    n = max(cell.get("n_requests", 0), 1)
    view = {"failed_fraction": cell.get("failed", 0) / n}
    for key in ("goodput", "p99"):
        if key in cell:
            view[key] = cell[key]
    return view


def check_compile(baseline: Dict, current: Dict,
                  tolerance: float) -> List[Regression]:
    def by_key(doc: Dict) -> Dict[Tuple[str, str, str], Dict]:
        return {(c["framework"], c["model"], c["dataset"]): c
                for c in doc.get("cells", [])}

    base_cells, cur_cells = by_key(baseline), by_key(current)
    out: List[Regression] = []
    for key, cell in sorted(base_cells.items()):
        label = "compile[%s/%s/%s]" % key
        if key not in cur_cells:
            out.append(Regression(label, "cell", "present", None,
                                  "cell missing from current run"))
            continue
        out.extend(_check_metrics(label, COMPILE_METRICS, cell,
                                  cur_cells[key], tolerance))
    return out


def check_overlap(baseline: Dict, current: Dict,
                  tolerance: float) -> List[Regression]:
    def by_key(doc: Dict) -> Dict[Tuple[str, str, str, bool], Dict]:
        return {(c["framework"], c["model"], c["dataset"], c["compiled"]): c
                for c in doc.get("cells", [])}

    base_cells, cur_cells = by_key(baseline), by_key(current)
    out: List[Regression] = []
    for key, cell in sorted(base_cells.items()):
        label = "overlap[%s/%s/%s/%s]" % (
            key[0], key[1], key[2], "compiled" if key[3] else "eager")
        if key not in cur_cells:
            out.append(Regression(label, "cell", "present", None,
                                  "cell missing from current run"))
            continue
        out.extend(_check_metrics(label, OVERLAP_METRICS, cell,
                                  cur_cells[key], tolerance))
    return out


def check_scale(baseline: Dict, current: Dict,
                tolerance: float) -> List[Regression]:
    sections = (
        ("training", SCALE_TRAINING_METRICS,
         lambda c: (c["framework"], c["model"])),
        ("parity", SCALE_PARITY_METRICS,
         lambda c: (c["framework"], c["model"])),
        ("partitioned", SCALE_PARTITIONED_METRICS,
         lambda c: (c["framework"], c["model"], c["k"])),
    )
    out: List[Regression] = []
    for section, metrics, key_of in sections:
        base_cells = {key_of(c): c for c in baseline.get(section, [])}
        cur_cells = {key_of(c): c for c in current.get(section, [])}
        for key, cell in sorted(base_cells.items()):
            label = "scale.%s[%s]" % (section, "/".join(str(k) for k in key))
            if key not in cur_cells:
                out.append(Regression(label, "cell", "present", None,
                                      "cell missing from current run"))
                continue
            out.extend(_check_metrics(label, metrics, cell,
                                      cur_cells[key], tolerance))
    return out


def check_scaling(baseline: Dict, current: Dict,
                  tolerance: float) -> List[Regression]:
    sections = (
        ("cells", SCALING_CELL_METRICS,
         lambda c: (c["framework"], c["model"], c["replicas"])),
        ("parity", SCALING_PARITY_METRICS,
         lambda c: (c["framework"], c["model"], c["mode"])),
    )
    out: List[Regression] = []
    for section, metrics, key_of in sections:
        base_cells = {key_of(c): c for c in baseline.get(section, [])}
        cur_cells = {key_of(c): c for c in current.get(section, [])}
        for key, cell in sorted(base_cells.items()):
            label = "scaling.%s[%s]" % (
                section, "/".join(str(k) for k in key))
            if key not in cur_cells:
                out.append(Regression(label, "cell", "present", None,
                                      "cell missing from current run"))
                continue
            out.extend(_check_metrics(label, metrics, cell,
                                      cur_cells[key], tolerance))
    return out


def check_ops(baseline: Dict, current: Dict, tolerance: float,
              subset: bool = False) -> List[Regression]:
    def by_key(doc: Dict) -> Dict[Tuple[str, str, str, str, str], Dict]:
        # ``precision`` joined the key with the fp16 roofline mode; older
        # baselines without the field key as fp32.
        return {(c["op"], c["pack"], c["mode"],
                 c.get("precision", "fp32"), c["shape"]): c
                for c in doc.get("cells", [])}

    base_cells, cur_cells = by_key(baseline), by_key(current)
    out: List[Regression] = []
    for key, cell in sorted(base_cells.items()):
        label = "ops[%s/%s/%s/%s/%s]" % key
        if key not in cur_cells:
            if subset:
                continue  # reduced CI grid: ungenerated cells are not gated
            out.append(Regression(label, "cell", "present", None,
                                  "cell missing from current run"))
            continue
        out.extend(_check_metrics(label, OPS_METRICS, cell,
                                  cur_cells[key], tolerance))
    return out


def check_fleet(baseline: Dict, current: Dict, tolerance: float,
                subset: bool = False) -> List[Regression]:
    def by_key(doc: Dict) -> Dict[Tuple[str, str, int], Dict]:
        return {(c["kind"], c["policy"], c["replicas"]): c
                for c in doc.get("cells", [])}

    base_cells, cur_cells = by_key(baseline), by_key(current)
    out: List[Regression] = []
    for key, cell in sorted(base_cells.items()):
        label = "fleet[%s/%s/x%d]" % key
        if key not in cur_cells:
            if subset:
                continue  # reduced CI grid: ungenerated cells are not gated
            out.append(Regression(label, "cell", "present", None,
                                  "cell missing from current run"))
            continue
        cur = cur_cells[key]
        out.extend(_check_metrics(label, FLEET_METRICS, cell, cur, tolerance))
        if cur.get("resolved") != cur.get("n_requests"):
            out.append(Regression(label, "resolved", cur.get("n_requests"),
                                  cur.get("resolved"),
                                  "requests lost without resolution"))
        for name, tenant in sorted(cur.get("tenants", {}).items()):
            if tenant.get("resolved") != tenant.get("n_requests"):
                out.append(Regression(label, f"tenants[{name}].resolved",
                                      tenant.get("n_requests"),
                                      tenant.get("resolved"),
                                      "tenant requests lost without resolution"))
    return out


def check_serving(baseline: List[Dict], current: List[Dict],
                  tolerance: float) -> List[Regression]:
    out: List[Regression] = []
    for i, entry in enumerate(baseline):
        label = "serving[%d:%s/%s/%s]" % (
            i, entry.get("framework"), entry.get("model"), entry.get("dataset"))
        if i >= len(current):
            out.append(Regression(label, "entry", "present", None,
                                  "entry missing from current run"))
            continue
        out.extend(_check_metrics(label, SERVING_METRICS,
                                  _serving_view(entry),
                                  _serving_view(current[i]), tolerance))
    return out


def check_faults(baseline: Dict, current: Dict,
                 tolerance: float) -> List[Regression]:
    def by_key(doc: Dict) -> Dict[Tuple, Dict]:
        return {(c["framework"], c["model"], c["dataset"], c["fault_rate"]): c
                for c in doc.get("cells", [])}

    base_cells, cur_cells = by_key(baseline), by_key(current)
    out: List[Regression] = []
    for key, cell in sorted(base_cells.items()):
        label = "faults[%s/%s/%s@%g]" % key
        if key not in cur_cells:
            out.append(Regression(label, "cell", "present", None,
                                  "cell missing from current run"))
            continue
        cur = cur_cells[key]
        out.extend(_check_metrics(label, FAULTS_METRICS, _faults_view(cell),
                                  _faults_view(cur), tolerance))
        if cur.get("resolved") != cur.get("n_requests"):
            out.append(Regression(label, "resolved", cur.get("n_requests"),
                                  cur.get("resolved"),
                                  "requests lost without resolution"))
    return out


def check_file(name: str, baseline: object, current: object,
               tolerance: float, subset: bool = False) -> List[Regression]:
    """Dispatch on document shape: serving is a bare list, the report-CLI
    experiments carry an ``experiment`` tag."""
    if isinstance(baseline, list):
        return check_serving(baseline, current, tolerance)
    kind = baseline.get("experiment")
    if kind == "compile":
        return check_compile(baseline, current, tolerance)
    if kind == "faults":
        return check_faults(baseline, current, tolerance)
    if kind == "overlap":
        return check_overlap(baseline, current, tolerance)
    if kind == "scale":
        return check_scale(baseline, current, tolerance)
    if kind == "scaling":
        return check_scaling(baseline, current, tolerance)
    if kind == "ops":
        return check_ops(baseline, current, tolerance, subset=subset)
    if kind == "fleet":
        return check_fleet(baseline, current, tolerance, subset=subset)
    raise ValueError(f"{name}: unrecognised bench document (experiment={kind!r})")


def _load(path: str) -> object:
    with open(path) as handle:
        return json.load(handle)


def _pairs(args: argparse.Namespace) -> List[Tuple[str, str, str]]:
    if args.baseline:
        return [(os.path.basename(args.baseline), args.baseline, args.current)]
    pairs = []
    for name in BENCH_FILES:
        base = os.path.join(args.baseline_dir, name)
        cur = os.path.join(args.current_dir, name)
        if os.path.exists(base):
            pairs.append((name, base, cur))
    if not pairs:
        raise FileNotFoundError(
            f"no BENCH_*.json baselines found in {args.baseline_dir}")
    return pairs


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="single baseline JSON file")
    parser.add_argument("--current", help="current JSON file (with --baseline)")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding committed BENCH_*.json")
    parser.add_argument("--current-dir", default=".",
                        help="directory holding freshly generated BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative regression tolerance (default 0.10)")
    parser.add_argument("--subset", action="store_true",
                        help="gate only the cells present in the current run "
                             "(for reduced CI grids of ops documents); cells "
                             "missing from the current run stop being "
                             "regressions")
    args = parser.parse_args(argv)
    if bool(args.baseline) != bool(args.current):
        parser.error("--baseline and --current must be given together")

    try:
        pairs = _pairs(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    regressions: List[Regression] = []
    checked = 0
    for name, base_path, cur_path in pairs:
        try:
            baseline, current = _load(base_path), _load(cur_path)
            found = check_file(name, baseline, current, args.tolerance,
                               subset=args.subset)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {name}: {exc}", file=sys.stderr)
            return 2
        checked += 1
        status = "FAIL" if found else "ok"
        print(f"{name}: {status} ({len(found)} regression(s), "
              f"tolerance {args.tolerance:.0%})")
        # The per-metric diff, grouped under its file: every failing key
        # with baseline vs current values (and the relative move where
        # the metric is numeric), not just the file name.
        for reg in found:
            print(reg.render())
        regressions.extend(found)

    if regressions:
        print(f"{len(regressions)} regression(s) across {checked} bench file(s)")
        return 1
    print(f"all {checked} bench file(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
