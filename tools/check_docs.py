"""Documentation consistency gate.

Three independent checks over README.md and docs/*.md, each fatal:

1. **API coverage** — every public package under ``src/repro/`` (a
   directory with an ``__init__.py`` whose name does not start with an
   underscore) must be mentioned as ```repro.<name>``` somewhere in
   ``docs/api.md``.  Adding a subsystem without documenting its surface
   fails CI.
2. **Links** — every relative markdown link must resolve to an existing
   file, and a ``#fragment`` must match a heading in the target file
   (GitHub anchor rules: lowercase, punctuation stripped, spaces to
   hyphens).
3. **Snippets** — every fenced ```` ```python ```` block in ``docs/``
   must execute under ``PYTHONPATH=src`` in a scratch directory (README
   snippets are exempt — they are full training runs).  Tag a block
   ```` ```python no-run ```` to exempt it (for deliberately partial
   fragments).

Usage::

    python tools/check_docs.py [--root DIR] [--skip-snippets]

Exit status 0 when all checks pass, 1 with a per-failure report otherwise.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile
from typing import List

ROOT = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\S*)[ \t]*(.*)$")
SNIPPET_TIMEOUT = 300


def doc_files(root: pathlib.Path) -> List[pathlib.Path]:
    docs = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    return ([readme] if readme.exists() else []) + docs


def public_packages(root: pathlib.Path) -> List[str]:
    src = root / "src" / "repro"
    return sorted(
        entry.name
        for entry in src.iterdir()
        if entry.is_dir()
        and not entry.name.startswith("_")
        and (entry / "__init__.py").exists()
    )


def check_api_coverage(root: pathlib.Path) -> List[str]:
    api = root / "docs" / "api.md"
    if not api.exists():
        return ["docs/api.md is missing"]
    text = api.read_text()
    return [
        f"docs/api.md has no section mentioning `repro.{name}`"
        for name in public_packages(root)
        if f"repro.{name}" not in text
    ]


def slugify(heading: str) -> str:
    """GitHub's heading -> anchor transformation (the common subset)."""
    slug = heading.strip().lower().replace("`", "")
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_anchors(path: pathlib.Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        elif not in_fence and re.match(r"^#{1,6}\s", line):
            anchors.add(slugify(line.lstrip("#")))
    return anchors


def iter_links(text: str):
    """Yield link targets outside fenced code blocks."""
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        elif not in_fence:
            yield from LINK_RE.findall(line)


def check_links(root: pathlib.Path) -> List[str]:
    failures = []
    for doc in doc_files(root):
        rel = doc.relative_to(root)
        for target in iter_links(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            resolved = (doc.parent / path_part).resolve() if path_part else doc
            if not resolved.exists():
                failures.append(f"{rel}: broken link `{target}` "
                                f"({path_part} does not exist)")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in heading_anchors(resolved):
                    failures.append(f"{rel}: broken anchor `{target}` "
                                    f"(no heading #{fragment})")
    return failures


def python_snippets(path: pathlib.Path):
    """Yield (start_line, source) for runnable ```python fences."""
    lines = path.read_text().splitlines()
    block, start, info = None, 0, ""
    for i, line in enumerate(lines, start=1):
        match = FENCE_RE.match(line.strip())
        if match and block is None:
            block, start, info = [], i, (match.group(1) + " " + match.group(2))
        elif match:
            if info.split()[:1] == ["python"] and "no-run" not in info:
                yield start, "\n".join(block)
            block = None
        elif block is not None:
            block.append(line)


def check_snippets(root: pathlib.Path) -> List[str]:
    failures = []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    with tempfile.TemporaryDirectory() as scratch:
        for doc in sorted((root / "docs").glob("*.md")):
            rel = doc.relative_to(root)
            for lineno, source in python_snippets(doc):
                proc = subprocess.run(
                    [sys.executable, "-c", source],
                    cwd=scratch, env=env, capture_output=True,
                    text=True, timeout=SNIPPET_TIMEOUT,
                )
                if proc.returncode != 0:
                    tail = proc.stderr.strip().splitlines()[-1:]
                    failures.append(
                        f"{rel}:{lineno}: python snippet failed "
                        f"(rc={proc.returncode}) {' '.join(tail)}"
                    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path, default=ROOT)
    parser.add_argument("--skip-snippets", action="store_true",
                        help="skip executing fenced python blocks")
    args = parser.parse_args(argv)

    checks = [("api coverage", check_api_coverage), ("links", check_links)]
    if not args.skip_snippets:
        checks.append(("snippets", check_snippets))

    failures = []
    for label, check in checks:
        found = check(args.root)
        print(f"{label}: {'OK' if not found else f'{len(found)} failure(s)'}")
        failures.extend(found)
    for failure in failures:
        print(f"  FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
