"""Shared model configuration (Tables II/III) and common heads."""

from repro.models.config import (
    ANISOTROPIC,
    ISOTROPIC,
    MODEL_NAMES,
    ModelConfig,
    graph_config,
    node_config,
)
from repro.models.mlp import MLPReadout

__all__ = [
    "ModelConfig",
    "node_config",
    "graph_config",
    "MODEL_NAMES",
    "ISOTROPIC",
    "ANISOTROPIC",
    "MLPReadout",
]
