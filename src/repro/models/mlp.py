"""Graph classifier head shared by both framework packs.

Section IV-B.4: "a graph classifier layer which first builds a graph
representation by averaging all node features extracted from the last GNN
layer and then passing this graph representation to an MLP."  The MLP halves
its width twice (the Dwivedi et al. MLPReadout the paper's setup follows).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import Linear, Module, ModuleList, ReLU
from repro.tensor import Tensor


class MLPReadout(Module):
    """``in -> in/2 -> in/4 -> n_classes`` with ReLU between layers."""

    def __init__(
        self,
        in_dim: int,
        n_classes: int,
        n_halvings: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        dims = [in_dim] + [max(in_dim // 2 ** (i + 1), n_classes) for i in range(n_halvings)]
        self.hidden_layers = ModuleList(
            Linear(a, b, rng=rng) for a, b in zip(dims[:-1], dims[1:])
        )
        self.out = Linear(dims[-1], n_classes, rng=rng)
        self.act = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.hidden_layers:
            x = self.act(layer(x))
        return self.out(x)
