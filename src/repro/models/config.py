"""Model configurations: the paper's hyper-parameter Tables II and III.

Both framework packs build their six models from the same
:class:`ModelConfig`, mirroring the paper's methodology: "we adopt
implementations of the same model to make them comparable across frameworks
... the same types and sizes of corresponding layers" (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

MODEL_NAMES = ("gcn", "gin", "sage", "gat", "monet", "gatedgcn")
ISOTROPIC = ("gcn", "gin", "sage")
ANISOTROPIC = ("gat", "monet", "gatedgcn")


@dataclass(frozen=True)
class ModelConfig:
    """Architecture + training hyper-parameters for one model/task pair."""

    model: str
    task: str  # "node" or "graph"
    in_dim: int
    hidden: int
    out_dim: int
    n_classes: int
    n_layers: int
    lr: float
    dropout: float = 0.0
    readout: str = "mean"
    # model-specific knobs (Table II/III "Other" column)
    n_heads: int = 8  # GAT
    kernels: int = 2  # MoNet Gaussian kernels
    pseudo_dim: int = 2  # MoNet pseudo-coordinate dim
    sage_aggregator: str = "mean_pool"
    neighbor_aggr_gin: str = "sum"
    learn_eps_gin: bool = True
    edge_feat: bool = False  # GatedGCN explicit edge features
    # learning setup (Table III)
    lr_reduce_factor: float = 0.5
    lr_patience: int = 25
    min_lr: float = 1e-6
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        if self.model not in MODEL_NAMES:
            raise ValueError(f"unknown model {self.model!r}; options: {MODEL_NAMES}")
        if self.task not in ("node", "graph"):
            raise ValueError(f"task must be 'node' or 'graph', got {self.task!r}")
        if min(self.in_dim, self.hidden, self.out_dim, self.n_classes) <= 0:
            raise ValueError("dimensions must be positive")
        if self.n_layers < 1:
            raise ValueError("need at least one layer")

    @property
    def is_anisotropic(self) -> bool:
        return self.model in ANISOTROPIC


#: Table II — node classification: (hidden, lr) plus fixed extras.
_NODE_TABLE: Dict[str, Tuple[int, float]] = {
    "gcn": (80, 0.01),
    "gat": (32, 0.01),
    "gin": (64, 0.005),
    "sage": (32, 0.001),
    "monet": (64, 0.003),
    "gatedgcn": (64, 0.001),
}

#: Table III — graph classification: (hidden, out, init_lr); L=4 for all.
_GRAPH_TABLE: Dict[str, Tuple[int, int, float]] = {
    "gcn": (128, 128, 1e-3),
    "gat": (32, 256, 1e-3),
    "gin": (80, 80, 1e-3),
    "sage": (96, 96, 7e-4),
    "monet": (80, 80, 1e-3),
    "gatedgcn": (96, 96, 7e-4),
}


def node_config(model: str, in_dim: int, n_classes: int, **overrides) -> ModelConfig:
    """Table II configuration: 2 layers (input -> hidden -> output)."""
    model = model.lower()
    if model not in _NODE_TABLE:
        raise KeyError(f"unknown model {model!r}")
    hidden, lr = _NODE_TABLE[model]
    cfg = ModelConfig(
        model=model,
        task="node",
        in_dim=in_dim,
        hidden=hidden,
        out_dim=n_classes,
        n_classes=n_classes,
        n_layers=2,
        lr=lr,
        dropout=0.5,
        learn_eps_gin=False,
    )
    return replace(cfg, **overrides) if overrides else cfg


def graph_config(model: str, in_dim: int, n_classes: int, **overrides) -> ModelConfig:
    """Table III configuration: L=4, mean readout, plateau LR decay."""
    model = model.lower()
    if model not in _GRAPH_TABLE:
        raise KeyError(f"unknown model {model!r}")
    hidden, out, lr = _GRAPH_TABLE[model]
    cfg = ModelConfig(
        model=model,
        task="graph",
        in_dim=in_dim,
        hidden=hidden,
        out_dim=out,
        n_classes=n_classes,
        n_layers=4,
        lr=lr,
    )
    return replace(cfg, **overrides) if overrides else cfg
