"""Deterministic fault injection for the simulated device stack.

The ROADMAP's production system lives where device OOMs, transient kernel
failures and host stalls are routine; this package makes those events
*schedulable*: a seeded :class:`FaultPlan` hooks into
:meth:`Device.launch` and :meth:`MemoryPool.alloc`, and the same seed
reproduces the same fault sequence every run.  The degradation machinery
it exercises lives next to the code it protects — retry/backoff, circuit
breaking and OOM batch splitting in :mod:`repro.serve`, checkpoint/resume
in :mod:`repro.train`.
"""

from repro.faults.errors import FaultError, KernelFault
from repro.faults.plan import FaultInjector, FaultPlan, FaultStats

__all__ = [
    "FaultError",
    "KernelFault",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
]
