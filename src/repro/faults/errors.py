"""Typed errors raised by injected faults.

Injected out-of-memory conditions reuse
:class:`repro.device.memory.OutOfMemoryError` on purpose: degradation code
(batch splitting, checkpoint/resume) must treat a synthetic OOM exactly
like a real capacity overflow, so they share a type.  Transient kernel
failures get their own type because the correct reaction differs — retry
the same work rather than shrink it.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class for failures originating from a :class:`FaultPlan`."""


class KernelFault(FaultError):
    """A transient kernel-launch failure (the CUDA ``launch failed`` class).

    Retryable: the same launch is expected to succeed on a later attempt,
    which is what distinguishes it from an :class:`OutOfMemoryError`.
    """

    def __init__(self, kernel: str, index: int) -> None:
        super().__init__(
            f"injected transient fault in kernel {kernel!r} (launch #{index})"
        )
        self.kernel = kernel
        self.index = index
