"""Seeded, deterministic fault schedules and their injection machinery.

A :class:`FaultPlan` describes *how often* each fault kind fires; a
:class:`FaultInjector` (one per run, created by :meth:`FaultPlan.start`)
turns the plan into per-event decisions.  Decisions are drawn from
dedicated seeded RNG streams — one for kernel launches, one for
allocations — so a run with the same plan, same seed and same workload
injects byte-for-byte the same faults.  That determinism is what makes
resilience testable: two invocations of a faulted serving trace produce
identical metrics, and a faulted-then-resumed training run can be checked
bitwise against its fault-free twin.

Fault kinds:

* ``oom`` — :class:`~repro.device.memory.OutOfMemoryError` raised from
  :meth:`MemoryPool.alloc`, as if the allocation overflowed capacity;
* ``kernel`` — :class:`KernelFault` raised from :meth:`Device.launch`
  after the host already paid the launch overhead (a failed launch still
  costs dispatch time);
* ``stall`` — a host hiccup: :meth:`Device.launch` charges extra host
  seconds before dispatching (GC pause, driver contention), no error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.faults.errors import KernelFault


def _rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded schedule of fault probabilities per injection point.

    Rates are per-event Bernoulli probabilities: ``kernel_fault_rate`` is
    evaluated once per :meth:`Device.launch`, ``oom_rate`` once per
    :meth:`MemoryPool.alloc`.  ``max_faults`` caps the total number of
    *errors* injected (stalls do not count), so a plan can model "a bad
    minute" rather than a permanently degraded device.
    """

    seed: int = 0
    oom_rate: float = 0.0
    kernel_fault_rate: float = 0.0
    stall_rate: float = 0.0
    #: Host seconds charged per injected stall.
    stall_seconds: float = 1e-4
    #: Cap on injected errors (OOM + kernel); ``None`` = unbounded.
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        _rate("oom_rate", self.oom_rate)
        _rate("kernel_fault_rate", self.kernel_fault_rate)
        _rate("stall_rate", self.stall_rate)
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be non-negative")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative when set")

    def start(self) -> "FaultInjector":
        """Create a fresh injector with this plan's seeded decision streams."""
        return FaultInjector(self)


@dataclass
class FaultStats:
    """What an injector actually did, for metrics and assertions."""

    launches_seen: int = 0
    allocs_seen: int = 0
    ooms_injected: int = 0
    kernel_faults_injected: int = 0
    stalls_injected: int = 0
    stall_seconds_total: float = 0.0

    @property
    def errors_injected(self) -> int:
        return self.ooms_injected + self.kernel_faults_injected


class FaultInjector:
    """Per-run decision engine hooked into ``Device`` and ``MemoryPool``.

    Install with :meth:`Device.injecting`; the device consults
    :meth:`on_launch` at the top of every kernel launch and the memory
    pool consults :meth:`on_alloc` before reserving bytes.  Launch and
    allocation decisions come from independent RNG streams, so the fault
    schedule of one hook does not shift when the other sees a different
    number of events.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        seeds = np.random.SeedSequence(plan.seed).spawn(2)
        self._launch_rng = np.random.default_rng(seeds[0])
        self._alloc_rng = np.random.default_rng(seeds[1])

    # ------------------------------------------------------------------
    def _budget_left(self) -> bool:
        cap = self.plan.max_faults
        return cap is None or self.stats.errors_injected < cap

    def on_launch(self, device, name: str) -> None:
        """Consulted at the top of :meth:`Device.launch`.

        May charge a host stall, and may raise :class:`KernelFault` after
        charging the (wasted) launch overhead of the failed dispatch.
        """
        plan = self.plan
        self.stats.launches_seen += 1
        if plan.stall_rate and self._launch_rng.random() < plan.stall_rate:
            self.stats.stalls_injected += 1
            self.stats.stall_seconds_total += plan.stall_seconds
            device.clock.advance_host(plan.stall_seconds)
            device._attribute_scope(plan.stall_seconds)
        if (
            plan.kernel_fault_rate
            and self._budget_left()
            and self._launch_rng.random() < plan.kernel_fault_rate
        ):
            self.stats.kernel_faults_injected += 1
            device.clock.advance_host(device.spec.launch_overhead)
            device._attribute_scope(device.spec.launch_overhead)
            raise KernelFault(name, self.stats.launches_seen - 1)

    def on_alloc(self, pool, nbytes: int) -> None:
        """Consulted by :meth:`MemoryPool.alloc`; may raise an injected OOM."""
        from repro.device.memory import OutOfMemoryError

        plan = self.plan
        self.stats.allocs_seen += 1
        if (
            plan.oom_rate
            and self._budget_left()
            and self._alloc_rng.random() < plan.oom_rate
        ):
            self.stats.ooms_injected += 1
            raise OutOfMemoryError(
                f"injected device out of memory: requested {nbytes} bytes "
                f"with {pool.current} in use of {pool.capacity} capacity "
                f"({pool.capacity - pool.current} free)"
            )
