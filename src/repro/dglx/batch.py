"""DGL-style graph batching.

Batches graphs into one big disconnected heterograph *per type*: for every
node type and every edge type the batcher walks the graph list, relabels
ids, and concatenates frames.  Homogeneous graphs still pay for one node
type and one edge type of bookkeeping, and the data path is
backend-agnostic (it cannot use the backend's fused vectorised ops) — the
two reasons Section IV-C gives for DGL's batching being slower than PyG's.

The simulated host cost therefore charges a *per-graph, per-type* term on
top of the byte-proportional concatenation cost, unlike
:meth:`repro.pygx.data.Batch.from_data_list`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.device import current_device
from repro.dglx.heterograph import DGLGraph
from repro.graph import GraphSample
from repro.tensor import Tensor


def batch(
    samples: Sequence[GraphSample], with_pos: bool = False
) -> DGLGraph:
    """Collate host graphs into one device-resident batched heterograph.

    Node features land in ``ndata['feat']`` (and ``ndata['pos']`` when
    requested); graph labels are returned via the loader, matching DGL's
    ``GraphDataLoader`` collate behaviour.
    """
    if not samples:
        raise ValueError("cannot batch an empty list of graphs")
    device = current_device()
    costs = device.host_costs

    n_types = 1  # '_N'
    e_types = 1  # ('_N','_E','_N')
    # Per-type, per-graph bookkeeping: id relabelling, frame scheme checks.
    device.host(
        costs.dgl_batch_base
        + costs.dgl_batch_per_graph * len(samples)
        + costs.dgl_batch_per_type * len(samples) * (n_types + e_types)
    )

    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    x_parts: List[np.ndarray] = []
    pos_parts: List[np.ndarray] = []
    batch_num_nodes = np.empty(len(samples), dtype=np.int64)
    batch_num_edges = np.empty(len(samples), dtype=np.int64)
    offset = 0
    # Per-graph python loop: the backend-agnostic path DGL takes.
    for i, sample in enumerate(samples):
        src_parts.append(sample.edge_index[0] + offset)
        dst_parts.append(sample.edge_index[1] + offset)
        x_parts.append(sample.x)
        if with_pos:
            if sample.pos is None:
                raise ValueError("with_pos=True but a graph has no positions")
            pos_parts.append(sample.pos)
        batch_num_nodes[i] = sample.num_nodes
        batch_num_edges[i] = sample.num_edges
        offset += sample.num_nodes

    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    x = np.concatenate(x_parts, axis=0)
    nbytes = x.nbytes + src.nbytes + dst.nbytes
    device.host(costs.batch_per_byte * nbytes)
    device.transfer(nbytes)
    device.track(src)
    device.track(dst)

    g = DGLGraph(src, dst, int(offset), batch_num_nodes, batch_num_edges)
    g.ndata["feat"] = Tensor(x)
    if with_pos:
        g.ndata["pos"] = Tensor(np.concatenate(pos_parts, axis=0))
    return g
