"""Fused edge kernels for the DGL-style framework.

These are thin pack-level wrappers over the generalized kernels in
:mod:`repro.tensor.ops_sparse`: ``gsddmm_u_add_v`` is the fused "broadcast
node features to edges and add" kernel DGL uses for GAT attention logits
(one launch forward, one per input backward, instead of PyG's two gathers +
one add), and ``edge_softmax_fused`` is the two-kernel segment softmax.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.ops_scatter import segment_sum
from repro.tensor.ops_sparse import CSRGraph, edge_softmax as _edge_softmax, gsddmm, gspmm
from repro.tensor.tensor import Tensor


def spmm(graph: CSRGraph, x: Tensor) -> Tensor:
    """Sum-aggregate source features onto destinations, DGL-style.

    One fused GSpMM launch (message + aggregate in a single kernel) — the
    lowering the paper credits for DGL's launch-count advantage, and the
    counterpart of the two-launch gather + scatter composition in
    :func:`repro.pygx.kernels.spmm`.  Exposed here so the op-level
    microbench (:mod:`repro.bench.ops`) times each pack's own lowering
    through one wrapper surface.
    """
    return gspmm(graph, x)


def reduce_rows(src: Tensor, offsets: "np.ndarray") -> Tensor:
    """Pool contiguous row segments (DGL's segment-reduce pooling path)."""
    return segment_sum(src, offsets)


def sddmm(graph: CSRGraph, src_feat: Tensor, dst_feat: Tensor, op: str = "dot") -> Tensor:
    """DGL's SDDMM lowering: one fused :func:`repro.tensor.gsddmm` launch.

    The counterpart of :func:`repro.pygx.kernels.sddmm`'s unfused
    gather + gather + combine chain; :mod:`repro.bench.ops` times both
    through this one wrapper surface per pack.
    """
    return gsddmm(graph, op, src_feat, dst_feat)


def gsddmm_u_add_v(graph: CSRGraph, src_feat: Tensor, dst_feat: Tensor) -> Tensor:
    """Per-edge ``out[e] = src_feat[src(e)] + dst_feat[dst(e)]`` (fused)."""
    return gsddmm(graph, "add", src_feat, dst_feat)


def edge_softmax_fused(graph: CSRGraph, logits: Tensor) -> Tensor:
    """DGL's fused edge softmax over incoming edges of each destination.

    ``logits`` has shape ``(E, ...)`` in original edge order.  Forward is two
    kernels (segment max-subtract-exp, segment sum-divide); backward is two
    more — the fusion the paper contrasts with PyG's six-launch composition.
    Implemented by :func:`repro.tensor.edge_softmax`.
    """
    return _edge_softmax(graph, logits)
