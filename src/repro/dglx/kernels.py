"""Extra fused edge kernels for the DGL-style framework.

``gsddmm_u_add_v`` is the fused "broadcast node features to edges and add"
kernel DGL uses for GAT attention logits: one launch forward, one per input
backward, instead of PyG's two gathers + one add.
"""

from __future__ import annotations

import numpy as np

from repro.device import current_device
from repro.tensor.ops_scatter import segment_sum
from repro.tensor.ops_sparse import CSRGraph, gspmm
from repro.tensor.tensor import Tensor, launch_backward, make_op

_F32 = 4


def spmm(graph: CSRGraph, x: Tensor) -> Tensor:
    """Sum-aggregate source features onto destinations, DGL-style.

    One fused GSpMM launch (message + aggregate in a single kernel) — the
    lowering the paper credits for DGL's launch-count advantage, and the
    counterpart of the two-launch gather + scatter composition in
    :func:`repro.pygx.kernels.spmm`.  Exposed here so the op-level
    microbench (:mod:`repro.bench.ops`) times each pack's own lowering
    through one wrapper surface.
    """
    return gspmm(graph, x)


def reduce_rows(src: Tensor, offsets: "np.ndarray") -> Tensor:
    """Pool contiguous row segments (DGL's segment-reduce pooling path)."""
    return segment_sum(src, offsets)


def gsddmm_u_add_v(graph: CSRGraph, src_feat: Tensor, dst_feat: Tensor) -> Tensor:
    """Per-edge ``out[e] = src_feat[src(e)] + dst_feat[dst(e)]`` (fused)."""
    if len(src_feat) != graph.num_src or len(dst_feat) != graph.num_dst:
        raise ValueError("feature row counts must match the graph")
    e = graph.num_edges
    sorted_out = src_feat.data[graph.indices] + dst_feat.data[graph.rows]
    out = np.empty((e,) + sorted_out.shape[1:], dtype=np.float32)
    out[graph.edge_ids] = sorted_out
    flops = float(out.size)
    nbytes = float(_F32 * (src_feat.size + dst_feat.size + out.size))

    def backward(grad: np.ndarray):
        launch_backward("gsddmm_u_add_v_backward", float(grad.size), _F32 * 3.0 * grad.size)
        g_sorted = grad[graph.edge_ids]
        gs = np.zeros(src_feat.shape, dtype=np.float32)
        np.add.at(gs, graph.indices, g_sorted)
        gd = np.zeros(dst_feat.shape, dtype=np.float32)
        np.add.at(gd, graph.rows, g_sorted)
        return gs, gd

    return make_op("gsddmm_u_add_v", out, (src_feat, dst_feat), backward, flops, nbytes)


def edge_softmax_fused(graph: CSRGraph, logits: Tensor) -> Tensor:
    """DGL's fused edge softmax over incoming edges of each destination.

    ``logits`` has shape ``(E, ...)`` in original edge order.  Forward is two
    kernels (segment max-subtract-exp, segment sum-divide); backward is two
    more — the fusion the paper contrasts with PyG's six-launch composition.
    """
    e = graph.num_edges
    rows = graph.rows
    sorted_logits = logits.data[graph.edge_ids]
    trailing = sorted_logits.shape[1:]

    maxes = np.full((graph.num_dst,) + trailing, -np.inf, dtype=np.float32)
    np.maximum.at(maxes, rows, sorted_logits)
    maxes = np.where(np.isfinite(maxes), maxes, 0.0).astype(np.float32)
    exp = np.exp(sorted_logits - maxes[rows])
    denom = np.zeros((graph.num_dst,) + trailing, dtype=np.float32)
    np.add.at(denom, rows, exp)
    denom = np.maximum(denom, 1e-16)
    sorted_out = (exp / denom[rows]).astype(np.float32)
    out = np.empty_like(sorted_out)
    out[graph.edge_ids] = sorted_out
    # The CSR-ordered softmax output is saved for backward (device memory).
    current_device().track(sorted_out)

    flops = 4.0 * out.size
    nbytes = float(_F32 * 3 * out.size)
    # Charge the second fused kernel explicitly (make_op charges the first).
    current_device().launch("edge_softmax_norm", 2.0 * out.size, _F32 * 2.0 * out.size)

    def backward(grad: np.ndarray):
        launch_backward("edge_softmax_backward_accum", 2.0 * grad.size, _F32 * 3.0 * grad.size)
        launch_backward("edge_softmax_backward_norm", 2.0 * grad.size, _F32 * 2.0 * grad.size)
        g_sorted = grad[graph.edge_ids]
        weighted = (g_sorted * sorted_out).astype(np.float32)
        dot = np.zeros((graph.num_dst,) + trailing, dtype=np.float32)
        np.add.at(dot, rows, weighted)
        g_logits_sorted = sorted_out * (g_sorted - dot[rows])
        g_logits = np.empty_like(g_logits_sorted)
        g_logits[graph.edge_ids] = g_logits_sorted
        return (g_logits.astype(np.float32),)

    return make_op("edge_softmax", out, (logits,), backward, flops, nbytes)
