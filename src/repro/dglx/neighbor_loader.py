"""DGL-style neighbor-sampling loader over a CSR-backed large graph.

The analogue of ``dgl.dataloading.DataLoader`` with a
``NeighborSampler``: each mini-batch is a sampled subgraph wrapped in a
:class:`~repro.dglx.DGLGraph` (heterograph bookkeeping, typed frames,
lazy CSR — the same per-batch overheads the paper attributes to DGL's
data path), with seed nodes occupying rows ``[:n_seeds]``.

Yields ``(g, labels, n_seeds)`` triples; model output rows ``[:n_seeds]``
line up with ``labels``.  Sampling is charged under the ``"sampling"``
clock phase, collation/H2D under ``"data_loading"``.  Compatible with
:class:`repro.dglx.PrefetchDataLoader`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.device import current_device
from repro.dglx.heterograph import DGLGraph
from repro.graph.big_graph import CSRBigGraph, gather_rows
from repro.graph.graph import RngLike, as_generator
from repro.scale.sample import NeighborSampler
from repro.tensor import Tensor


class NeighborLoader:
    """Iterates ``(DGLGraph, labels, n_seeds)`` over seed-node chunks."""

    def __init__(
        self,
        graph: CSRBigGraph,
        seeds: np.ndarray,
        fanouts: Sequence[int],
        batch_size: int,
        shuffle: bool = False,
        rng: RngLike = None,
        labels: Optional[np.ndarray] = None,
        ensure_self_loops: bool = False,
        full_graph_norm: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if labels is None:
            labels = graph.y
        if labels is None:
            raise ValueError("graph has no labels; pass labels= explicitly")
        self.graph = graph
        self.seeds = np.asarray(seeds, dtype=np.int64)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = as_generator(rng)
        self.labels = np.asarray(labels)
        self.ensure_self_loops = ensure_self_loops
        self.full_graph_norm = full_graph_norm
        self.sampler = NeighborSampler(graph, fanouts, rng=self.rng)

    def __len__(self) -> int:
        return (len(self.seeds) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[DGLGraph, np.ndarray, int]]:
        device = current_device()
        costs = device.host_costs
        order = np.arange(len(self.seeds))
        if self.shuffle:
            order = self.rng.permutation(len(self.seeds))
        for start in range(0, len(order), self.batch_size):
            chunk = self.seeds[order[start:start + self.batch_size]]
            sub = self.sampler.sample(chunk)  # charged under "sampling"
            src_e, dst_e = sub.src, sub.dst
            if self.ensure_self_loops:
                # dgl.add_self_loop after sampling: GraphConv has no built-in
                # self-loops, so fanout truncation randomly dropping a hub's
                # self-edge would make the sampled training regime diverge
                # from full-graph inference.
                keep = src_e != dst_e
                loops = np.arange(sub.num_nodes, dtype=np.int64)
                src_e = np.concatenate([src_e[keep], loops])
                dst_e = np.concatenate([dst_e[keep], loops])
            with device.clock.phase("data_loading"):
                x = gather_rows(self.graph.x, sub.nodes)
                nbytes = x.nbytes + src_e.nbytes + dst_e.nbytes
                # Heterograph construction cost: base + per-type frames,
                # the DGL data-path overhead of Section IV-C.
                device.host(
                    costs.fetch_per_graph * len(chunk)
                    + costs.dgl_batch_base
                    + costs.dgl_batch_per_type
                    + costs.batch_per_byte * nbytes
                )
                device.transfer(nbytes)
                device.track(src_e)
                device.track(dst_e)
                g = DGLGraph(src_e, dst_e, sub.num_nodes)
                g.ndata["feat"] = Tensor(x)
                if self.full_graph_norm:
                    # Full-graph in-degrees of the sampled nodes: GraphConv
                    # uses them to debias fanout truncation (see
                    # repro.dglx.models.gcn).
                    true = np.maximum(np.diff(self.graph.indptr)[sub.nodes], 1)
                    g.ndata["true_in_deg"] = Tensor(
                        true.astype(np.float32).reshape(-1, 1)
                    )
            yield g, self.labels[chunk], sub.n_seeds
