"""MoNet under the DGL-style framework (``GMMConv``).

Same Gaussian-mixture maths as the PyG-style layer, but the kernel-weighted
aggregation is lowered to a single ``u_mul_e`` GSpMM with an ``(E, K, 1)``
edge-weight tensor, as DGL's GMMConv does.
"""

from __future__ import annotations

import numpy as np

from repro.dglx import function as fn
from repro.dglx.heterograph import DGLGraph
from repro.dglx.models.base import DGLXNet
from repro.models import ModelConfig
from repro.nn import Linear, Module, Parameter
from repro.tensor import Tensor, exp, index_rows, ops, relu, tanh
from repro.tensor.creation import randn


class GMMConv(Module):
    """One DGL-style MoNet layer with ``K`` Gaussian kernels."""

    def __init__(
        self,
        d_in: int,
        d_out: int,
        kernels: int,
        pseudo_dim: int,
        rng,
        activation: bool = True,
    ) -> None:
        super().__init__()
        self.kernels = kernels
        self.pseudo_dim = pseudo_dim
        self.d_out = d_out
        self.activation = activation
        self.fc = Linear(d_in, kernels * d_out, bias=False, rng=rng)
        self.fc_pseudo = Linear(2, pseudo_dim, rng=rng)
        self.mu = Parameter(randn((kernels, pseudo_dim), rng=rng, std=0.1))
        self.inv_sigma = Parameter(np.ones((kernels, pseudo_dim), dtype=np.float32))

    def forward(self, g: DGLGraph, h: Tensor) -> Tensor:
        n = g.num_nodes()
        src, dst = g.edges()
        deg = Tensor(np.maximum(g.in_degrees(), 1).astype(np.float32))
        inv_sqrt = ops.pow_scalar(deg, -0.5)
        pseudo = ops.concat(
            [
                index_rows(inv_sqrt, dst).reshape(-1, 1),
                index_rows(inv_sqrt, src).reshape(-1, 1),
            ],
            axis=1,
        )
        pseudo = tanh(self.fc_pseudo(pseudo))
        diff = ops.sub(pseudo.reshape(-1, 1, self.pseudo_dim), self.mu)
        scaled = ops.mul(diff, self.inv_sigma)
        weights = exp(
            ops.mul(ops.mul(scaled, scaled).sum(axis=-1), Tensor(np.float32(-0.5)))
        )  # (E, K)

        g.ndata["h_k"] = self.fc(h).reshape(n, self.kernels, self.d_out)
        g.edata["w_k"] = weights.reshape(-1, self.kernels, 1)
        g.update_all(fn.u_mul_e("h_k", "w_k", "m"), fn.sum("m", "h_agg"))
        out = g.ndata["h_agg"].mean(axis=1)  # (N, D)
        return relu(out) if self.activation else out


class MoNetNet(DGLXNet):
    """Stack of :class:`GMMConv` layers."""

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        activation = not (last and config.task == "node")
        return GMMConv(
            d_in, d_out, config.kernels, config.pseudo_dim, rng, activation=activation
        )
