"""GAT under the DGL-style framework.

Attention logits are computed DGL-style: node-level projections ``el``/``er``
are combined on edges with the fused ``u_add_v`` GSDDMM kernel, normalised
with the *fused* edge softmax, and aggregated with a single ``u_mul_e``
GSpMM.  The paper notes both sides of this trade (Section IV-C): DGL's key
aggregation kernels are cheaper than PyG's unfused pipeline, but DGL spends
*more* time computing the attention inputs — which we mirror with the extra
feature-side kernels DGL's GATConv performs (explicit head reshapes and
separate left/right projections).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dglx import function as fn
from repro.dglx.heterograph import DGLGraph
from repro.dglx.kernels import edge_softmax_fused
from repro.dglx.models.base import DGLXNet
from repro.models import ModelConfig
from repro.nn import Linear, Module, Parameter
from repro.tensor import Tensor, elu, leaky_relu, ops
from repro.tensor.creation import randn


class GATConv(Module):
    """One DGL-style multi-head GAT layer."""

    def __init__(
        self, d_in: int, head_dim: int, heads: int, rng, concat_heads: bool = True
    ) -> None:
        super().__init__()
        self.heads = heads
        self.head_dim = head_dim
        self.concat_heads = concat_heads
        self.fc = Linear(d_in, heads * head_dim, bias=False, rng=rng)
        self.attn_l = Parameter(randn((1, heads, head_dim), rng=rng, std=0.1))
        self.attn_r = Parameter(randn((1, heads, head_dim), rng=rng, std=0.1))

    def forward(self, g: DGLGraph, h: Tensor) -> Tensor:
        n = g.num_nodes()
        z = self.fc(h).reshape(n, self.heads, self.head_dim)
        # DGL computes separate left/right attention projections with
        # explicit keepdim sums (extra kernels on the feature side).
        el = ops.mul(z, self.attn_l).sum(axis=-1, keepdims=True)  # (N, H, 1)
        er = ops.mul(z, self.attn_r).sum(axis=-1, keepdims=True)
        g.ndata["el"] = el
        g.ndata["er"] = er
        g.apply_edges(fn.u_add_v("el", "er", "e"))  # fused GSDDMM
        logits = leaky_relu(g.edata["e"], negative_slope=0.2)  # (E, H, 1)
        g.edata["a"] = edge_softmax_fused(g.csr, logits)
        g.ndata["z"] = z
        g.update_all(fn.u_mul_e("z", "a", "m"), fn.sum("m", "h_out"))  # fused GSpMM
        out = g.ndata["h_out"]  # (N, H, D)
        if self.concat_heads:
            return elu(out.reshape(n, self.heads * self.head_dim))
        return out.mean(axis=1)


class GATNet(DGLXNet):
    """Stack of :class:`GATConv` layers (same head layout as pygx)."""

    def layer_dims(self, config: ModelConfig) -> List[Tuple[int, int]]:
        dims: List[Tuple[int, int]] = []
        width_in = config.in_dim
        for i in range(config.n_layers):
            last = i == config.n_layers - 1
            if config.task == "node":
                width_out = config.n_classes if last else config.hidden
            else:
                width_out = config.out_dim if last else config.hidden * config.n_heads
            dims.append((width_in, width_out))
            width_in = width_out
        return dims

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        if config.task == "node" and last:
            return GATConv(d_in, d_out, heads=1, rng=rng, concat_heads=False)
        heads = config.n_heads
        head_dim = max(d_out // heads, 1)
        return GATConv(d_in, head_dim, heads, rng=rng)
