"""GatedGCN under the DGL-style framework — the paper's worst case.

Section IV-A observation 3: "In DGL, we have to set the edge types
parameter of GatedGCN although the dataset does not have this
characteristic and then the features of all edges will be updated through a
fully connected layer.  The training time of GatedGCN under DGL is mainly
spent on the edge feature update operation."

This implementation therefore maintains an **explicit edge feature state**:
every layer runs a fully connected transform over all ``E`` edge features
(an ``(E, d) x (d, d)`` matmul — by far the largest kernels in the model on
dense batches), plus edge-side BatchNorm, ReLU and residual, on top of the
node update the PyG-style layer performs.  That roughly doubles time and
memory versus :mod:`repro.pygx.models.gatedgcn`, reproducing Tables IV/V
and Fig. 4.
"""

from __future__ import annotations

import numpy as np

from repro.dglx import function as fn
from repro.dglx.heterograph import DGLGraph
from repro.dglx.models.base import DGLXNet
from repro.models import ModelConfig
from repro.nn import BatchNorm1d, Linear, Module
from repro.tensor import Tensor, ops, relu, sigmoid
from repro.tensor.creation import ones


class GatedGCNConv(Module):
    """One DGL-style GatedGCN layer with explicit edge features."""

    def __init__(
        self, d_in: int, d_out: int, rng, residual: bool = True, activation: bool = True
    ) -> None:
        super().__init__()
        self.activation = activation
        self.fc_u = Linear(d_in, d_out, rng=rng)
        self.fc_v = Linear(d_in, d_out, rng=rng)
        self.fc_a = Linear(d_in, d_out, rng=rng)
        self.fc_b = Linear(d_in, d_out, rng=rng)
        # The edge-type path: a fully connected update over ALL edges.
        self.fc_e = Linear(d_in, d_out, rng=rng)
        self.bn_h = BatchNorm1d(d_out)
        self.bn_e = BatchNorm1d(d_out)
        self.residual = residual and d_in == d_out

    def forward(self, g: DGLGraph, h: Tensor) -> Tensor:
        e = g.edata["e_feat"]
        # Edge feature update through a fully connected layer: (E, d) matmul.
        # The node halves broadcast to edges in one fused GSDDMM launch
        # (u_add_v) instead of the two gathers + add of the unfused chain.
        g.ndata["eb"] = self.fc_b(h)
        g.ndata["ea"] = self.fc_a(h)
        g.apply_edges(fn.u_add_v("eb", "ea", "uv"))
        e_new = ops.add(self.fc_e(e), g.edata["uv"])
        gates = sigmoid(e_new)
        g.edata["gate"] = gates
        g.ndata["vh"] = self.fc_v(h)
        g.update_all(fn.u_mul_e("vh", "gate", "m"), fn.sum("m", "num"))
        # Gate normalisation (sum of gates per destination) as its own GSpMM.
        g.ndata["ones_h"] = ones((g.num_nodes(), gates.shape[1]))
        g.update_all(fn.u_mul_e("ones_h", "gate", "m2"), fn.sum("m2", "den"))
        denom = ops.clamp_min(g.ndata["den"], 1e-6)
        h_new = ops.add(self.fc_u(h), ops.div(g.ndata["num"], denom))
        if not self.activation:  # final node-classification layer: raw logits
            g.edata["e_feat"] = e_new
            return h_new
        h_new = relu(self.bn_h(h_new))
        e_out = relu(self.bn_e(e_new))
        if self.residual:
            h_new = ops.add(h, h_new)
            e_out = ops.add(e, e_out)
        g.edata["e_feat"] = e_out
        return h_new


class GatedGCNNet(DGLXNet):
    """Stack of :class:`GatedGCNConv` layers with an edge-feature embedding."""

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        activation = not (last and config.task == "node")
        return GatedGCNConv(d_in, d_out, rng, activation=activation)

    def __init__(self, config: ModelConfig, rng=None) -> None:
        super().__init__(config, rng)
        rng = rng or np.random.default_rng()
        first_width = self.layer_dims(config)[0][0]
        self.edge_embed = Linear(1, first_width, rng=rng)

    def forward(self, g: DGLGraph) -> Tensor:
        # Initialise the mandatory edge-feature state (the "edge types
        # parameter" the paper had to set even though the data has none).
        g.edata["e_feat"] = self.edge_embed(ones((g.num_edges(), 1)))
        return super().forward(g)
