"""The six paper models implemented DGL-style."""

from typing import Optional

import numpy as np

from repro.dglx.models.base import DGLXNet
from repro.dglx.models.gat import GATConv, GATNet
from repro.dglx.models.gatedgcn import GatedGCNConv, GatedGCNNet
from repro.dglx.models.gcn import GCNNet, GraphConv
from repro.dglx.models.gin import GINConv, GINNet
from repro.dglx.models.monet import GMMConv, MoNetNet
from repro.dglx.models.sage import SAGEConv, SAGENet
from repro.models import ModelConfig

_NETS = {
    "gcn": GCNNet,
    "gin": GINNet,
    "sage": SAGENet,
    "gat": GATNet,
    "monet": MoNetNet,
    "gatedgcn": GatedGCNNet,
}


def build_model(config: ModelConfig, rng: Optional[np.random.Generator] = None) -> DGLXNet:
    """Instantiate the DGL-style net for ``config.model``."""
    try:
        net_cls = _NETS[config.model]
    except KeyError:
        raise KeyError(f"unknown model {config.model!r}; options: {sorted(_NETS)}") from None
    return net_cls(config, rng)


__all__ = [
    "build_model",
    "DGLXNet",
    "GCNNet",
    "GraphConv",
    "GINNet",
    "GINConv",
    "SAGENet",
    "SAGEConv",
    "GATNet",
    "GATConv",
    "MoNetNet",
    "GMMConv",
    "GatedGCNNet",
    "GatedGCNConv",
]
