"""GCN under the DGL-style framework (``GraphConv`` with ``norm='both'``).

The key contrast with the PyG-style lowering (Section IV-C): DGL's
GraphConv normalises the node features by ``deg^-1/2`` *before* the fused
GSpMM aggregation and again *after* it — "the node features are normalized
before and after updating by the key operations, which mainly results in
the differences in GCN training time between DGL and PyG".
"""

from __future__ import annotations

import numpy as np

from repro.dglx import function as fn
from repro.dglx.heterograph import DGLGraph
from repro.dglx.models.base import DGLXNet
from repro.models import ModelConfig
from repro.nn import Linear, Module
from repro.tensor import Tensor, ops, relu


class GraphConv(Module):
    """One DGL-style GCN layer: norm -> weight -> GSpMM -> norm -> bias."""

    def __init__(self, d_in: int, d_out: int, rng, activation: bool = True) -> None:
        super().__init__()
        self.linear = Linear(d_in, d_out, rng=rng)
        self.activation = activation

    def forward(self, g: DGLGraph, h: Tensor) -> Tensor:
        # Symmetric normalisation is applied to node features on both sides
        # of the aggregation (extra elementwise kernels vs the PyG lowering).
        deg = Tensor(np.maximum(g.in_degrees(), 1).astype(np.float32).reshape(-1, 1))
        if "true_in_deg" in g.ndata:
            # Sampled subgraph with full-graph degrees attached: use the
            # Horvitz-Thompson estimate of the full-graph aggregation —
            # pre-norm by the *true* degree, then rescale the truncated sum
            # by true/sampled so its expectation matches the full-graph
            # layer.  Reduces exactly to the plain path when the graph is
            # complete (true == sampled), so models trained this way serve
            # unchanged under full-graph partitioned inference.
            true = g.ndata["true_in_deg"]
            h = ops.mul(h, ops.pow_scalar(true, -0.5))
            h = self.linear(h)
            g.ndata["h_tmp"] = h
            g.update_all(fn.copy_u("h_tmp", "m"), fn.sum("m", "h_agg"))
            post = ops.div(ops.pow_scalar(true, 0.5), deg)
            out = ops.mul(g.ndata["h_agg"], post)
            return relu(out) if self.activation else out
        norm = ops.pow_scalar(deg, -0.5)
        h = ops.mul(h, norm)
        h = self.linear(h)
        g.ndata["h_tmp"] = h
        g.update_all(fn.copy_u("h_tmp", "m"), fn.sum("m", "h_agg"))
        out = ops.mul(g.ndata["h_agg"], norm)
        return relu(out) if self.activation else out


class GCNNet(DGLXNet):
    """Stack of :class:`GraphConv` layers."""

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        activation = not (last and config.task == "node")
        return GraphConv(d_in, d_out, rng, activation=activation)
