"""GraphSAGE under the DGL-style framework.

Same function class as the PyG-style layer (Eq. 2, mean-pool aggregator),
but lowered the way DGL's ``SAGEConv`` does it: separate ``fc_self`` and
``fc_neigh`` transforms *added* together instead of a single linear on the
concatenation, with the neighbour mean computed by a fused GSpMM.
"""

from __future__ import annotations

import numpy as np

from repro.dglx import function as fn
from repro.dglx.heterograph import DGLGraph
from repro.dglx.models.base import DGLXNet
from repro.models import ModelConfig
from repro.nn import Linear, Module
from repro.nn.functional import l2_normalize
from repro.tensor import Tensor, ops, relu


AGGREGATORS = ("mean", "mean_pool", "max_pool")


class SAGEConv(Module):
    """One DGL-style GraphSAGE layer (aggregators: mean, mean_pool, max_pool)."""

    def __init__(
        self,
        d_in: int,
        d_out: int,
        rng,
        activation: bool = True,
        aggregator: str = "mean_pool",
    ) -> None:
        super().__init__()
        if aggregator not in AGGREGATORS:
            raise ValueError(f"unknown aggregator {aggregator!r}; options: {AGGREGATORS}")
        self.aggregator = aggregator
        self.fc_pool = None if aggregator == "mean" else Linear(d_in, d_out, rng=rng)
        self.fc_self = Linear(d_in, d_out, rng=rng)
        neigh_in = d_in if aggregator == "mean" else d_out
        self.fc_neigh = Linear(neigh_in, d_out, rng=rng)
        self.activation = activation

    def forward(self, g: DGLGraph, h: Tensor) -> Tensor:
        if self.aggregator == "mean":
            g.ndata["h_pool"] = h
            g.update_all(fn.copy_u("h_pool", "m"), fn.mean("m", "h_neigh"))
        else:
            g.ndata["h_pool"] = relu(self.fc_pool(h))
            reducer = fn.max if self.aggregator == "max_pool" else fn.mean
            g.update_all(fn.copy_u("h_pool", "m"), reducer("m", "h_neigh"))
        out = ops.add(self.fc_self(h), self.fc_neigh(g.ndata["h_neigh"]))
        if not self.activation:  # final node-classification layer: raw logits
            return out
        return l2_normalize(relu(out))


class SAGENet(DGLXNet):
    """Stack of :class:`SAGEConv` layers."""

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        activation = not (last and config.task == "node")
        return SAGEConv(
            d_in, d_out, rng, activation=activation, aggregator=config.sage_aggregator
        )
