"""Common skeleton for the DGL-style model pack.

Structurally identical networks to :mod:`repro.pygx.models` (same layer
types, sizes and wiring — the paper's comparability requirement), but every
layer is written against the DGL-style API: message/reduce builtins lowered
to GSpMM, fused edge kernels, segment-reduce readout.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.device import current_device
from repro.dglx.heterograph import DGLGraph
from repro.dglx.readout import max_nodes, mean_nodes, sum_nodes
from repro.models import MLPReadout, ModelConfig
from repro.nn import Dropout, Module
from repro.tensor import Tensor


class DGLXNet(Module):
    """Base class; subclasses implement :meth:`build_conv` and dims."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config
        rng = rng or np.random.default_rng()
        self.dropout = Dropout(config.dropout, rng=rng) if config.dropout else None
        self.conv_names: List[str] = []
        for i, (d_in, d_out) in enumerate(self.layer_dims(config)):
            name = f"conv{i + 1}"
            setattr(self, name, self.build_conv(i, d_in, d_out, config, rng))
            self.conv_names.append(name)
        if config.task == "graph":
            self.classifier = MLPReadout(config.out_dim, config.n_classes, rng=rng)

    def layer_dims(self, config: ModelConfig) -> List[Tuple[int, int]]:
        """(in, out) feature widths per conv layer; subclasses may override."""
        dims: List[Tuple[int, int]] = []
        width_in = config.in_dim
        for i in range(config.n_layers):
            last = i == config.n_layers - 1
            width_out = config.out_dim if last else config.hidden
            dims.append((width_in, width_out))
            width_in = width_out
        return dims

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        raise NotImplementedError

    def forward(self, g: DGLGraph) -> Tensor:
        h = g.ndata["feat"]
        for name in self.conv_names:
            if self.dropout is not None:
                h = self.dropout(h)
            h = getattr(self, name)(g, h)
        if self.config.task == "node":
            return h
        g.ndata["h_final"] = h
        with current_device().scope("pooling"):
            hg = self._readout(g)
        return self.classifier(hg)

    def _readout(self, g: DGLGraph) -> Tensor:
        """Graph readout per ``config.readout`` (Table II/III: mean)."""
        readout = self.config.readout
        if readout == "mean":
            return mean_nodes(g, "h_final")
        if readout == "sum":
            return sum_nodes(g, "h_final")
        if readout == "max":
            return max_nodes(g, "h_final")
        raise ValueError(f"unknown readout {readout!r}")
