"""GIN under the DGL-style framework (Eq. 3, aggregation via GSpMM)."""

from __future__ import annotations

import numpy as np

from repro.dglx import function as fn
from repro.dglx.heterograph import DGLGraph
from repro.dglx.models.base import DGLXNet
from repro.models import ModelConfig
from repro.nn import BatchNorm1d, Linear, Module, Parameter
from repro.tensor import Tensor, ops, relu


class GINConv(Module):
    """One DGL-style GIN layer: fused-sum aggregation + MLP with BN."""

    def __init__(
        self,
        d_in: int,
        d_out: int,
        rng,
        learn_eps: bool,
        activation: bool = True,
        neighbor_aggr: str = "sum",
    ) -> None:
        super().__init__()
        if neighbor_aggr not in ("sum", "mean", "max"):
            raise ValueError(f"unknown neighbour aggregation {neighbor_aggr!r}")
        self.neighbor_aggr = neighbor_aggr
        self.fc_v = Linear(d_in, d_out, rng=rng)
        self.bn = BatchNorm1d(d_out)
        self.fc_w = Linear(d_out, d_out, rng=rng)
        self.activation = activation
        self.eps = Parameter(np.zeros(1, dtype=np.float32)) if learn_eps else None

    def forward(self, g: DGLGraph, h: Tensor) -> Tensor:
        g.ndata["h_tmp"] = h
        reducer = getattr(fn, self.neighbor_aggr)
        g.update_all(fn.copy_u("h_tmp", "m"), reducer("m", "h_agg"))
        if self.eps is not None:
            scaled = ops.mul(h, ops.add(self.eps, Tensor(np.ones(1, np.float32))))
        else:
            scaled = h
        out = ops.add(scaled, g.ndata["h_agg"])
        out = relu(self.bn(self.fc_v(out)))
        out = self.fc_w(out)
        return relu(out) if self.activation else out


class GINNet(DGLXNet):
    """Stack of :class:`GINConv` layers."""

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        activation = not (last and config.task == "node")
        return GINConv(
            d_in,
            d_out,
            rng,
            config.learn_eps_gin,
            activation=activation,
            neighbor_aggr=config.neighbor_aggr_gin,
        )
