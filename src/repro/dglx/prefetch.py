"""Pipelined prefetching wrapper for the DGL-style :class:`GraphDataLoader`.

DGL's ``GraphDataLoader`` inherits PyTorch's worker/pinned-memory pipeline,
so its per-type heterograph collation — the dominant loading cost the paper
measures for DGL (Fig. 1/2) — can hide behind kernel execution.  This
wrapper reproduces that on the simulated clock via
:class:`repro.device.prefetch.PrefetchLoader`; the ``(graph, labels)``
batches themselves are identical to the wrapped loader's.
"""

from __future__ import annotations

from repro.device.prefetch import PrefetchLoader
from repro.dglx.loader import GraphDataLoader


class PrefetchDataLoader(PrefetchLoader):
    """A :class:`~repro.dglx.loader.GraphDataLoader` with pipelined collation.

    Wraps an already-constructed loader::

        loader = PrefetchDataLoader(GraphDataLoader(graphs, batch_size=16))
    """

    def __init__(self, inner: GraphDataLoader, depth: int = 2) -> None:
        super().__init__(inner, depth=depth)
