"""DGL-style GNN framework: heterograph data model, fused GSpMM lowering.

Architectural traits mirrored from Deep Graph Library (and contrasted with
:mod:`repro.pygx` throughout the paper):

* heterograph storage with typed frames even for homogeneous data;
* per-type, backend-agnostic batching (slower than PyG's vectorised path);
* message/reduce builtins lowered to fused GSpMM/GSDDMM kernels;
* fused edge softmax; segment-reduce readout.
"""

from repro.dglx import function, models
from repro.dglx.batch import batch
from repro.dglx.hetero_multitype import HeteroDGLGraph, as_k_type_graph, batch_hetero
from repro.dglx.heterograph import DGLGraph
from repro.dglx.kernels import edge_softmax_fused, gsddmm_u_add_v, reduce_rows, sddmm, spmm
from repro.dglx.loader import GraphDataLoader
from repro.dglx.models import build_model
from repro.dglx.neighbor_loader import NeighborLoader
from repro.dglx.prefetch import PrefetchDataLoader
from repro.dglx.readout import max_nodes, mean_nodes, sum_nodes

__all__ = [
    "DGLGraph",
    "HeteroDGLGraph",
    "batch_hetero",
    "as_k_type_graph",
    "batch",
    "GraphDataLoader",
    "PrefetchDataLoader",
    "NeighborLoader",
    "function",
    "models",
    "build_model",
    "mean_nodes",
    "sum_nodes",
    "max_nodes",
    "edge_softmax_fused",
    "gsddmm_u_add_v",
    "reduce_rows",
    "sddmm",
    "spmm",
]
