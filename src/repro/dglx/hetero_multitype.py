"""Full multi-type heterograph support.

:class:`repro.dglx.heterograph.DGLGraph` covers the homogeneous case the
paper's datasets need (one node type, one edge type).  This module provides
the general form DGL actually implements — named node types, canonical edge
types ``(src_type, relation, dst_type)``, per-type frames and per-relation
message passing — which is precisely the machinery whose bookkeeping the
homogeneous graphs still pay for during batching (Section IV-C).

The ablation bench ``test_ablation_heterograph_types`` uses this class to
show the batching cost growing with the number of types even when the
underlying structure is identical.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.device import current_device
from repro.dglx.function import MessageFunc, ReduceFunc
from repro.dglx.heterograph import Frame
from repro.tensor import CSRGraph, Tensor, gspmm

CanonicalEtype = Tuple[str, str, str]


class HeteroDGLGraph:
    """A graph with typed nodes and typed (relation) edges."""

    def __init__(
        self,
        num_nodes: Mapping[str, int],
        edges: Mapping[CanonicalEtype, Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        if not num_nodes:
            raise ValueError("need at least one node type")
        self._num_nodes: Dict[str, int] = {k: int(v) for k, v in num_nodes.items()}
        self._edges: Dict[CanonicalEtype, Tuple[np.ndarray, np.ndarray]] = {}
        for etype, (src, dst) in edges.items():
            src_type, _, dst_type = etype
            if src_type not in self._num_nodes or dst_type not in self._num_nodes:
                raise ValueError(f"edge type {etype} references unknown node type")
            src = np.asarray(src, dtype=np.int64)
            dst = np.asarray(dst, dtype=np.int64)
            if src.shape != dst.shape:
                raise ValueError(f"src/dst mismatch for {etype}")
            self._edges[etype] = (src, dst)
        self.nodes_frames: Dict[str, Frame] = {t: Frame() for t in self._num_nodes}
        self.edges_frames: Dict[CanonicalEtype, Frame] = {e: Frame() for e in self._edges}
        self._csr: Dict[CanonicalEtype, CSRGraph] = {}

    # ------------------------------------------------------------------
    @property
    def ntypes(self) -> List[str]:
        return list(self._num_nodes)

    @property
    def canonical_etypes(self) -> List[CanonicalEtype]:
        return list(self._edges)

    def num_nodes(self, ntype: str) -> int:
        return self._num_nodes[ntype]

    def num_edges(self, etype: CanonicalEtype) -> int:
        return len(self._edges[etype][0])

    def ndata(self, ntype: str) -> Frame:
        """The feature frame of one node type."""
        return self.nodes_frames[ntype]

    def edata(self, etype: CanonicalEtype) -> Frame:
        """The feature frame of one edge type."""
        return self.edges_frames[etype]

    def csr(self, etype: CanonicalEtype) -> CSRGraph:
        """Per-relation CSR, built lazily (one format set per relation)."""
        if etype not in self._csr:
            src_type, _, dst_type = etype
            src, dst = self._edges[etype]
            current_device().launch(
                "coo_to_csr", flops=float(len(src)), bytes_moved=16.0 * len(src)
            )
            self._csr[etype] = CSRGraph.from_edge_index(
                src, dst, self._num_nodes[src_type], self._num_nodes[dst_type]
            )
        return self._csr[etype]

    # ------------------------------------------------------------------
    def update_all(
        self,
        message: MessageFunc,
        reduce: ReduceFunc,
        etype: Optional[CanonicalEtype] = None,
    ) -> None:
        """Message passing over one relation (or the only one).

        Output lands in the destination type's frame under
        ``reduce.out_field``; multi-relation aggregation composes these
        calls, as DGL's ``multi_update_all`` does.
        """
        if etype is None:
            if len(self._edges) != 1:
                raise ValueError("etype is required for a multi-relation graph")
            etype = next(iter(self._edges))
        if message.out_field != reduce.msg_field:
            raise ValueError("message out_field must feed the reduce msg_field")
        device = current_device()
        device.host(device.host_costs.dgl_update_all_overhead)
        src_type, _, dst_type = etype
        x = self.nodes_frames[src_type][message.src_field]
        if message.op == "copy_u":
            out = gspmm(self.csr(etype), x, None, reduce=reduce.op)
        elif message.op == "u_mul_e":
            weight = self.edges_frames[etype][message.edge_field]
            out = gspmm(self.csr(etype), x, weight, reduce=reduce.op)
        else:
            raise ValueError(f"unsupported message op {message.op!r}")
        self.nodes_frames[dst_type][reduce.out_field] = out


def batch_hetero(graphs: Sequence[HeteroDGLGraph]) -> HeteroDGLGraph:
    """Batch heterographs into one, paying per-type bookkeeping.

    This is the general batching path whose per-type cost the homogeneous
    :func:`repro.dglx.batch.batch` models with one node and one edge type;
    here the cost is charged per *actual* type, so richer type vocabularies
    collate proportionally slower.
    """
    if not graphs:
        raise ValueError("cannot batch an empty list of graphs")
    first = graphs[0]
    ntypes = first.ntypes
    etypes = first.canonical_etypes
    for g in graphs:
        if g.ntypes != ntypes or g.canonical_etypes != etypes:
            raise ValueError("all graphs must share the same type schema")

    device = current_device()
    costs = device.host_costs
    device.host(
        costs.dgl_batch_base
        + costs.dgl_batch_per_graph * len(graphs)
        + costs.dgl_batch_per_type * len(graphs) * (len(ntypes) + len(etypes))
    )

    num_nodes: Dict[str, int] = {t: 0 for t in ntypes}
    offsets: List[Dict[str, int]] = []
    for g in graphs:
        offsets.append(dict(num_nodes))
        for t in ntypes:
            num_nodes[t] += g.num_nodes(t)

    edges: Dict[CanonicalEtype, Tuple[np.ndarray, np.ndarray]] = {}
    total_bytes = 0
    for etype in etypes:
        src_type, _, dst_type = etype
        src_parts, dst_parts = [], []
        for g, off in zip(graphs, offsets):
            src, dst = g._edges[etype]
            src_parts.append(src + off[src_type])
            dst_parts.append(dst + off[dst_type])
        src_cat = np.concatenate(src_parts)
        dst_cat = np.concatenate(dst_parts)
        total_bytes += src_cat.nbytes + dst_cat.nbytes
        edges[etype] = (src_cat, dst_cat)

    batched = HeteroDGLGraph(num_nodes, edges)
    # Concatenate per-type node feature frames present on every graph.
    for t in ntypes:
        common = set(graphs[0].nodes_frames[t])
        for g in graphs[1:]:
            common &= set(g.nodes_frames[t])
        for field in common:
            arrays = [g.nodes_frames[t][field].data for g in graphs]
            stacked = np.concatenate(arrays, axis=0)
            total_bytes += stacked.nbytes
            batched.nodes_frames[t][field] = Tensor(stacked)
    device.host(costs.batch_per_byte * total_bytes)
    device.transfer(total_bytes)
    return batched


def as_k_type_graph(
    edge_index: np.ndarray, x: np.ndarray, k: int, rng: np.random.Generator
) -> HeteroDGLGraph:
    """Recast a homogeneous graph as a ``k``-relation heterograph.

    Nodes keep one type; edges are partitioned randomly into ``k``
    relations.  Used by the heterograph-tax ablation: the represented graph
    is identical, only the type vocabulary grows.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    src, dst = np.asarray(edge_index[0]), np.asarray(edge_index[1])
    assignment = rng.integers(0, k, size=len(src))
    edges = {
        ("_N", f"rel{i}", "_N"): (src[assignment == i], dst[assignment == i])
        for i in range(k)
    }
    g = HeteroDGLGraph({"_N": len(x)}, edges)
    g.ndata("_N")["feat"] = Tensor(np.asarray(x, dtype=np.float32))
    return g
