"""Mini-batch loader for the DGL-style framework."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.device import current_device
from repro.dglx.batch import batch as dgl_batch
from repro.dglx.heterograph import DGLGraph
from repro.graph import GraphSample, as_generator
from repro.graph.graph import RngLike
from repro.graph.sharding import check_shard, shard_order


class GraphDataLoader:
    """Yields ``(batched_graph, labels)`` pairs, DGL style.

    Collation runs under the ``data_loading`` clock phase so the Fig. 1/2
    breakdown attributes its (heterograph, per-type) cost correctly.

    With ``world_size > 1`` the loader yields only replica ``rank``'s
    shard of each epoch's order (see :mod:`repro.graph.sharding`):
    identically seeded RNGs on all replicas give disjoint, equal-sized,
    drop-remainder shards.
    """

    def __init__(
        self,
        graphs: Sequence[GraphSample],
        batch_size: int,
        shuffle: bool = False,
        rng: RngLike = None,
        drop_last: bool = False,
        with_pos: bool = False,
        rank: int = 0,
        world_size: int = 1,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.graphs: List[GraphSample] = list(graphs)
        shard_len = check_shard(len(self.graphs), batch_size, drop_last,
                                rank, world_size)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = as_generator(rng)
        self.drop_last = drop_last
        self.with_pos = with_pos
        self.rank = rank
        self.world_size = world_size
        self._shard_len = shard_len

    def __len__(self) -> int:
        if self.drop_last:
            return self._shard_len // self.batch_size
        return (self._shard_len + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[DGLGraph, np.ndarray]]:
        device = current_device()
        order = np.arange(len(self.graphs))
        if self.shuffle:
            order = self.rng.permutation(len(self.graphs))
        order = shard_order(order, self.rank, self.world_size)
        for start in range(0, len(order), self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            with device.clock.phase("data_loading"):
                device.host(device.host_costs.fetch_per_graph * len(indices))
                samples = [self.graphs[i] for i in indices]
                g = dgl_batch(samples, with_pos=self.with_pos)
                labels = np.array([s.y for s in samples])
            yield g, labels
