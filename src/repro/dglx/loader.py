"""Mini-batch loader for the DGL-style framework."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.device import current_device
from repro.dglx.batch import batch as dgl_batch
from repro.dglx.heterograph import DGLGraph
from repro.graph import GraphSample, as_generator
from repro.graph.graph import RngLike


class GraphDataLoader:
    """Yields ``(batched_graph, labels)`` pairs, DGL style.

    Collation runs under the ``data_loading`` clock phase so the Fig. 1/2
    breakdown attributes its (heterograph, per-type) cost correctly.
    """

    def __init__(
        self,
        graphs: Sequence[GraphSample],
        batch_size: int,
        shuffle: bool = False,
        rng: RngLike = None,
        drop_last: bool = False,
        with_pos: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.graphs: List[GraphSample] = list(graphs)
        if drop_last and len(self.graphs) < batch_size:
            raise ValueError(
                f"drop_last=True with batch_size={batch_size} would yield zero "
                f"batches over {len(self.graphs)} graphs"
            )
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = as_generator(rng)
        self.drop_last = drop_last
        self.with_pos = with_pos

    def __len__(self) -> int:
        n = len(self.graphs)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[DGLGraph, np.ndarray]]:
        device = current_device()
        order = np.arange(len(self.graphs))
        if self.shuffle:
            order = self.rng.permutation(len(self.graphs))
        for start in range(0, len(order), self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            with device.clock.phase("data_loading"):
                device.host(device.host_costs.fetch_per_graph * len(indices))
                samples = [self.graphs[i] for i in indices]
                g = dgl_batch(samples, with_pos=self.with_pos)
                labels = np.array([s.y for s in samples])
            yield g, labels
