"""Graph readout for the DGL-style framework.

Built on the segment-reduce operator over contiguous per-graph node ranges —
"in DGL, the pooling operation is based on their segment reduction
operator" (Section IV-C).
"""

from __future__ import annotations

from repro.dglx.heterograph import DGLGraph
from repro.tensor import Tensor, segment_reduce


def mean_nodes(g: DGLGraph, field: str) -> Tensor:
    """Average ``ndata[field]`` per batched graph."""
    return segment_reduce(g.ndata[field], g.node_offsets(), reduce="mean")


def sum_nodes(g: DGLGraph, field: str) -> Tensor:
    """Sum ``ndata[field]`` per batched graph."""
    return segment_reduce(g.ndata[field], g.node_offsets(), reduce="sum")


def max_nodes(g: DGLGraph, field: str) -> Tensor:
    """Max-reduce ``ndata[field]`` per batched graph."""
    return segment_reduce(g.ndata[field], g.node_offsets(), reduce="max")
