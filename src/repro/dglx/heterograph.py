"""The DGL-style graph object.

Even a homogeneous graph is stored as a *heterograph* with one canonical
node type ``'_N'`` and one edge type ``('_N', '_E', '_N')`` — typed node and
edge frames, per-type metadata, and a per-type batching path.  The paper
identifies exactly this as a source of overhead on the (homogeneous)
benchmark datasets: "all graphs are treated as heterogeneous graphs during
data processing, which brings extra-time loss" (Section IV-C).

Message passing is expressed with builtin function specs
(:mod:`repro.dglx.function`) and lowered onto fused GSpMM/GSDDMM kernels
over a cached CSR representation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.device import current_device
from repro.dglx.function import EdgeFunc, MessageFunc, ReduceFunc
from repro.graph import GraphSample
from repro.tensor import CSRGraph, Tensor, gsddmm, gspmm

DEFAULT_NTYPE = "_N"
DEFAULT_ETYPE = ("_N", "_E", "_N")


class Frame(dict):
    """A typed feature frame (node or edge): field name -> Tensor.

    Setting a column goes through DGL's frame bookkeeping (scheme checks,
    column wrapping), charged as host time.
    """

    def __setitem__(self, key, value) -> None:
        current_device().host(current_device().host_costs.dgl_frame_set_overhead)
        super().__setitem__(key, value)


class DGLGraph:
    """Heterograph with one default node/edge type (homogeneous data)."""

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        batch_num_nodes: Optional[np.ndarray] = None,
        batch_num_edges: Optional[np.ndarray] = None,
    ) -> None:
        self._src = np.asarray(src, dtype=np.int64)
        self._dst = np.asarray(dst, dtype=np.int64)
        if self._src.shape != self._dst.shape:
            raise ValueError("src and dst must have the same shape")
        self._num_nodes = int(num_nodes)
        self.ntypes: List[str] = [DEFAULT_NTYPE]
        self.canonical_etypes: List[Tuple[str, str, str]] = [DEFAULT_ETYPE]
        self.ndata: Frame = Frame()
        self.edata: Frame = Frame()
        self._csr: Optional[CSRGraph] = None
        self._batch_num_nodes = (
            np.array([num_nodes], dtype=np.int64)
            if batch_num_nodes is None
            else np.asarray(batch_num_nodes, dtype=np.int64)
        )
        self._batch_num_edges = (
            np.array([len(self._src)], dtype=np.int64)
            if batch_num_edges is None
            else np.asarray(batch_num_edges, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sample(cls, sample: GraphSample) -> "DGLGraph":
        """Wrap one host graph; features are *not* moved to device yet."""
        return cls(sample.edge_index[0], sample.edge_index[1], sample.num_nodes)

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def num_nodes(self) -> int:
        return self._num_nodes

    def num_edges(self) -> int:
        return len(self._src)

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._src, self._dst

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self._dst, minlength=self._num_nodes)

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self._src, minlength=self._num_nodes)

    def batch_size(self) -> int:
        return len(self._batch_num_nodes)

    def batch_num_nodes(self) -> np.ndarray:
        return self._batch_num_nodes

    def batch_num_edges(self) -> np.ndarray:
        return self._batch_num_edges

    def node_offsets(self) -> np.ndarray:
        """Segment offsets per batched graph (for segment-reduce readout)."""
        return np.concatenate([[0], np.cumsum(self._batch_num_nodes)])

    @property
    def csr(self) -> CSRGraph:
        """Destination-major CSR; built lazily and cached, like DGL formats."""
        if self._csr is None:
            device = current_device()
            # CSR construction is a real kernel in DGL (COOToCSR).
            device.launch(
                "coo_to_csr",
                flops=float(self.num_edges()),
                bytes_moved=16.0 * self.num_edges(),
            )
            self._csr = CSRGraph.from_edge_index(
                self._src, self._dst, self._num_nodes, self._num_nodes
            )
        return self._csr

    def autotune_formats(self) -> str:
        """Select the sparse format the cost model charges for this graph.

        Delegates to :meth:`repro.tensor.CSRGraph.autotune_format` (cached,
        deterministic); subsequent GSpMM/GSDDMM launches carry the chosen
        ``@fmt`` suffix and its index-traffic/efficiency charging.
        """
        return self.csr.autotune_format()

    # ------------------------------------------------------------------
    # message passing (lowered to fused kernels)
    # ------------------------------------------------------------------
    def update_all(self, message: MessageFunc, reduce: ReduceFunc) -> None:
        """Aggregate messages into ``ndata[reduce.out_field]`` via GSpMM."""
        if message.out_field != reduce.msg_field:
            raise ValueError("message out_field must feed the reduce msg_field")
        # DGL's message-passing scheduler: pattern-match the builtin pair,
        # dispatch per edge type, manage frames.  Pure host time.
        device = current_device()
        device.host(device.host_costs.dgl_update_all_overhead)
        x = self.ndata[message.src_field]
        if message.op == "copy_u":
            out = gspmm(self.csr, x, None, reduce=reduce.op)
        elif message.op == "u_mul_e":
            weight = self.edata[message.edge_field]
            out = gspmm(self.csr, x, weight, reduce=reduce.op)
        else:
            raise ValueError(f"unsupported message op {message.op!r}")
        self.ndata[reduce.out_field] = out

    def apply_edges(self, func: EdgeFunc) -> None:
        """Compute a per-edge value into ``edata[func.out_field]`` (GSDDMM).

        Any ``<lhs>_<binop>_<rhs>`` builtin (``u_add_v``, ``u_dot_v``,
        ``u_mul_e``, ...) lowers onto one fused generalized-GSDDMM launch.
        """
        device = current_device()
        device.host(device.host_costs.dgl_apply_edges_overhead)
        lhs_target, binop, rhs_target = func.targets()
        lhs_frame = self.edata if lhs_target == "e" else self.ndata
        rhs_frame = self.edata if rhs_target == "e" else self.ndata
        self.edata[func.out_field] = gsddmm(
            self.csr,
            binop,
            lhs_frame[func.src_field],
            rhs_frame[func.dst_field],
            lhs_target=lhs_target,
            rhs_target=rhs_target,
        )

    def clear_frames(self) -> None:
        """Drop all stored features (between training iterations)."""
        self.ndata.clear()
        self.edata.clear()

    def __repr__(self) -> str:
        return (
            f"DGLGraph(num_nodes={self._num_nodes}, num_edges={self.num_edges()}, "
            f"batch_size={self.batch_size()})"
        )
