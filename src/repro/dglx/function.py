"""DGL-style message and reduce function builtins.

DGL users express message passing as ``g.update_all(fn.u_mul_e('h', 'a',
'm'), fn.sum('m', 'out'))``; the framework pattern-matches these specs and
lowers them to fused GSpMM/GSDDMM kernels.  We reproduce that API surface
with small spec objects consumed by :meth:`repro.dglx.heterograph.DGLGraph.
update_all` and ``apply_edges``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MessageFunc:
    """Message function spec: how to form per-edge messages."""

    op: str  # "copy_u" | "u_mul_e"
    src_field: str
    edge_field: str  # "" when unused
    out_field: str


@dataclass(frozen=True)
class ReduceFunc:
    """Reduce function spec: how to aggregate messages per destination."""

    op: str  # "sum" | "mean"
    msg_field: str
    out_field: str


@dataclass(frozen=True)
class EdgeFunc:
    """Edge-wise binary op spec for ``apply_edges``."""

    op: str  # "u_add_v" | "u_dot_v"
    src_field: str
    dst_field: str
    out_field: str


def copy_u(src_field: str, out_field: str) -> MessageFunc:
    """Message = source node feature."""
    return MessageFunc("copy_u", src_field, "", out_field)


def u_mul_e(src_field: str, edge_field: str, out_field: str) -> MessageFunc:
    """Message = source node feature * edge feature (broadcast)."""
    return MessageFunc("u_mul_e", src_field, edge_field, out_field)


def sum(msg_field: str, out_field: str) -> ReduceFunc:  # noqa: A001
    """Sum messages per destination node."""
    return ReduceFunc("sum", msg_field, out_field)


def mean(msg_field: str, out_field: str) -> ReduceFunc:
    """Average messages per destination node."""
    return ReduceFunc("mean", msg_field, out_field)


def max(msg_field: str, out_field: str) -> ReduceFunc:  # noqa: A001
    """Max-reduce messages per destination node."""
    return ReduceFunc("max", msg_field, out_field)


def u_add_v(src_field: str, dst_field: str, out_field: str) -> EdgeFunc:
    """Per-edge sum of source and destination node features."""
    return EdgeFunc("u_add_v", src_field, dst_field, out_field)


def u_dot_v(src_field: str, dst_field: str, out_field: str) -> EdgeFunc:
    """Per-edge dot product of source and destination node features."""
    return EdgeFunc("u_dot_v", src_field, dst_field, out_field)
