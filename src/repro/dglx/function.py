"""DGL-style message and reduce function builtins.

DGL users express message passing as ``g.update_all(fn.u_mul_e('h', 'a',
'm'), fn.sum('m', 'out'))``; the framework pattern-matches these specs and
lowers them to fused GSpMM/GSDDMM kernels.  We reproduce that API surface
with small spec objects consumed by :meth:`repro.dglx.heterograph.DGLGraph.
update_all` and ``apply_edges``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MessageFunc:
    """Message function spec: how to form per-edge messages."""

    op: str  # "copy_u" | "u_mul_e"
    src_field: str
    edge_field: str  # "" when unused
    out_field: str


@dataclass(frozen=True)
class ReduceFunc:
    """Reduce function spec: how to aggregate messages per destination."""

    op: str  # "sum" | "mean"
    msg_field: str
    out_field: str


#: Binary combinators apply_edges lowers onto the generalized GSDDMM kernel.
EDGE_BINARY_OPS = ("add", "sub", "mul", "div", "dot")

#: Operand targets an EdgeFunc op name may reference.
EDGE_TARGETS = ("u", "v", "e")


@dataclass(frozen=True)
class EdgeFunc:
    """Edge-wise binary op spec for ``apply_edges``.

    ``op`` is ``"<lhs>_<binop>_<rhs>"`` with targets from
    :data:`EDGE_TARGETS` (``u`` = source, ``v`` = destination, ``e`` = edge)
    and combinators from :data:`EDGE_BINARY_OPS` — e.g. ``u_add_v``,
    ``u_dot_v``, ``u_mul_e``.  Lowered onto one fused
    :func:`repro.tensor.gsddmm` launch.
    """

    op: str
    src_field: str
    dst_field: str
    out_field: str

    def targets(self):
        """Return ``(lhs_target, binop, rhs_target)``; raises on bad specs."""
        parts = self.op.split("_")
        if (
            len(parts) != 3
            or parts[0] not in EDGE_TARGETS
            or parts[2] not in EDGE_TARGETS
            or parts[1] not in EDGE_BINARY_OPS
        ):
            raise ValueError(f"unsupported edge op {self.op!r}")
        return parts[0], parts[1], parts[2]


def copy_u(src_field: str, out_field: str) -> MessageFunc:
    """Message = source node feature."""
    return MessageFunc("copy_u", src_field, "", out_field)


def u_mul_e(src_field: str, edge_field: str, out_field: str) -> MessageFunc:
    """Message = source node feature * edge feature (broadcast)."""
    return MessageFunc("u_mul_e", src_field, edge_field, out_field)


def sum(msg_field: str, out_field: str) -> ReduceFunc:  # noqa: A001
    """Sum messages per destination node."""
    return ReduceFunc("sum", msg_field, out_field)


def mean(msg_field: str, out_field: str) -> ReduceFunc:
    """Average messages per destination node."""
    return ReduceFunc("mean", msg_field, out_field)


def max(msg_field: str, out_field: str) -> ReduceFunc:  # noqa: A001
    """Max-reduce messages per destination node."""
    return ReduceFunc("max", msg_field, out_field)


def u_add_v(src_field: str, dst_field: str, out_field: str) -> EdgeFunc:
    """Per-edge sum of source and destination node features."""
    return EdgeFunc("u_add_v", src_field, dst_field, out_field)


def u_sub_v(src_field: str, dst_field: str, out_field: str) -> EdgeFunc:
    """Per-edge difference of source and destination node features."""
    return EdgeFunc("u_sub_v", src_field, dst_field, out_field)


def u_mul_v(src_field: str, dst_field: str, out_field: str) -> EdgeFunc:
    """Per-edge product of source and destination node features."""
    return EdgeFunc("u_mul_v", src_field, dst_field, out_field)


def u_div_v(src_field: str, dst_field: str, out_field: str) -> EdgeFunc:
    """Per-edge quotient of source and destination node features."""
    return EdgeFunc("u_div_v", src_field, dst_field, out_field)


def u_dot_v(src_field: str, dst_field: str, out_field: str) -> EdgeFunc:
    """Per-edge dot product of source and destination node features."""
    return EdgeFunc("u_dot_v", src_field, dst_field, out_field)


def u_add_e(src_field: str, edge_field: str, out_field: str) -> EdgeFunc:
    """Per-edge sum of the source node feature and an edge feature."""
    return EdgeFunc("u_add_e", src_field, edge_field, out_field)


def v_add_e(dst_field: str, edge_field: str, out_field: str) -> EdgeFunc:
    """Per-edge sum of the destination node feature and an edge feature."""
    return EdgeFunc("v_add_e", dst_field, edge_field, out_field)
