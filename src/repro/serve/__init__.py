"""Inference serving layer: registry, dynamic batching, admission control.

The training side of the reproduction shows *why* batching matters (the
launch-bound regime of Figs. 1-2); this package applies the same economics
to the inference path the ROADMAP's production system needs: a
:class:`ModelRegistry` of trained checkpoints, a :class:`DynamicBatcher`
coalescing open-loop traffic under a node/edge budget, bounded queues with
typed :class:`Overloaded` load shedding, and :class:`ServerMetrics`
reporting p50/p95/p99 latency, throughput and shed counts off the simulated
clock.
"""

from repro.serve.batcher import DynamicBatcher
from repro.serve.metrics import (
    LATENCY_PERCENTILES,
    ServerMetrics,
    ServingResult,
    nearest_rank_percentile,
)
from repro.serve.queue import AdmissionController, RequestQueue
from repro.serve.registry import InferenceModel, ModelRegistry
from repro.serve.request import InferenceRequest, InferenceResponse, Overloaded
from repro.serve.resilience import CircuitBreaker, RetryPolicy
from repro.serve.simulator import ServeSimulator, bursty_trace, poisson_trace

__all__ = [
    "ModelRegistry",
    "InferenceModel",
    "RequestQueue",
    "AdmissionController",
    "DynamicBatcher",
    "InferenceRequest",
    "InferenceResponse",
    "Overloaded",
    "ServerMetrics",
    "ServingResult",
    "LATENCY_PERCENTILES",
    "nearest_rank_percentile",
    "ServeSimulator",
    "poisson_trace",
    "bursty_trace",
    "RetryPolicy",
    "CircuitBreaker",
]
