"""Graceful degradation primitives for the serving loop.

Under fault injection (``repro.faults``) — or any real transient failure —
the serving layer must degrade, not collapse: transient kernel faults are
retried with exponential backoff, repeated model failures trip a circuit
breaker that fails fast instead of burning service capacity, and
out-of-memory batches are split in half and retried rather than dropped.
These pieces are deliberately tiny state machines over the *simulated*
clock, so their behaviour is deterministic and unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient (retryable) model failures."""

    #: Retries after the initial attempt; 0 disables retrying.
    max_retries: int = 3
    #: Simulated seconds of backoff before the first retry.
    backoff: float = 1e-3
    #: Backoff growth per successive retry.
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff < 0:
            raise ValueError("backoff must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return self.backoff * self.multiplier**attempt


class CircuitBreaker:
    """Trips open after repeated consecutive model failures.

    Classic three-state breaker over the simulated clock: ``closed``
    (normal service) -> ``open`` after ``failure_threshold`` consecutive
    batch failures (requests shed immediately, no service attempted) ->
    ``half_open`` once ``cooldown`` simulated seconds pass (one probe
    batch allowed; success closes the breaker, failure re-opens it).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5, cooldown: float = 0.25) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float = 0.0
        #: Times the breaker has tripped open over its lifetime.
        self.opens = 0

    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """Whether a batch may be dispatched at simulated ``now``."""
        if self.state == self.OPEN:
            if now - self.opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or self.consecutive_failures >= self.failure_threshold:
            self.state = self.OPEN
            self.opened_at = now
            self.opens += 1
            self.consecutive_failures = 0

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, failures={self.consecutive_failures}/"
            f"{self.failure_threshold}, opens={self.opens})"
        )
