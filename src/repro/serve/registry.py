"""Model registry: trained checkpoints behind a framework-uniform API.

Serving must not care whether a model came from the PyG-style or DGL-style
pack: the registry loads a checkpoint for any ``(framework, model,
dataset)`` key, puts the network in ``eval`` mode, and exposes a single
``predict`` entry point.  Collation goes through the same code paths as the
training loaders (``Batch.from_data_list`` / ``dglx.batch``), so the cost
of serving-time batching lands in the clock's ``data_loading`` phase and a
serving run decomposes exactly like Figs. 1-2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device import current_device
from repro.graph import GraphSample
from repro.models import ModelConfig, graph_config
from repro.nn import Module
from repro.tensor import Tensor, no_grad
from repro.train.checkpoint import PathLike, load_model

FRAMEWORKS = ("pygx", "dglx")


class InferenceModel:
    """One loaded model serving inference for a fixed dataset schema."""

    def __init__(self, framework: str, model: Module, config: ModelConfig, dataset: str) -> None:
        if framework not in FRAMEWORKS:
            raise ValueError(f"unknown framework {framework!r}; options: {FRAMEWORKS}")
        self.framework = framework
        self.model = model.eval()
        self.config = config
        self.dataset = dataset
        #: Compiled forward step (``repro.compile``) when enabled; serving
        #: batches bucket by feature width, so replays dominate quickly.
        self._compiled = None

    # ------------------------------------------------------------------
    def enable_compile(self, **kwargs) -> "InferenceModel":
        """Capture-and-replay the forward pass through ``repro.compile``.

        Keyword arguments pass through to
        :class:`~repro.compile.CompiledStep` (passes, fusion config, ...).
        Returns ``self`` for chaining.
        """
        from repro.compile import CompiledStep

        self._compiled = CompiledStep(self.model, **kwargs)
        return self

    def disable_compile(self) -> "InferenceModel":
        """Return to eager execution (drops cached plans)."""
        self._compiled = None
        return self

    @property
    def compiled(self):
        """The active :class:`~repro.compile.CompiledStep`, or ``None``."""
        return self._compiled

    # ------------------------------------------------------------------
    def collate(self, samples: Sequence[GraphSample]):
        """Batch raw graphs the way the framework's training loader does.

        Runs under the ``data_loading`` phase: serving-time batching is the
        same CPU-side collation work the paper charges to data loading.
        """
        device = current_device()
        with device.clock.phase("data_loading"):
            device.host(device.host_costs.fetch_per_graph * len(samples))
            if self.framework == "pygx":
                from repro.pygx import Batch, Data

                return Batch.from_data_list([Data.from_sample(s) for s in samples])
            from repro.dglx import batch as dgl_batch

            return dgl_batch(list(samples))

    def forward(self, batch) -> Tensor:
        """Gradient-free forward pass under the ``forward`` phase."""
        clock = current_device().clock
        with no_grad(), clock.phase("forward"):
            if self._compiled is not None:
                return self._compiled(batch)
            return self.model(batch)

    def predict(self, samples: Sequence[GraphSample]) -> np.ndarray:
        """Predicted class per input graph."""
        if not samples:
            raise ValueError("predict needs at least one graph")
        logits = self.forward(self.collate(samples))
        return np.argmax(logits.data, axis=1)

    def __repr__(self) -> str:
        return (
            f"InferenceModel({self.framework}/{self.config.model}/{self.dataset}, "
            f"params={self.model.num_parameters()})"
        )


class ModelRegistry:
    """Maps ``(framework, model, dataset)`` keys to inference-ready models.

    Models can be registered in-memory (a freshly trained network) or as a
    checkpoint path; checkpoint entries are built and loaded lazily on first
    :meth:`get` and cached afterwards.
    """

    def __init__(self) -> None:
        self._loaded: Dict[Tuple[str, str, str], InferenceModel] = {}
        self._checkpoints: Dict[Tuple[str, str, str], Tuple[PathLike, ModelConfig]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _key(framework: str, model_name: str, dataset: str) -> Tuple[str, str, str]:
        return (framework, model_name.lower(), dataset.lower())

    def register(
        self, framework: str, model_name: str, dataset: str, model: Module, config: ModelConfig
    ) -> InferenceModel:
        """Register an already-built (trained) model instance."""
        entry = InferenceModel(framework, model, config, dataset.lower())
        self._loaded[self._key(framework, model_name, dataset)] = entry
        return entry

    def register_checkpoint(
        self,
        framework: str,
        model_name: str,
        dataset: str,
        path: PathLike,
        config: Optional[ModelConfig] = None,
    ) -> None:
        """Register a checkpoint to be loaded lazily on first use.

        Without an explicit ``config`` the registry derives the paper's
        Table III configuration from the dataset's feature/class counts.
        """
        if framework not in FRAMEWORKS:
            raise ValueError(f"unknown framework {framework!r}; options: {FRAMEWORKS}")
        if config is None:
            from repro.datasets import load_dataset

            ds = load_dataset(dataset)
            config = graph_config(
                model_name, in_dim=ds.num_features, n_classes=ds.num_classes
            )
        self._checkpoints[self._key(framework, model_name, dataset)] = (path, config)

    # ------------------------------------------------------------------
    def get(self, framework: str, model_name: str, dataset: str) -> InferenceModel:
        """Return the inference model for a key, loading its checkpoint if needed."""
        key = self._key(framework, model_name, dataset)
        if key in self._loaded:
            return self._loaded[key]
        if key in self._checkpoints:
            path, config = self._checkpoints[key]
            model = load_model(framework, config, path)
            entry = InferenceModel(framework, model, config, key[2])
            self._loaded[key] = entry
            return entry
        raise KeyError(
            f"no model registered for {key}; known: {sorted(self.keys())}"
        )

    def keys(self) -> List[Tuple[str, str, str]]:
        return sorted(set(self._loaded) | set(self._checkpoints))

    def __contains__(self, key: Tuple[str, str, str]) -> bool:
        return self._key(*key) in self._loaded or self._key(*key) in self._checkpoints

    def __len__(self) -> int:
        return len(self.keys())
