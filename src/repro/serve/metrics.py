"""Serving-side observability: latency percentiles, throughput, shedding.

Everything is measured against the simulated clock, so a serving run
produces the same kind of phase breakdown as the training figures
(data_loading / forward / idle) plus the latency-distribution metrics a
production service is judged by (p50/p95/p99, throughput, shed rate).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

import numpy as np

from repro.serve.request import InferenceResponse

LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


def nearest_rank_percentile(values, p: float) -> float:
    """Nearest-rank percentile, well-defined on 0- and 1-sample windows.

    The classic nearest-rank formula ``sorted[ceil(p/100 * n) - 1]`` indexes
    past the end of a 0-sample window and is ambiguous at ``p=0``; this
    version pins both edges: an empty window reports ``0.0`` (no latency
    observed yet — the value an autoscaler should treat as "no signal"),
    and a 1-sample window reports that sample for every percentile.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    xs = np.sort(np.asarray(values, dtype=np.float64))
    if xs.size == 0:
        return 0.0
    rank = int(np.ceil(p / 100.0 * xs.size))
    return float(xs[min(max(rank, 1), xs.size) - 1])


@dataclass
class ServingResult:
    """Summary of one serving run (one model under one traffic trace)."""

    framework: str
    model: str
    dataset: str
    n_requests: int
    completed: int
    shed: int
    #: Shed requests by reason: ``queue_full`` (admission) / ``deadline``.
    shed_by_reason: Dict[str, int]
    #: Latency percentiles in simulated seconds, keyed ``50.0/95.0/99.0``.
    latency_percentiles: Dict[float, float]
    mean_latency: float
    mean_queue_delay: float
    #: Completed requests per simulated second.
    throughput: float
    mean_batch_size: float
    #: Batch size -> number of batches dispatched at that size.
    batch_size_histogram: Dict[int, int]
    max_queue_depth: int
    mean_queue_depth: float
    #: Total simulated wall time of the run (arrival of first request to
    #: completion of the last served one).
    elapsed: float
    gpu_utilization: float
    busy_fraction: float
    #: Per-phase elapsed seconds (data_loading / forward / idle).
    phase_times: Dict[str, float]
    #: Requests that ended in an explicit failure response (retries
    #: exhausted on a kernel fault, or an unsplittable OOM) — never
    #: silently dropped.
    failed: int = 0
    failed_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Dispatch retries after transient kernel faults.
    retries: int = 0
    #: OOM-triggered batch halvings (each split serves both halves).
    batch_splits: int = 0
    #: Times the circuit breaker tripped open during the run.
    circuit_opens: int = 0

    @property
    def p50(self) -> float:
        return self.latency_percentiles[50.0]

    @property
    def p95(self) -> float:
        return self.latency_percentiles[95.0]

    @property
    def p99(self) -> float:
        return self.latency_percentiles[99.0]

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.n_requests if self.n_requests else 0.0

    @property
    def failed_fraction(self) -> float:
        return self.failed / self.n_requests if self.n_requests else 0.0

    @property
    def resolved(self) -> int:
        """Requests that got *some* explicit outcome (the lot, ideally)."""
        return self.completed + self.shed + self.failed

    @property
    def goodput(self) -> float:
        """Successful responses per simulated second (completed only)."""
        return self.throughput


@dataclass
class ServerMetrics:
    """Accumulates per-request and per-batch observations during a run."""

    responses: List[InferenceResponse] = field(default_factory=list)
    batch_sizes: List[int] = field(default_factory=list)
    queue_depth_samples: List[int] = field(default_factory=list)
    shed_by_reason: Counter = field(default_factory=Counter)
    failed_by_reason: Counter = field(default_factory=Counter)
    retries: int = 0
    batch_splits: int = 0
    #: Every request id that reached an explicit outcome (completed, shed
    #: or failed).  The no-silent-loss invariant: after a run, this equals
    #: the full set of admitted-or-rejected request ids.
    resolved_ids: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_batch(self, responses: List[InferenceResponse]) -> None:
        self.responses.extend(responses)
        self.batch_sizes.append(len(responses))
        self.resolved_ids.update(r.request_id for r in responses)

    def record_shed(self, reason: str, count: int = 1, request_ids: Iterable[int] = ()) -> None:
        self.shed_by_reason[reason] += count
        self.resolved_ids.update(request_ids)

    def record_failure(self, reason: str, request_ids: Iterable[int]) -> None:
        """An explicit failure outcome for each id (retries exhausted, OOM)."""
        ids = list(request_ids)
        self.failed_by_reason[reason] += len(ids)
        self.resolved_ids.update(ids)

    def record_retry(self, count: int = 1) -> None:
        self.retries += count

    def record_split(self) -> None:
        self.batch_splits += 1

    def sample_queue_depth(self, depth: int) -> None:
        self.queue_depth_samples.append(depth)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self.responses)

    @property
    def shed(self) -> int:
        return sum(self.shed_by_reason.values())

    @property
    def failed(self) -> int:
        return sum(self.failed_by_reason.values())

    def latencies(self) -> np.ndarray:
        return np.array([r.latency for r in self.responses], dtype=np.float64)

    def latency_percentiles(self) -> Dict[float, float]:
        lat = self.latencies()
        if lat.size == 0:
            return {p: 0.0 for p in LATENCY_PERCENTILES}
        if lat.size == 1:
            # One observation: every percentile is that sample (interpolating
            # estimators agree, but make the edge case explicit and exact).
            return {p: float(lat[0]) for p in LATENCY_PERCENTILES}
        return {p: float(np.percentile(lat, p)) for p in LATENCY_PERCENTILES}

    def window_latency_percentiles(self, window: int) -> Dict[float, float]:
        """p50/p95/p99 over the most recent ``window`` responses.

        Uses the nearest-rank estimator (:func:`nearest_rank_percentile`), so
        the result is an *observed* latency, and 0- and 1-sample windows are
        well-defined (``0.0`` / the sample) instead of indexing past the end.
        This is the sliding signal load-aware control loops (the fleet
        autoscaler) consume mid-run, when the window may hold almost nothing.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        recent = [r.latency for r in self.responses[-window:]]
        return {p: nearest_rank_percentile(recent, p) for p in LATENCY_PERCENTILES}

    def summary(
        self,
        framework: str,
        model: str,
        dataset: str,
        n_requests: int,
        elapsed: float,
        gpu_utilization: float,
        busy_fraction: float,
        phase_times: Dict[str, float],
        circuit_opens: int = 0,
    ) -> ServingResult:
        lat = self.latencies()
        delays = np.array([r.queue_delay for r in self.responses], dtype=np.float64)
        return ServingResult(
            framework=framework,
            model=model,
            dataset=dataset,
            n_requests=n_requests,
            completed=self.completed,
            shed=self.shed,
            shed_by_reason=dict(self.shed_by_reason),
            latency_percentiles=self.latency_percentiles(),
            mean_latency=float(lat.mean()) if lat.size else 0.0,
            mean_queue_delay=float(delays.mean()) if delays.size else 0.0,
            throughput=self.completed / elapsed if elapsed > 0 else 0.0,
            mean_batch_size=float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0,
            batch_size_histogram=dict(Counter(self.batch_sizes)),
            max_queue_depth=max(self.queue_depth_samples, default=0),
            mean_queue_depth=(
                float(np.mean(self.queue_depth_samples)) if self.queue_depth_samples else 0.0
            ),
            elapsed=elapsed,
            gpu_utilization=gpu_utilization,
            busy_fraction=busy_fraction,
            phase_times=dict(phase_times),
            failed=self.failed,
            failed_by_reason=dict(self.failed_by_reason),
            retries=self.retries,
            batch_splits=self.batch_splits,
            circuit_opens=circuit_opens,
        )
