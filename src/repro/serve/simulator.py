"""Open-loop serving simulation against the simulated device clock.

The simulator replays an exogenous arrival trace (requests arrive whether
or not the server keeps up — the open-loop regime production services live
in) against one :class:`~repro.serve.registry.InferenceModel`.  Service
work (collation + forward) advances the simulated clock exactly as training
does; quiet periods fast-forward via :meth:`SimClock.advance_idle`, so
throughput, latency and utilisation all come out of the same clock that
produces the paper's Figs. 1-2 breakdowns.

The dispatch path degrades gracefully under faults (injected via a
``repro.faults`` :class:`FaultPlan`, or anything that raises the same
errors): transient kernel faults retry with exponential backoff, OOM
batches split in half and retry, and repeated failures trip a circuit
breaker.  Every admitted request ends in exactly one of *response*,
*shed* or *explicit failure* — nothing is silently lost.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List, Optional, Sequence

import numpy as np

from repro.device import Device, OutOfMemoryError, use_device
from repro.graph import GraphSample, as_generator
from repro.graph.graph import RngLike
from repro.serve.batcher import DynamicBatcher
from repro.serve.metrics import ServerMetrics, ServingResult
from repro.serve.queue import AdmissionController, RequestQueue
from repro.serve.registry import InferenceModel
from repro.serve.request import InferenceRequest, InferenceResponse, Overloaded
from repro.serve.resilience import CircuitBreaker, RetryPolicy


# ----------------------------------------------------------------------
# arrival traces
# ----------------------------------------------------------------------
def poisson_trace(n_requests: int, rate: float, rng: RngLike = None) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` requests/second."""
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if rate <= 0:
        raise ValueError("rate must be positive")
    gaps = as_generator(rng).exponential(1.0 / rate, size=n_requests)
    return np.cumsum(gaps)


def bursty_trace(
    n_requests: int,
    burst_size: int,
    burst_rate: float,
    idle_gap: float,
    rng: RngLike = None,
) -> np.ndarray:
    """On/off traffic: Poisson bursts of ``burst_size`` split by idle gaps.

    Within a burst, arrivals come at ``burst_rate``; between bursts the
    source goes quiet for ``idle_gap`` seconds.  This is the trace that
    exercises admission control: a burst can exceed queue capacity even
    when the long-run average rate is sustainable.
    """
    if burst_size <= 0:
        raise ValueError("burst_size must be positive")
    if idle_gap < 0:
        raise ValueError("idle_gap must be non-negative")
    generator = as_generator(rng)
    times: List[float] = []
    t = 0.0
    while len(times) < n_requests:
        for _ in range(min(burst_size, n_requests - len(times))):
            t += float(generator.exponential(1.0 / burst_rate))
            times.append(t)
        t += idle_gap
    return np.array(times)


# ----------------------------------------------------------------------
# the simulator
# ----------------------------------------------------------------------
class ServeSimulator:
    """Single-server discrete-event replay of an arrival trace."""

    def __init__(
        self,
        inference: InferenceModel,
        batcher: Optional[DynamicBatcher] = None,
        queue_capacity: int = 256,
        deadline: Optional[float] = None,
        device: Optional[Device] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        fault_plan=None,
        overlap: bool = False,
    ) -> None:
        self.inference = inference
        self.batcher = batcher or DynamicBatcher()
        if queue_capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.queue_capacity = queue_capacity
        self.deadline = deadline
        self.device = device or Device()
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        #: Optional :class:`~repro.faults.FaultPlan` injected for the whole
        #: replay (seeded — the same plan reproduces the same run exactly).
        self.fault_plan = fault_plan
        #: Run forwards asynchronously on a compute stream so the host can
        #: collate batch *i+1* while batch *i*'s kernels execute.  One
        #: batch may be in flight at a time (double buffering); completion
        #: times come from stream events, and predictions are identical to
        #: the serial path.
        self.overlap = overlap
        self._inflight = None

    def replay(
        self, samples: Sequence[GraphSample], arrival_times: Sequence[float]
    ) -> ServingResult:
        """Serve one request per arrival time, cycling over ``samples``.

        The loop alternates between admitting every request whose arrival
        time has passed, dispatching one dynamically-batched micro-batch,
        and — when the queue is empty — fast-forwarding the clock to the
        next arrival.
        """
        arrivals = np.asarray(arrival_times, dtype=np.float64)
        if arrivals.size == 0:
            raise ValueError("arrival trace is empty")
        if np.any(np.diff(arrivals) < 0):
            raise ValueError("arrival times must be non-decreasing")
        if not samples:
            raise ValueError("need at least one graph sample to serve")
        requests = [
            InferenceRequest(i, samples[i % len(samples)], float(t))
            for i, t in enumerate(arrivals)
        ]

        injecting = (
            self.device.injecting(self.fault_plan)
            if self.fault_plan is not None
            else nullcontext()
        )
        with use_device(self.device), injecting:
            clock = self.device.clock
            compute = self.device.stream("compute") if self.overlap else self.device.default_stream
            self._inflight = None
            queue = RequestQueue(self.queue_capacity)
            admission = AdmissionController(queue, default_deadline=self.deadline)
            metrics = ServerMetrics()
            start = clock.snapshot()
            t0 = clock.elapsed
            idle0 = clock.idle
            n = len(requests)
            i = 0  # next request not yet offered to admission
            while True:
                now = clock.elapsed - t0
                while i < n and requests[i].arrival_time <= now:
                    try:
                        admission.admit(requests[i], now)
                    except Overloaded as rejection:
                        metrics.record_shed(
                            rejection.reason, request_ids=[requests[i].request_id]
                        )
                    i += 1
                metrics.sample_queue_depth(len(queue))
                if len(queue) == 0:
                    if i >= n:
                        break
                    target = t0 + requests[i].arrival_time
                    if self.overlap:
                        # The quiet period is only idle once the compute
                        # stream has drained; until then the machine is busy.
                        pending = min(compute.ready, target)
                        if pending > clock.elapsed:
                            clock.advance_wait(pending - clock.elapsed)
                    gap = target - clock.elapsed
                    if gap > 0:
                        with clock.phase("idle"):
                            clock.advance_idle(gap)
                    continue
                batch, expired = self.batcher.next_batch(queue, admission, now)
                if expired:
                    metrics.record_shed(
                        "deadline", len(expired), request_ids=[r.request_id for r in expired]
                    )
                if not batch:
                    continue
                if not self.breaker.allow(clock.elapsed - t0):
                    # Open circuit: fail fast at the dispatch point instead
                    # of hammering a model that keeps failing.
                    metrics.record_shed(
                        "circuit_open", len(batch), request_ids=[r.request_id for r in batch]
                    )
                    continue
                self._serve_batch(batch, metrics, clock, t0, compute)

            if self.overlap:
                # Drain the compute stream so elapsed covers the tail of
                # in-flight work and utilisation stays a true ratio.
                self.device.synchronize(compute)
            delta = start.delta(clock)
            idle = clock.idle - idle0
            elapsed = delta.elapsed
            return metrics.summary(
                framework=self.inference.framework,
                model=self.inference.config.model,
                dataset=self.inference.dataset,
                n_requests=n,
                elapsed=elapsed,
                gpu_utilization=delta.gpu_busy / elapsed if elapsed > 0 else 0.0,
                busy_fraction=(elapsed - idle) / elapsed if elapsed > 0 else 0.0,
                phase_times=delta.phase_elapsed,
                circuit_opens=self.breaker.opens,
            )

    # ------------------------------------------------------------------
    def _serve_batch(
        self,
        batch: List[InferenceRequest],
        metrics: ServerMetrics,
        clock,
        t0: float,
        compute=None,
    ) -> None:
        """Serve one dispatched batch to an explicit outcome per request.

        Transient kernel faults retry with exponential backoff; an OOM
        splits the batch in half and serves both halves (recursively) —
        a single over-sized request that still OOMs fails explicitly.
        Either terminal failure counts against the circuit breaker.

        With :attr:`overlap` set, collation runs on the host while the
        *previous* batch's kernels still execute on ``compute``; the host
        only blocks on that earlier batch's event right before launching
        this one (one batch in flight — double buffering), and this
        batch's completion time is read off a stream event.
        """
        from repro.faults import KernelFault

        overlapped = self.overlap and compute is not None
        attempt = 0
        while True:
            dispatch = clock.elapsed - t0
            try:
                collated = self.inference.collate([r.sample for r in batch])
                if overlapped:
                    if self._inflight is not None:
                        self.device.wait_event(self._inflight)
                        self._inflight = None
                    with self.device.on(compute):
                        logits = self.inference.forward(collated)
                    done = compute.record()
                    self._inflight = done
                else:
                    logits = self.inference.forward(collated)
            except KernelFault:
                if attempt < self.retry_policy.max_retries:
                    metrics.record_retry()
                    with clock.phase("backoff"):
                        self.device.host(self.retry_policy.delay(attempt))
                    attempt += 1
                    continue
                metrics.record_failure("kernel_fault", [r.request_id for r in batch])
                self.breaker.record_failure(clock.elapsed - t0)
                return
            except OutOfMemoryError:
                if len(batch) > 1:
                    metrics.record_split()
                    first, second = DynamicBatcher.split(batch)
                    self._serve_batch(first, metrics, clock, t0, compute)
                    self._serve_batch(second, metrics, clock, t0, compute)
                    return
                metrics.record_failure("oom", [batch[0].request_id])
                self.breaker.record_failure(clock.elapsed - t0)
                return
            completion = (done.timestamp if overlapped else clock.elapsed) - t0
            predictions = np.argmax(logits.data, axis=1)
            metrics.record_batch(
                [
                    InferenceResponse(
                        request_id=r.request_id,
                        prediction=int(p),
                        arrival_time=r.arrival_time,
                        dispatch_time=dispatch,
                        completion_time=completion,
                        batch_size=len(batch),
                    )
                    for r, p in zip(batch, predictions)
                ]
            )
            self.breaker.record_success()
            return
