"""Dynamic micro-batching under a node/edge budget.

The paper's central performance result is that small-graph workloads are
launch-bound: batching many graphs into one big disconnected graph nearly
halves forward+backward time per doubling of batch size (Figs. 1-2), while
the per-batch collation cost barely grows.  The same economics hold at
inference time, so the serving layer coalesces whatever is queued into one
micro-batch per dispatch — bounded by a node/edge budget so one batch of
large graphs cannot blow the latency (or memory) of everything queued
behind it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.serve.queue import AdmissionController, RequestQueue
from repro.serve.request import InferenceRequest


class DynamicBatcher:
    """Greedy FIFO coalescing with batch-size / node / edge budgets.

    ``max_batch_size=1`` degenerates to request-at-a-time serving, which is
    the baseline the serving benchmark compares against.
    """

    def __init__(
        self,
        max_batch_size: int = 32,
        max_nodes: Optional[int] = None,
        max_edges: Optional[int] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_nodes is not None and max_nodes <= 0:
            raise ValueError("max_nodes must be positive when set")
        if max_edges is not None and max_edges <= 0:
            raise ValueError("max_edges must be positive when set")
        self.max_batch_size = max_batch_size
        self.max_nodes = max_nodes
        self.max_edges = max_edges

    def _fits(self, nodes: int, edges: int, taken: int) -> bool:
        if taken >= self.max_batch_size:
            return False
        if self.max_nodes is not None and nodes > self.max_nodes:
            return False
        if self.max_edges is not None and edges > self.max_edges:
            return False
        return True

    @staticmethod
    def split(batch: List[InferenceRequest]) -> Tuple[List[InferenceRequest], List[InferenceRequest]]:
        """Halve a batch that proved too big to serve (OOM degradation).

        FIFO order is preserved across the two halves; the caller serves
        the first half, then the second, instead of dropping anything.
        """
        if len(batch) < 2:
            raise ValueError("cannot split a batch of fewer than two requests")
        mid = (len(batch) + 1) // 2
        return list(batch[:mid]), list(batch[mid:])

    def next_batch(
        self,
        queue: RequestQueue,
        admission: AdmissionController,
        now: float,
    ) -> Tuple[List[InferenceRequest], List[InferenceRequest]]:
        """Pop one micro-batch; returns ``(batch, expired)``.

        FIFO order is preserved (no reordering across requests).  Requests
        whose deadline lapsed while queued are popped and returned in
        ``expired`` for the caller to count as shed.  The head request is
        always taken even if it alone exceeds the node/edge budget — a
        single over-budget graph must still be served, just unaccompanied.
        """
        batch: List[InferenceRequest] = []
        expired: List[InferenceRequest] = []
        nodes = 0
        edges = 0
        while len(queue) > 0:
            head = queue.peek()
            if not admission.still_live(head, now):
                expired.append(queue.pop())
                continue
            if batch and not self._fits(nodes + head.num_nodes, edges + head.num_edges, len(batch)):
                break
            batch.append(queue.pop())
            nodes += batch[-1].num_nodes
            edges += batch[-1].num_edges
        return batch, expired
