"""Bounded request queue and admission control.

The north-star deployment serves heavy open-loop traffic, where an
unbounded queue converts overload into unbounded latency.  The serving
layer instead bounds the queue and sheds load at the door with a typed
:class:`~repro.serve.request.Overloaded` rejection — the standard
admission-control posture for latency-sensitive inference services.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from repro.serve.request import InferenceRequest, Overloaded


class RequestQueue:
    """FIFO queue of pending requests with a hard capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._pending: Deque[InferenceRequest] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self) -> Iterator[InferenceRequest]:
        return iter(self._pending)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.capacity

    def push(self, request: InferenceRequest) -> None:
        if self.full:
            raise Overloaded(
                f"queue full at depth {len(self._pending)}",
                queue_depth=len(self._pending),
            )
        self._pending.append(request)

    def peek(self) -> Optional[InferenceRequest]:
        return self._pending[0] if self._pending else None

    def pop(self) -> InferenceRequest:
        if not self._pending:
            raise IndexError("pop from an empty request queue")
        return self._pending.popleft()


class AdmissionController:
    """Decides, per request, between enqueueing and shedding.

    Two shedding points:

    * **at admission** — the bounded queue is full: raise
      :class:`Overloaded` (``reason='queue_full'``) back to the client;
    * **at dispatch** — the request's deadline passed while it queued:
      drop it (``reason='deadline'``) rather than spend service capacity
      on an answer nobody is waiting for.
    """

    def __init__(self, queue: RequestQueue, default_deadline: Optional[float] = None) -> None:
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive when set")
        self.queue = queue
        self.default_deadline = default_deadline

    def admit(self, request: InferenceRequest, now: float) -> None:
        """Enqueue ``request`` or raise :class:`Overloaded`."""
        if request.deadline is None:
            request.deadline = self.default_deadline
        if request.expired(now):
            raise Overloaded(
                f"request {request.request_id} already past its deadline on arrival",
                queue_depth=len(self.queue),
                reason="deadline",
            )
        self.queue.push(request)

    def still_live(self, request: InferenceRequest, now: float) -> bool:
        """Dispatch-time check: ``False`` means shed as a deadline miss."""
        return not request.expired(now)
