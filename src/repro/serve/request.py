"""Request/response types and the serving layer's typed rejection.

A serving request carries one :class:`~repro.graph.graph.GraphSample` plus
its open-loop arrival time (simulated seconds).  Responses record the full
latency decomposition a production dashboard would: queueing delay until
dispatch, then batched service time, against the same simulated clock the
training benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graph import GraphSample


@dataclass
class InferenceRequest:
    """One graph-classification query in flight."""

    request_id: int
    sample: GraphSample
    #: Simulated time the request arrived at the server.
    arrival_time: float
    #: Seconds after arrival by which the reply is useful; ``None`` = never
    #: expires.  Expired requests are shed at dispatch, not served late.
    deadline: Optional[float] = None

    @property
    def num_nodes(self) -> int:
        return self.sample.num_nodes

    @property
    def num_edges(self) -> int:
        return self.sample.num_edges

    def expired(self, now: float) -> bool:
        """Whether the request's deadline has passed at simulated ``now``."""
        return self.deadline is not None and now - self.arrival_time > self.deadline


@dataclass
class InferenceResponse:
    """A served request: prediction plus its latency decomposition."""

    request_id: int
    prediction: int
    arrival_time: float
    dispatch_time: float
    completion_time: float
    batch_size: int

    @property
    def latency(self) -> float:
        """End-to-end latency: arrival to batch completion."""
        return self.completion_time - self.arrival_time

    @property
    def queue_delay(self) -> float:
        """Time spent waiting in the queue before dispatch."""
        return self.dispatch_time - self.arrival_time


class Overloaded(RuntimeError):
    """Typed load-shedding rejection raised by admission control.

    Carries enough context (queue depth, reason) for a client to implement
    backoff; the simulator counts these per reason instead of letting the
    queue grow without bound.
    """

    def __init__(self, message: str, queue_depth: int, reason: str = "queue_full") -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.reason = reason
