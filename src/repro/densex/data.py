"""Dense batching: one block-diagonal adjacency matrix per batch."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.device import current_device
from repro.graph import GraphSample
from repro.tensor import Tensor


class DenseBatch:
    """A batch as dense tensors: features, normalised adjacency, pooling.

    ``adj`` is the symmetrically normalised block-diagonal adjacency with
    self loops (``D^-1/2 (A + I) D^-1/2``) — an ``(N, N)`` float tensor.
    ``pool`` is the ``(B, N)`` mean-pooling matrix, so graph readout is one
    more dense matmul, as a general-purpose framework would do it.
    """

    def __init__(self, x: Tensor, adj: Tensor, pool: Tensor, y: np.ndarray) -> None:
        self.x = x
        self.adj = adj
        self.pool = pool
        self.y = y

    @property
    def num_nodes(self) -> int:
        return len(self.x)

    @property
    def num_graphs(self) -> int:
        return len(self.y)


def dense_batch(samples: Sequence[GraphSample]) -> DenseBatch:
    """Collate graphs into dense tensors (quadratic in total node count)."""
    if not samples:
        raise ValueError("cannot batch an empty list of graphs")
    device = current_device()
    costs = device.host_costs

    total_nodes = sum(g.num_nodes for g in samples)
    x = np.concatenate([g.x for g in samples], axis=0)
    adj = np.zeros((total_nodes, total_nodes), dtype=np.float32)
    pool = np.zeros((len(samples), total_nodes), dtype=np.float32)

    offset = 0
    for i, g in enumerate(samples):
        n = g.num_nodes
        block = slice(offset, offset + n)
        src, dst = g.edge_index
        adj[offset + dst, offset + src] = 1.0
        adj[block, block][np.arange(n), np.arange(n)] = 1.0  # self loops
        idx = np.arange(offset, offset + n)
        adj[idx, idx] = 1.0
        pool[i, block] = 1.0 / n
        offset += n

    deg = np.maximum(adj.sum(axis=1), 1.0)
    inv_sqrt = 1.0 / np.sqrt(deg)
    adj *= inv_sqrt[:, None]
    adj *= inv_sqrt[None, :]

    nbytes = x.nbytes + adj.nbytes + pool.nbytes
    # Collation itself is cheap (no per-type bookkeeping), but the dense
    # materialisation moves O(N^2) bytes to the device.
    device.host(
        costs.pyg_batch_base
        + costs.pyg_batch_per_graph * len(samples)
        + costs.batch_per_byte * nbytes
    )
    device.transfer(nbytes)
    return DenseBatch(
        x=Tensor(x),
        adj=Tensor(adj),
        pool=Tensor(pool),
        y=np.array([g.y for g in samples]),
    )
