"""Dense-adjacency baseline: GNNs on a general-purpose DL framework.

The paper's introduction motivates GNN frameworks by noting that "the GNN
models based on these frameworks can usually achieve better training time
performance than that based on general-purpose deep learning frameworks".
This package is that baseline: message passing implemented the way one
would on a plain tensor framework with no graph support — a materialised
(block-diagonal) dense adjacency matrix and `A @ X` matmuls.

It is correct, simple, and pays O(N^2) memory and compute per batch, which
is exactly why specialised GNN frameworks exist; the ablation bench
`benchmarks/test_ablation_dense_baseline.py` quantifies the gap.
"""

from repro.densex.data import DenseBatch, dense_batch
from repro.densex.models import DenseGCNNet

__all__ = ["DenseBatch", "dense_batch", "DenseGCNNet"]
