"""Dense GCN: spectral-style ``A_hat @ X @ W`` with dense matmuls."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.densex.data import DenseBatch
from repro.models import MLPReadout, ModelConfig
from repro.nn import Linear, Module
from repro.tensor import Tensor, relu


class DenseGCNConv(Module):
    """One GCN layer as two dense matmuls: ``relu(A_hat @ (X W))``."""

    def __init__(self, d_in: int, d_out: int, rng, activation: bool = True) -> None:
        super().__init__()
        self.linear = Linear(d_in, d_out, rng=rng)
        self.activation = activation

    def forward(self, adj: Tensor, x: Tensor) -> Tensor:
        h = self.linear(x)
        out = adj @ h  # (N, N) @ (N, F): the quadratic step
        return relu(out) if self.activation else out


class DenseGCNNet(Module):
    """GCN stack on dense adjacency; mean readout via the pooling matmul."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if config.model != "gcn":
            raise ValueError("the dense baseline implements GCN only")
        self.config = config
        rng = rng or np.random.default_rng()
        dims: List[Tuple[int, int]] = []
        width_in = config.in_dim
        for i in range(config.n_layers):
            last = i == config.n_layers - 1
            width_out = config.out_dim if last else config.hidden
            dims.append((width_in, width_out))
            width_in = width_out
        self.conv_names: List[str] = []
        for i, (d_in, d_out) in enumerate(dims):
            name = f"conv{i + 1}"
            last = i == config.n_layers - 1
            activation = not (last and config.task == "node")
            setattr(self, name, DenseGCNConv(d_in, d_out, rng, activation=activation))
            self.conv_names.append(name)
        if config.task == "graph":
            self.classifier = MLPReadout(config.out_dim, config.n_classes, rng=rng)

    def forward(self, batch: DenseBatch) -> Tensor:
        x = batch.x
        for name in self.conv_names:
            x = getattr(self, name)(batch.adj, x)
        if self.config.task == "node":
            return x
        hg = batch.pool @ x  # dense mean readout
        return self.classifier(hg)
