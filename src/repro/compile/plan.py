"""Compiled execution plans and their replay through the simulated device.

A plan is the lowered form of a captured-and-optimised step: one
:class:`PlanNode` per kernel of the original eager stream, each telling the
device what the compiled artifact would do when that kernel comes up again
— launch it as-is, skip it, or absorb it into a fused launch.

Replay mirrors CUDA-graph replay: the step's Python re-executes (so the
numerics are eager-exact by construction) while the device routes every
``launch`` call through a :class:`ReplaySession`.  The session verifies
that the incoming kernel stream still matches the plan — a *guard*, like
torch.compile's — and accounts clock, profiler and scope time for the
fused schedule instead of the eager one.  On any divergence it fails open:
the rest of the step is charged eagerly and the caller recaptures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.compile.ir import GraphIR, PassStats
from repro.compile.passes import (
    ACTION_EAGER,
    ACTION_FUSE_HEAD,
    ACTION_FUSE_MEMBER,
    ACTION_SKIP,
    NodeDecision,
)
from repro.device.gpu import kernel_efficiency
from repro.device.kernel import KernelRecord

#: Cap on how many member names appear in a fused kernel's display name.
_NAME_MEMBERS = 4


@dataclass(frozen=True)
class PlanNode:
    """Replay directive for one position of the eager kernel stream."""

    name: str
    action: str
    group: Optional[int] = None
    byte_scale: float = 1.0
    closes_group: bool = False
    group_name: Optional[str] = None


@dataclass
class ExecutionPlan:
    """The compiled schedule for one captured step."""

    nodes: List[PlanNode]
    stats: PassStats
    #: Launches the eager stream issues per step.
    eager_launches: int = 0
    #: Launches the compiled schedule issues per step.
    compiled_launches: int = 0

    @property
    def launch_reduction(self) -> float:
        """Fraction of eager kernel launches the plan eliminates."""
        if self.eager_launches == 0:
            return 0.0
        return 1.0 - self.compiled_launches / self.eager_launches

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan({self.eager_launches} -> {self.compiled_launches} "
            f"launches, {self.launch_reduction:.0%} fewer; {self.stats.summary()})"
        )


def build_plan(ir: GraphIR, decisions: Sequence[NodeDecision], stats: PassStats) -> ExecutionPlan:
    """Lower per-node pass decisions into a replayable plan."""
    if len(decisions) != len(ir.nodes):
        raise ValueError("one decision per IR node required")
    # Find the last member of each fused group so replay knows when to emit
    # the fused kernel record.
    last_of_group = {}
    members_of_group = {}
    for node, decision in zip(ir.nodes, decisions):
        if decision.group is not None:
            last_of_group[decision.group] = node.index
            members_of_group.setdefault(decision.group, []).append(node.name)

    plan_nodes: List[PlanNode] = []
    compiled = 0
    for node, decision in zip(ir.nodes, decisions):
        closes = decision.group is not None and last_of_group[decision.group] == node.index
        group_name = None
        if closes:
            names = members_of_group[decision.group]
            shown = "+".join(names[:_NAME_MEMBERS])
            if len(names) > _NAME_MEMBERS:
                shown += f"+{len(names) - _NAME_MEMBERS}more"
            group_name = f"fused[{shown}]"
        plan_nodes.append(
            PlanNode(
                name=node.name,
                action=decision.action,
                group=decision.group,
                byte_scale=decision.byte_scale,
                closes_group=closes,
                group_name=group_name,
            )
        )
        if decision.action in (ACTION_EAGER, ACTION_FUSE_HEAD):
            compiled += 1
    return ExecutionPlan(
        nodes=plan_nodes,
        stats=stats,
        eager_launches=len(ir.nodes),
        compiled_launches=compiled,
    )


class GuardFailure:
    """Why a replay diverged from its plan (kept for diagnostics)."""

    def __init__(self, position: int, expected: Optional[str], got: Optional[str]):
        self.position = position
        self.expected = expected
        self.got = got

    def __repr__(self) -> str:
        return (
            f"GuardFailure(position={self.position}, expected={self.expected!r}, "
            f"got={self.got!r})"
        )


@dataclass
class _OpenGroup:
    """A fused kernel being accumulated across member launches."""

    group: int
    name: str = "fused"
    scope: Tuple[str, ...] = ()
    duration: float = 0.0
    flops: float = 0.0
    bytes_moved: float = 0.0
    #: Stream the fused kernel executes on (``None`` = default, serial).
    stream: object = None


class ReplaySession:
    """Streams one step's kernel launches through an :class:`ExecutionPlan`.

    Install on a device with ``device.replaying(session)``; every
    ``Device.launch`` inside the block routes here.  The session is
    single-use: one step, then :meth:`finish`.
    """

    def __init__(self, plan: ExecutionPlan) -> None:
        self.plan = plan
        self.position = 0
        self.failure: Optional[GuardFailure] = None
        self.launches_issued = 0
        self.launches_skipped = 0
        self._open: Optional[_OpenGroup] = None
        self._finished = False

    @property
    def failed(self) -> bool:
        return self.failure is not None

    # ------------------------------------------------------------------
    def on_launch(
        self, device, name: str, flops: float, bytes_moved: float, stream=None
    ) -> float:
        """Account one incoming kernel launch against the plan.

        ``stream`` is the (already resolved) target stream from
        :meth:`~repro.device.Device.launch` — ``None`` means the default
        stream's serial semantics.  Fused groups charge their members to
        their head's stream so a compiled step launched inside a
        ``device.on(stream)`` block overlaps exactly like its eager twin.
        """
        if self.failed:
            self.launches_issued += 1
            return device._launch_eager(name, flops, bytes_moved, stream)
        if self.position >= len(self.plan.nodes):
            self._fail(device, expected=None, got=name)
            self.launches_issued += 1
            return device._launch_eager(name, flops, bytes_moved, stream)
        node = self.plan.nodes[self.position]
        if node.name != name:
            self._fail(device, expected=node.name, got=name)
            self.launches_issued += 1
            return device._launch_eager(name, flops, bytes_moved, stream)
        self.position += 1

        if node.action == ACTION_SKIP:
            self.launches_skipped += 1
            return 0.0
        if node.action == ACTION_EAGER:
            self.launches_issued += 1
            return device._launch_eager(name, flops, bytes_moved, stream)

        # Fused head or member.
        spec = device.spec
        if stream is device.default_stream:
            stream = None
        head = node.action == ACTION_FUSE_HEAD
        if head:
            self.launches_issued += 1
            device.clock.advance_host(spec.launch_overhead)
            self._open = _OpenGroup(
                group=node.group, scope=device.current_scope, stream=stream
            )
        elif self._open is None or self._open.group != node.group:
            # Member without its head (should not happen with a well-formed
            # plan, but stay safe): treat as eager.
            self.launches_issued += 1
            return device._launch_eager(name, flops, bytes_moved, stream)
        group = self._open
        scaled_bytes = bytes_moved * node.byte_scale
        duration = spec.kernel_time(flops, scaled_bytes, kernel_efficiency(name))
        if group.stream is None:
            device.clock.advance_gpu(duration)
            device._attribute_scope(duration + (spec.launch_overhead if head else 0.0))
        else:
            group.stream.enqueue(duration)
            device.clock.account_gpu_async(duration)
            if head:
                device._attribute_scope(spec.launch_overhead)
        group.duration += duration
        group.flops += flops
        group.bytes_moved += scaled_bytes
        if node.closes_group:
            group.name = node.group_name or "fused"
            self._emit_group(device)
        return duration

    # ------------------------------------------------------------------
    def finish(self, device) -> None:
        """Close the session; flags a guard failure on an incomplete stream."""
        if self._finished:
            return
        self._finished = True
        self._emit_group(device)
        if not self.failed and self.position != len(self.plan.nodes):
            self.failure = GuardFailure(
                position=self.position,
                expected=self.plan.nodes[self.position].name,
                got=None,
            )

    def _fail(self, device, expected: Optional[str], got: Optional[str]) -> None:
        self.failure = GuardFailure(self.position, expected, got)
        self._emit_group(device)

    def _emit_group(self, device) -> None:
        """Record the accumulated fused kernel, if one is open."""
        group = self._open
        if group is None:
            return
        self._open = None
        if group.stream is None:
            timestamp, stream_id = device.clock.elapsed, 0
        else:
            timestamp, stream_id = group.stream.ready, group.stream.id
        device.profiler.record(
            KernelRecord(
                name=group.name,
                scope=group.scope,
                duration=group.duration,
                flops=group.flops,
                bytes_moved=group.bytes_moved,
                timestamp=timestamp,
                memory=device.memory.current,
                stream=stream_id,
                phase=device.clock.current_phase or "",
            )
        )
