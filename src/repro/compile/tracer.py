"""Graph capture: trace the kernel stream of one step into a :class:`GraphIR`.

Capture works like CUDA-graph stream capture: the step executes *eagerly*
(real numpy results, real clock charges — the capture step costs what an
eager step costs) while the device forwards every kernel launch to the
active tracer.  :func:`repro.tensor.make_op` additionally annotates the
launch it just made with the output/parent tensors, giving the IR its
dataflow edges.

The tracer holds strong references to every tensor it sees so CPython
cannot recycle an ``id()`` mid-capture; the references are dropped when the
capture context exits.
"""

from __future__ import annotations

import hashlib

import numpy as np

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compile.ir import GraphIR, IRNode

#: Arrays larger than this are not content-fingerprinted (CSE treats their
#: tensors as unique); hashing is capture-only but should stay cheap.
MAX_HASH_BYTES = 8 * 1024 * 1024


def content_hash(array) -> Optional[str]:
    """Cheap content fingerprint of a numpy array, or None if too large."""
    if array.nbytes > MAX_HASH_BYTES:
        return None
    digest = hashlib.sha1()
    digest.update(str(array.shape).encode())
    digest.update(str(array.dtype).encode())
    data = array if array.flags.c_contiguous else np.ascontiguousarray(array)
    digest.update(data.tobytes())
    return digest.hexdigest()


class Tracer:
    """Records the kernel stream + dataflow of one step under capture."""

    def __init__(self, constants: Sequence[object] = ()) -> None:
        self.nodes: List[IRNode] = []
        self.aliases: Dict[int, int] = {}
        self.constant_ids: Set[int] = set()
        self._pins: List[object] = []  # strong refs keeping ids stable
        for const in constants:
            self.mark_constant(const)

    # ------------------------------------------------------------------
    # hooks called by the device / tensor engine
    # ------------------------------------------------------------------
    def on_launch(
        self, name: str, flops: float, bytes_moved: float, scope: Tuple[str, ...]
    ) -> None:
        """Record one kernel launch (called by ``Device.launch``)."""
        self.nodes.append(
            IRNode(
                index=len(self.nodes),
                name=name,
                scope=scope,
                flops=flops,
                bytes_moved=bytes_moved,
            )
        )

    def annotate_op(self, out, parents: Sequence[object]) -> None:
        """Attach dataflow of a ``make_op`` call to the latest launch."""
        if not self.nodes:
            raise RuntimeError("annotate_op called before any launch was traced")
        node = self.nodes[-1]
        self._pins.append(out)
        self._pins.extend(parents)
        node.out_id = id(out)
        node.out_shape = tuple(out.shape)
        node.out_size = int(out.size)
        node.out_hash = content_hash(out.data)
        node.requires_grad = bool(out.requires_grad)
        node.parent_ids = tuple(id(p) for p in parents)

    def alias(self, out, source) -> None:
        """Record that ``out`` is a kernel-free view of ``source``."""
        self._pins.append(out)
        self._pins.append(source)
        self.aliases[id(out)] = id(source)

    def mark_constant(self, tensor) -> None:
        """Declare a leaf tensor constant for the lifetime of the plan."""
        self._pins.append(tensor)
        self.constant_ids.add(id(tensor))

    # ------------------------------------------------------------------
    def finish(self, outputs: Sequence[object] = ()) -> GraphIR:
        """Close the capture and return the IR.

        ``outputs`` are the step's returned tensors; their producing nodes
        are roots of the liveness analysis in DCE.
        """
        output_ids = set()
        for out in _flatten(outputs):
            self._pins.append(out)
            output_ids.add(id(out))
        return GraphIR(
            nodes=self.nodes,
            output_ids=output_ids,
            aliases=self.aliases,
            constant_ids=self.constant_ids,
        )


def _flatten(value) -> List[object]:
    """Collect Tensor-like leaves from nested tuples/lists/dicts."""
    from repro.tensor import Tensor

    if isinstance(value, Tensor):
        return [value]
    if isinstance(value, (tuple, list)):
        out: List[object] = []
        for item in value:
            out.extend(_flatten(item))
        return out
    if isinstance(value, dict):
        out = []
        for item in value.values():
            out.extend(_flatten(item))
        return out
    return []
