"""Optimization passes over a captured :class:`GraphIR`.

Each pass assigns *actions* to nodes; the actions are then lowered into an
:class:`~repro.compile.plan.ExecutionPlan` that the device replays.
Actions:

* ``eager`` — launch as captured (the default).
* ``skip``  — the compiled artifact would not run this kernel at all
  (dead code, a CSE duplicate, or a folded constant).
* ``fuse_head`` / ``fuse_member`` — the kernel is merged into a fused
  group that pays a single launch overhead; interior producer->consumer
  edges also stop paying for the intermediate's round-trip through device
  memory.

Passes are conservative where the IR is blind: opaque nodes (backward and
optimizer kernels, which carry no dataflow) are never eliminated, only
fused by stream adjacency — precisely what an epilogue-fusing runtime does
with a kernel stream it cannot introspect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compile.ir import GraphIR, IRNode, PassStats

ACTION_EAGER = "eager"
ACTION_SKIP = "skip"
ACTION_FUSE_HEAD = "fuse_head"
ACTION_FUSE_MEMBER = "fuse_member"

DEFAULT_PASSES = ("dce", "cse", "fold", "attention", "fuse")

_F32 = 4

#: Kernels that are elementwise maps over their inputs: they can join a
#: fusion chain in any position after the head.  Backward kernels of
#: elementwise ops are elementwise too, as are the per-parameter optimizer
#: updates and gradient accumulations.
ELEMENTWISE_KERNELS = frozenset(
    {
        "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "log1p",
        "sqrt", "abs", "relu", "leaky_relu", "elu", "sigmoid", "tanh",
        "clamp_min", "dropout", "maximum", "minimum", "where",
        "add_backward", "sub_backward", "mul_backward", "div_backward",
        "neg_backward", "pow_backward", "exp_backward", "log_backward",
        "log1p_backward", "sqrt_backward", "abs_backward", "relu_backward",
        "leaky_relu_backward", "elu_backward", "sigmoid_backward",
        "tanh_backward", "clamp_backward", "dropout_backward",
        "maximum_backward", "minimum_backward", "where_backward",
        "grad_accumulate", "adam_exp_avg", "adam_exp_avg_sq", "adam_update",
        "sgd_update", "l2_normalize",
    }
)

#: Kernels that must never participate in fusion (synchronisation points,
#: host-mediated collectives).  Extend via ``FusionConfig.barrier_kernels``.
DEFAULT_BARRIERS = frozenset({"all_reduce", "broadcast"})


@dataclass(frozen=True)
class FusionConfig:
    """Knobs of the greedy elementwise/epilogue fusion pass."""

    #: Largest number of kernels merged into one fused launch.
    max_group: int = 8
    #: Additional kernel names treated as elementwise chain members.
    extra_elementwise: frozenset = frozenset()
    #: Kernel names that break chains unconditionally.
    barrier_kernels: frozenset = DEFAULT_BARRIERS

    def __post_init__(self) -> None:
        if self.max_group < 2:
            raise ValueError("max_group must be at least 2")

    def is_elementwise(self, name: str) -> bool:
        return name in ELEMENTWISE_KERNELS or name in self.extra_elementwise

    def is_barrier(self, name: str) -> bool:
        return name in self.barrier_kernels


@dataclass
class NodeDecision:
    """Per-node outcome of the pass pipeline."""

    action: str = ACTION_EAGER
    group: Optional[int] = None  # fusion group id, if fused
    byte_scale: float = 1.0  # fraction of captured bytes still paid when fused


# ----------------------------------------------------------------------
# dead code elimination
# ----------------------------------------------------------------------
def dead_code_elimination(
    ir: GraphIR, decisions: List[NodeDecision], stats: PassStats
) -> None:
    """Skip nodes whose outputs nothing observes.

    Only dataflow-annotated, autograd-free nodes are candidates; a node is
    live when it is opaque (conservatively), participates in autograd,
    produces a step output, or feeds a live node.  Consumers always launch
    after their producers, so one reverse walk settles liveness, including
    transitively-dead chains.
    """
    consumers = ir.consumers()
    skipped = {i for i, d in enumerate(decisions) if d.action == ACTION_SKIP}
    live: Set[int] = set()
    for node in reversed(ir.nodes):
        if node.index in skipped:
            continue
        if not node.has_dataflow or node.requires_grad or ir.is_output(node):
            live.add(node.index)
            continue
        if any(c.index in live for c in consumers.get(node.index, ())):
            live.add(node.index)
            continue
        decisions[node.index].action = ACTION_SKIP
        stats.dce_removed += 1


# ----------------------------------------------------------------------
# common subexpression elimination
# ----------------------------------------------------------------------
def common_subexpression_elimination(
    ir: GraphIR, decisions: List[NodeDecision], stats: PassStats
) -> None:
    """Skip structurally duplicated autograd-free computations.

    Two nodes match when they run the same kernel over the same shapes and
    produced bit-identical outputs at capture time; the output fingerprint
    stands in for op attributes the IR does not carry (e.g. gather index
    vectors).  Only nodes outside the autograd graph are eligible —
    eliminating a duplicate with a live backward closure would
    desynchronise the backward kernel stream.  The canonical example is
    GCN's per-layer degree-normalisation chain, recomputed identically by
    every layer from the same edge index (what PyG's ``cached=True``
    avoids).
    """
    seen: Dict[tuple, IRNode] = {}
    for node in ir.nodes:
        if not node.has_dataflow or decisions[node.index].action == ACTION_SKIP:
            continue
        if (
            node.requires_grad
            or node.out_hash is None
            or node.name == "dropout"  # RNG: never deduplicate
            or ir.is_output(node)
        ):
            continue
        key = (node.name, node.out_shape, node.out_hash)
        if key in seen:
            decisions[node.index].action = ACTION_SKIP
            stats.cse_removed += 1
        else:
            seen[key] = node


# ----------------------------------------------------------------------
# constant folding
# ----------------------------------------------------------------------
def constant_folding(
    ir: GraphIR,
    decisions: List[NodeDecision],
    stats: PassStats,
    max_fold_size: int = 1,
) -> None:
    """Skip tiny autograd-free ops whose inputs are all plan constants.

    A compiled artifact bakes shape-derived scalars (normalisation factors,
    epsilon offsets) into the fused kernels instead of launching a kernel
    to recompute them every step.  Inputs count as constant when they are
    leaves registered via ``CompiledStep(constants=...)`` (scalar literals
    coerced during capture are registered automatically) or outputs of
    already-folded nodes.
    """
    constant_values: Set[int] = {ir.resolve(c) for c in ir.constant_ids}
    for node in ir.nodes:
        if not node.has_dataflow or decisions[node.index].action == ACTION_SKIP:
            continue
        if node.requires_grad or node.out_size > max_fold_size:
            continue
        if not node.parent_ids or ir.is_output(node):
            continue
        if all(ir.resolve(pid) in constant_values for pid in node.parent_ids):
            decisions[node.index].action = ACTION_SKIP
            constant_values.add(ir.resolve(node.out_id))
            stats.folded += 1


# ----------------------------------------------------------------------
# attention-pipeline fusion (SDDMM -> edge softmax -> SpMM)
# ----------------------------------------------------------------------
def _next_group_id(decisions: List[NodeDecision]) -> int:
    """First fusion-group id not yet taken by an earlier pass."""
    return max((d.group for d in decisions if d.group is not None), default=-1) + 1


def fuse_attention(
    ir: GraphIR,
    decisions: List[NodeDecision],
    stats: PassStats,
    config: Optional[FusionConfig] = None,
) -> None:
    """Collapse SDDMM → edge-softmax → SpMM pipelines into one launch group.

    The attention pattern every GAT-class model lowers to: a GSDDMM kernel
    produces per-edge logits, an edge softmax normalises them, and a GSpMM
    aggregates the attention-weighted messages.  All three touch the same
    edge-order intermediates, so a fused launch keeps them on-chip — the
    chain is matched on the *forward* stream only (backward kernels never
    join), elementwise kernels between the stages (leaky_relu, dropout)
    ride along, and a chain missing either the softmax or the closing SpMM
    is abandoned untouched.

    Runs before :func:`fuse_elementwise`, which treats the groups made here
    as opaque.  Exact numerics are guaranteed by construction — replay runs
    the same python kernels and only re-times them — and the replay
    session's name guard falls back to eager execution on any divergence.
    """
    config = config or FusionConfig()
    group_id = _next_group_id(decisions)
    chain: List[IRNode] = []
    saw_softmax = False

    for node in ir.nodes:
        if decisions[node.index].action == ACTION_SKIP:
            continue
        # Format-tuned sparse kernels carry an "@fmt" suffix; match the base.
        base = node.name.partition("@")[0]
        is_backward = "backward" in base
        if base.startswith("gsddmm") and not is_backward:
            chain = [node]  # (re)start a candidate pipeline at the SDDMM
            saw_softmax = False
            continue
        if not chain:
            continue
        if base.startswith("edge_softmax") and not is_backward:
            saw_softmax = True
            chain.append(node)
        elif (
            base.startswith("gspmm")
            and not is_backward
            and saw_softmax
            and len(chain) < config.max_group
        ):
            chain.append(node)
            _mark_chain(ir, decisions, chain, group_id)
            group_id += 1
            stats.attention_groups += 1
            stats.fused_groups += 1
            stats.fused_members += len(chain) - 1
            chain = []
            saw_softmax = False
            continue
        elif config.is_elementwise(base) and not config.is_barrier(base):
            chain.append(node)
        else:
            chain = []
            saw_softmax = False
            continue
        if len(chain) >= config.max_group:
            chain = []
            saw_softmax = False


# ----------------------------------------------------------------------
# greedy elementwise / epilogue fusion
# ----------------------------------------------------------------------
def fuse_elementwise(
    ir: GraphIR,
    decisions: List[NodeDecision],
    stats: PassStats,
    config: Optional[FusionConfig] = None,
) -> None:
    """Greedy epilogue fusion over the surviving kernel stream.

    Walks the stream in launch order; any kernel may *head* a chain
    (``matmul``, ``scatter_sum``, ``gspmm``, ...), and consecutive
    elementwise kernels join it until the group is full or the next
    non-elementwise kernel arrives (which heads the following chain).
    Skipped nodes are transparent — the compiled artifact does not run
    them, so they cannot break a chain.  Nodes already placed into a group
    by an earlier pass (attention-pipeline fusion) are opaque barriers:
    their groups are kept intact and never extended.

    Each producer->consumer edge interior to a chain stops paying for the
    intermediate tensor's write+read through device memory; members without
    visible dataflow (backward kernels) still save their launch overhead —
    the dominant term in the launch-bound regime the paper measures — but
    keep their byte costs.
    """
    config = config or FusionConfig()
    chains: List[List[IRNode]] = []
    current: List[IRNode] = []
    for node in ir.nodes:
        if decisions[node.index].action == ACTION_SKIP:
            continue
        if decisions[node.index].group is not None:
            chains.append(current)
            current = []
            continue
        if config.is_barrier(node.name):
            chains.append(current)
            current = []
            chains.append([node])
            continue
        if config.is_elementwise(node.name) and current and len(current) < config.max_group:
            current.append(node)
            continue
        chains.append(current)
        current = [node]
    chains.append(current)

    group_id = _next_group_id(decisions)
    for chain in chains:
        if len(chain) < 2:
            continue
        _mark_chain(ir, decisions, chain, group_id)
        group_id += 1
        stats.fused_groups += 1
        stats.fused_members += len(chain) - 1


def _mark_chain(
    ir: GraphIR, decisions: List[NodeDecision], chain: List[IRNode], group_id: int
) -> None:
    """Assign fusion actions + byte scales for one chain of nodes."""
    discounts = {node.index: 0.0 for node in chain}
    for prev, cur in zip(chain, chain[1:]):
        if prev.out_id is None or not cur.has_dataflow:
            continue
        prev_out = ir.resolve(prev.out_id)
        if any(ir.resolve(pid) == prev_out for pid in cur.parent_ids):
            # The intermediate stays in registers: the producer saves its
            # write, the consumer saves its read.
            saved = float(_F32 * prev.out_size)
            discounts[prev.index] += saved
            discounts[cur.index] += saved
    for position, node in enumerate(chain):
        decision = decisions[node.index]
        decision.action = ACTION_FUSE_HEAD if position == 0 else ACTION_FUSE_MEMBER
        decision.group = group_id
        if node.bytes_moved > 0:
            kept = max(node.bytes_moved - discounts[node.index], 0.0)
            decision.byte_scale = kept / node.bytes_moved
        else:
            decision.byte_scale = 1.0


# ----------------------------------------------------------------------
def run_passes(
    ir: GraphIR,
    passes: Sequence[str] = DEFAULT_PASSES,
    fusion: Optional[FusionConfig] = None,
) -> Tuple[List[NodeDecision], PassStats]:
    """Run the named passes in order; returns per-node decisions + stats."""
    decisions = [NodeDecision() for _ in ir.nodes]
    stats = PassStats()
    for name in passes:
        if name == "dce":
            dead_code_elimination(ir, decisions, stats)
        elif name == "cse":
            common_subexpression_elimination(ir, decisions, stats)
        elif name == "fold":
            constant_folding(ir, decisions, stats)
        elif name == "attention":
            fuse_attention(ir, decisions, stats, fusion)
        elif name == "fuse":
            fuse_elementwise(ir, decisions, stats, fusion)
        else:
            raise ValueError(f"unknown pass {name!r}; options: {DEFAULT_PASSES}")
    return decisions, stats
