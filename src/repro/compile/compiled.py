"""CompiledStep: capture-once / replay-many execution of a step function.

The user-facing entry point of :mod:`repro.compile`.  Wrap any step
callable (a training step, an inference forward) and call it as before:

* the first call with a given input *signature* runs eagerly under
  capture, optimises the captured IR and builds an execution plan;
* subsequent calls re-execute the Python eagerly for numerics while the
  device charges the compiled schedule (fewer launches, fused kernels);
* if the kernel stream diverges from the plan mid-step — a control-flow
  or shape change the signature did not distinguish — the replay *fails
  open*: the rest of the step is charged eagerly, the stale plan is
  dropped, and the next call recaptures.

Signatures are structural by default (tensor rank + feature width, not
exact shapes) because GNN batches vary in node/edge counts while the
kernel sequence stays fixed — the same bucketing trick CUDA Graphs
deployments use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.compile.passes import DEFAULT_PASSES, FusionConfig, run_passes
from repro.compile.plan import ExecutionPlan, ReplaySession, build_plan
from repro.compile.tracer import Tracer
from repro.device import current_device


def default_signature(args: Sequence[Any], kwargs: Dict[str, Any]) -> Tuple:
    """Structural signature of a step's inputs.

    Distinguishes inputs by *kind* and feature width, not exact shape:
    two ENZYMES batches with different node counts produce the same kernel
    sequence, so they share a plan.
    """
    parts = [_describe(a) for a in args]
    parts.extend((k, _describe(v)) for k, v in sorted(kwargs.items()))
    return tuple(parts)


def _describe(value: Any) -> Tuple:
    import numpy as np

    from repro.tensor import Tensor

    if isinstance(value, Tensor):
        return ("tensor", value.ndim, value.shape[-1] if value.ndim >= 2 else 1)
    if isinstance(value, np.ndarray):
        return ("ndarray", value.ndim, value.shape[-1] if value.ndim >= 2 else 1)
    if isinstance(value, (int, float, bool, str, type(None))):
        return ("scalar", value)
    x = getattr(value, "x", None)
    if x is not None and hasattr(value, "edge_index"):
        # Duck-typed pygx Batch: node features + COO edge index.
        return ("pygx", int(x.shape[-1]))
    ndata = getattr(value, "ndata", None)
    if ndata is not None and "feat" in ndata:
        # Duck-typed dglx graph: feature dict keyed by name.
        return ("dglx", int(ndata["feat"].shape[-1]))
    return ("opaque", type(value).__name__)


@dataclass
class CompileStats:
    """Lifetime counters of one :class:`CompiledStep`."""

    captures: int = 0
    replays: int = 0
    guard_failures: int = 0
    eager_calls: int = 0

    def __repr__(self) -> str:
        return (
            f"CompileStats(captures={self.captures}, replays={self.replays}, "
            f"guard_failures={self.guard_failures}, eager_calls={self.eager_calls})"
        )


class CompiledStep:
    """Capture-and-replay wrapper around a step function.

    Parameters
    ----------
    fn:
        The step callable.  Its returned tensors become the outputs of the
        captured graph (roots for dead-code elimination).
    passes:
        Which optimisation passes to run, in order (default: dce, cse,
        fold, fuse).
    fusion:
        Fusion knobs (:class:`~repro.compile.passes.FusionConfig`).
    signature_fn:
        Maps ``(args, kwargs)`` to a hashable plan key; defaults to
        :func:`default_signature`.
    constants:
        Tensors whose values are fixed for the lifetime of the plan
        (weights are *not* constants — they train — but e.g. a
        precomputed normalisation tensor is).
    max_plans:
        Upper bound on cached plans; exceeding it evicts the oldest
        (FIFO), bounding memory like CUDA-graph bucket pools.
    """

    def __init__(
        self,
        fn: Callable,
        passes: Sequence[str] = DEFAULT_PASSES,
        fusion: Optional[FusionConfig] = None,
        signature_fn: Optional[Callable[[Sequence, Dict], Tuple]] = None,
        constants: Sequence[Any] = (),
        max_plans: int = 16,
    ) -> None:
        if max_plans < 1:
            raise ValueError("max_plans must be positive")
        self.fn = fn
        self.passes = tuple(passes)
        self.fusion = fusion
        self.signature_fn = signature_fn or default_signature
        self.constants = tuple(constants)
        self.max_plans = max_plans
        self.plans: Dict[Tuple, ExecutionPlan] = {}
        self.stats = CompileStats()
        self.last_session: Optional[ReplaySession] = None

    # ------------------------------------------------------------------
    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        device = current_device()
        if device.capturing_or_replaying:
            # Nested compiled regions collapse into the outer one.
            self.stats.eager_calls += 1
            return self.fn(*args, **kwargs)
        try:
            signature = self.signature_fn(args, kwargs)
            hash(signature)
        except TypeError:
            self.stats.eager_calls += 1
            return self.fn(*args, **kwargs)

        plan = self.plans.get(signature)
        if plan is None:
            return self._capture(device, signature, args, kwargs)
        return self._replay(device, plan, signature, args, kwargs)

    # ------------------------------------------------------------------
    def _capture(self, device, signature: Tuple, args, kwargs) -> Any:
        tracer = Tracer(constants=self.constants)
        with device.capturing(tracer):
            result = self.fn(*args, **kwargs)
        ir = tracer.finish(outputs=result)
        decisions, stats = run_passes(ir, self.passes, self.fusion)
        plan = build_plan(ir, decisions, stats)
        if len(self.plans) >= self.max_plans:
            oldest = next(iter(self.plans))
            del self.plans[oldest]
        self.plans[signature] = plan
        self.stats.captures += 1
        return result

    def _replay(self, device, plan: ExecutionPlan, signature: Tuple, args, kwargs) -> Any:
        session = ReplaySession(plan)
        with device.replaying(session):
            result = self.fn(*args, **kwargs)
        self.last_session = session
        if session.failed:
            # Shape/control-flow drift: the eager fallback already charged
            # the remainder; drop the stale plan so the next call recaptures.
            self.stats.guard_failures += 1
            self.plans.pop(signature, None)
        else:
            self.stats.replays += 1
        return result

    # ------------------------------------------------------------------
    def plan_for(self, *args: Any, **kwargs: Any) -> Optional[ExecutionPlan]:
        """The cached plan these inputs would replay, if any."""
        try:
            return self.plans.get(self.signature_fn(args, kwargs))
        except TypeError:
            return None

    def invalidate(self) -> None:
        """Drop every cached plan (e.g. after mutating the model)."""
        self.plans.clear()

    def __repr__(self) -> str:
        return f"CompiledStep({getattr(self.fn, '__name__', 'fn')!r}, plans={len(self.plans)}, {self.stats!r})"
