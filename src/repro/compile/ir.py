"""Intermediate representation of one captured training/inference step.

A capture records every simulated kernel launch of a step, in issue order,
as an :class:`IRNode`.  Nodes launched through :func:`repro.tensor.make_op`
additionally carry *dataflow*: the identity of their output tensor and of
their parent tensors, which is what lets the optimization passes reason
about liveness (DCE), structural duplication (CSE) and producer->consumer
adjacency (fusion byte savings).  Kernels launched outside ``make_op`` —
backward kernels, optimizer updates, gradient accumulations — appear as
*opaque* nodes: real launches with costs and scopes but no visible edges,
which the passes treat conservatively (always live, fusable only by
adjacency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class IRNode:
    """One kernel launch of the captured step.

    ``out_id``/``parent_ids`` are capture-time tensor identities (``id()``
    of the Tensor objects, kept alive by the tracer for the duration of the
    capture so they cannot be recycled).  ``out_id`` is ``None`` for opaque
    nodes (backward/optimizer kernels launched outside ``make_op``).
    """

    index: int
    name: str
    scope: Tuple[str, ...]
    flops: float
    bytes_moved: float
    out_id: Optional[int] = None
    out_shape: Optional[Tuple[int, ...]] = None
    out_size: int = 0
    out_hash: Optional[str] = None
    requires_grad: bool = False
    parent_ids: Tuple[int, ...] = ()

    @property
    def has_dataflow(self) -> bool:
        """True when the node carries tensor-level dependency information."""
        return self.out_id is not None


class GraphIR:
    """The captured op graph: nodes in launch order plus dataflow indices."""

    def __init__(
        self,
        nodes: List[IRNode],
        output_ids: Set[int],
        aliases: Optional[Dict[int, int]] = None,
        constant_ids: Optional[Set[int]] = None,
    ) -> None:
        self.nodes = nodes
        #: Tensor ids the step returned (its observable results).
        self.output_ids = set(output_ids)
        #: View aliases: tensor id -> the id of the tensor it shares data
        #: with (reshape/detach produce no kernel but must not break edges).
        self.aliases = dict(aliases or {})
        #: Leaf tensor ids declared constant for the lifetime of the plan.
        self.constant_ids = set(constant_ids or ())
        self._producer: Dict[int, IRNode] = {}
        for node in nodes:
            if node.out_id is not None:
                self._producer[node.out_id] = node

    # ------------------------------------------------------------------
    def resolve(self, tensor_id: int) -> int:
        """Follow view aliases back to the canonical producing tensor id."""
        seen = set()
        while tensor_id in self.aliases and tensor_id not in seen:
            seen.add(tensor_id)
            tensor_id = self.aliases[tensor_id]
        return tensor_id

    def producer(self, tensor_id: int) -> Optional[IRNode]:
        """The node that produced ``tensor_id`` (through aliases), if traced."""
        return self._producer.get(self.resolve(tensor_id))

    def consumers(self) -> Dict[int, List[IRNode]]:
        """Map from node index to the nodes consuming its output."""
        out: Dict[int, List[IRNode]] = {}
        for node in self.nodes:
            for pid in node.parent_ids:
                parent = self.producer(pid)
                if parent is not None:
                    out.setdefault(parent.index, []).append(node)
        return out

    def is_output(self, node: IRNode) -> bool:
        """True if the node's output is one of the step's returned tensors."""
        if node.out_id is None:
            return False
        resolved_outputs = {self.resolve(t) for t in self.output_ids}
        return self.resolve(node.out_id) in resolved_outputs

    # ------------------------------------------------------------------
    @property
    def launch_count(self) -> int:
        return len(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        traced = sum(1 for n in self.nodes if n.has_dataflow)
        return f"GraphIR({len(self.nodes)} kernels, {traced} with dataflow)"


@dataclass
class PassStats:
    """What each optimization pass did to a captured graph."""

    dce_removed: int = 0
    cse_removed: int = 0
    folded: int = 0
    fused_groups: int = 0
    fused_members: int = 0
    #: Fused groups that are whole SDDMM->softmax->SpMM attention pipelines
    #: (a subset of ``fused_groups``, produced by the ``attention`` pass).
    attention_groups: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def launches_removed(self) -> int:
        """Kernel launches eliminated relative to the eager stream."""
        # Each fused group of k members collapses k launches into one.
        return self.dce_removed + self.cse_removed + self.folded + self.fused_members

    def summary(self) -> str:
        return (
            f"dce={self.dce_removed} cse={self.cse_removed} fold={self.folded} "
            f"fusion={self.fused_groups} groups ({self.fused_members} launches saved, "
            f"{self.attention_groups} attention pipelines)"
        )
