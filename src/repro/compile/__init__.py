"""repro.compile — graph capture, optimization passes, and fused replay.

The simulated-device analogue of CUDA Graphs + a fusing compiler
(torch.compile / TorchScript / TensorRT in the serving literature): trace
one step's kernel stream into an IR, optimise it (DCE, CSE, constant
folding, greedy elementwise fusion), and replay the compiled schedule so
kernel counts, timelines and memory reflect the fused execution — the
lever that matters most in the launch-bound regime the paper measures.

Entry points:

* :class:`CompiledStep` — wrap any step callable; used by
  ``repro.train`` trainers (``compile=True``) and
  ``repro.serve.InferenceModel.enable_compile()``.
* :func:`capture` — one-off capture of a callable into a
  :class:`GraphIR` for inspection.
"""

from repro.compile.compiled import (
    CompiledStep,
    CompileStats,
    default_signature,
)
from repro.compile.ir import GraphIR, IRNode, PassStats
from repro.compile.passes import (
    ACTION_EAGER,
    ACTION_FUSE_HEAD,
    ACTION_FUSE_MEMBER,
    ACTION_SKIP,
    DEFAULT_PASSES,
    ELEMENTWISE_KERNELS,
    FusionConfig,
    NodeDecision,
    run_passes,
)
from repro.compile.plan import ExecutionPlan, GuardFailure, PlanNode, ReplaySession, build_plan
from repro.compile.tracer import Tracer, content_hash


def capture(fn, *args, constants=(), **kwargs):
    """Run ``fn`` once under capture; returns ``(result, GraphIR)``."""
    from repro.device import current_device

    tracer = Tracer(constants=constants)
    with current_device().capturing(tracer):
        result = fn(*args, **kwargs)
    return result, tracer.finish(outputs=result)


__all__ = [
    "ACTION_EAGER",
    "ACTION_FUSE_HEAD",
    "ACTION_FUSE_MEMBER",
    "ACTION_SKIP",
    "CompiledStep",
    "CompileStats",
    "DEFAULT_PASSES",
    "ELEMENTWISE_KERNELS",
    "ExecutionPlan",
    "FusionConfig",
    "GraphIR",
    "GuardFailure",
    "IRNode",
    "NodeDecision",
    "PassStats",
    "PlanNode",
    "ReplaySession",
    "Tracer",
    "build_plan",
    "capture",
    "content_hash",
    "default_signature",
    "run_passes",
]
