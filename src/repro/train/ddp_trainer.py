"""Data-parallel training with bucketed all-reduce — the DDP counterpart
to the Fig. 6 DataParallel simulation.

A :class:`DDPTrainer` runs the Table V training protocol across
``BatchConfig.replicas`` data-parallel replicas:

* Replica 0 executes on the measured device, phase-instrumented exactly
  like :class:`~repro.train.GraphClassificationTrainer` (plus a ``comm``
  phase for gradient synchronisation).
* Replicas ``1..N-1`` execute the same micro-batches-worth of work on
  *shadow* devices — their numerics are real (each computes gradients of
  its own disjoint data shard against the shared parameters) but their
  time lands on discarded clocks, the same replica-symmetry assumption
  :mod:`repro.train.multi_gpu` makes for DataParallel.
* Shadow gradients are staged into the
  :class:`~repro.dist.DistributedDataParallel` wrapper, whose grad hooks
  launch bucket all-reduces *during* replica 0's backward; the residual
  wait is paid in :meth:`~repro.dist.DistributedDataParallel.finish_backward`
  before the optimizer step.

At ``world_size == 1`` (and ``grad_accumulation == 1``) the op and RNG
sequence is identical to the single-device trainer, so losses match
bitwise — eager or compiled, either framework.  Gradient accumulation
scales each micro-loss by ``1/k``, making the accumulated gradient equal
(to float tolerance) to the full replica-batch gradient.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterator, List, Optional

import numpy as np

from repro.datasets.base import GraphClassificationDataset
from repro.device import Device, LinkSpec, NVLINK, use_device
from repro.dist import (
    BatchConfig,
    Communicator,
    DEFAULT_BUCKET_BYTES,
    DistributedDataParallel,
    collect_grads,
)
from repro.models import ModelConfig
from repro.nn import cross_entropy
from repro.optim import Adam, ReduceLROnPlateau
from repro.train.graph_trainer import GraphClassificationTrainer, _build
from repro.train.results import EpochRecord, RunResult

#: Phase breakdown of a DDP epoch (Fig. 1/2 phases plus gradient sync).
DDP_PHASES = ("data_loading", "forward", "backward", "comm", "update")


def _take(iterator: Iterator, k: int) -> List:
    """Up to ``k`` items from ``iterator`` (fewer at the epoch tail)."""
    out = []
    for _ in range(k):
        item = next(iterator, None)
        if item is None:
            break
        out.append(item)
    return out


class DDPTrainer(GraphClassificationTrainer):
    """Trains one (framework, model) pair data-parallel over replicas."""

    def __init__(
        self,
        framework: str,
        model_name: str,
        dataset: GraphClassificationDataset,
        batch: BatchConfig,
        max_epochs: int = 1000,
        config: Optional[ModelConfig] = None,
        device: Optional[Device] = None,
        compile: bool = False,
        prefetch: bool = False,
        link: LinkSpec = NVLINK,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        algorithm: str = "auto",
        record_transfers: bool = False,
    ) -> None:
        super().__init__(
            framework,
            model_name,
            dataset,
            batch_size=batch.micro_batch_size,
            max_epochs=max_epochs,
            config=config,
            device=device,
            compile=compile,
            prefetch=prefetch,
        )
        self.batch = batch
        self.world_size = batch.replicas
        self.link = link
        self.bucket_bytes = bucket_bytes
        self.algorithm = algorithm
        self.record_transfers = record_transfers
        #: The :class:`~repro.dist.Communicator` of the most recent
        #: :meth:`run_fold` (for its collective stats and fabric).
        self.communicator: Optional[Communicator] = None
        #: The :class:`~repro.dist.DistributedDataParallel` wrapper of the
        #: most recent :meth:`run_fold`.
        self.ddp: Optional[DistributedDataParallel] = None

    # ------------------------------------------------------------------
    def _shard_loader(self, graphs, rng, rank: int):
        """Replica ``rank``'s training loader over its epoch shard."""
        if self.framework == "pygx":
            from repro.pygx import DataLoader
            from repro.pygx import PrefetchDataLoader as Prefetch

            loader = DataLoader(graphs, self.batch_size, shuffle=True,
                                rng=rng, rank=rank,
                                world_size=self.world_size)
        else:
            from repro.dglx import GraphDataLoader
            from repro.dglx import PrefetchDataLoader as Prefetch

            loader = GraphDataLoader(graphs, self.batch_size, shuffle=True,
                                     rng=rng, rank=rank,
                                     world_size=self.world_size)
        # Prefetch pipelines replica 0 (the measured timeline); shadow
        # replicas' loading time is discarded with their clocks anyway.
        return Prefetch(loader) if (self.prefetch and rank == 0) else loader

    # ------------------------------------------------------------------
    def run_fold(
        self,
        train_idx: np.ndarray,
        val_idx: np.ndarray,
        test_idx: np.ndarray,
        seed: int = 0,
        state_path=None,
        resume: bool = False,
    ) -> RunResult:
        """Train one fold data-parallel; returns the usual :class:`RunResult`.

        Checkpointing (``state_path``/``resume``) is not supported under
        DDP; both must stay at their defaults.
        """
        if state_path is not None or resume:
            raise NotImplementedError("DDPTrainer does not checkpoint runs")
        ds = self.dataset
        world = self.world_size
        accum = self.batch.grad_accumulation
        with use_device(self.device):
            rng = np.random.default_rng(seed)
            model = _build(self.framework, self.config, rng)
            optimizer = Adam(model.parameters(), lr=self.config.lr)
            scheduler = ReduceLROnPlateau(
                optimizer,
                factor=self.config.lr_reduce_factor,
                patience=self.config.lr_patience,
            )
            train_subset = ds.subset(train_idx)
            if world > 1:
                # One draw seeds *identical* loader RNGs on every replica:
                # same permutation everywhere, so the strided shards are
                # disjoint (repro.graph.sharding).
                loader_seed = int(rng.integers(2 ** 63))
                train_loaders = [
                    self._shard_loader(
                        train_subset, rng=np.random.default_rng(loader_seed),
                        rank=r)
                    for r in range(world)
                ]
            else:
                # Same RNG threading as the single-device trainer — the
                # basis of the world_size=1 bitwise-parity guarantee.
                train_loaders = [self._shard_loader(train_subset, rng=rng,
                                                    rank=0)]
            val_loader = self._loader(ds.subset(val_idx), shuffle=False, rng=rng)
            test_loader = self._loader(ds.subset(test_idx), shuffle=False, rng=rng)

            comm = Communicator(world, device=self.device, link=self.link,
                                record_transfers=self.record_transfers)
            ddp = DistributedDataParallel(model, comm,
                                          bucket_bytes=self.bucket_bytes,
                                          algorithm=self.algorithm)
            self.communicator, self.ddp = comm, ddp
            shadows = [Device(self.device.spec, self.device.host_costs)
                       for _ in range(world - 1)]
            clock = self.device.clock
            self.device.memory.reset_peak()
            inv_accum = 1.0 / accum

            def micro_step(inputs, labels, first):
                with clock.phase("forward"):
                    logits = model(inputs)
                    loss = cross_entropy(logits, labels)
                    if accum > 1:
                        loss = loss * inv_accum
                with clock.phase("backward"):
                    if first:
                        optimizer.zero_grad()
                    loss.backward()
                return loss

            def shadow_micro(inputs, labels, first):
                logits = model(inputs)
                loss = cross_entropy(logits, labels)
                if accum > 1:
                    loss = loss * inv_accum
                if first:
                    optimizer.zero_grad()
                loss.backward()
                return loss

            if self.compile:
                from repro.compile import CompiledStep

                step = CompiledStep(micro_step)
                self.compiled_step = step
            else:
                step = micro_step

            named = list(model.named_parameters())
            records: List[EpochRecord] = []
            start = clock.snapshot()
            for epoch in range(self.max_epochs):
                model.train()
                before = clock.snapshot()
                epoch_losses = []
                iters = [iter(self._iterate(loader)) for loader in train_loaders]
                while True:
                    group0 = _take(iters[0], accum)
                    if not group0:
                        break
                    k = len(group0)
                    step_losses = []
                    # Shadow replicas first: their gradients must be staged
                    # before replica 0's synchronised backward fires hooks.
                    for r in range(1, world):
                        with use_device(shadows[r - 1]):
                            group_r = _take(iters[r], k)
                            with ddp.no_sync():
                                for i, (inputs, labels) in enumerate(group_r):
                                    loss = shadow_micro(inputs, labels, i == 0)
                                    step_losses.append(loss.item() * accum
                                                       if accum > 1
                                                       else loss.item())
                            ddp.stage_remote_grads(r, collect_grads(named))
                    for i, (inputs, labels) in enumerate(group0):
                        sync_ctx = (ddp.no_sync()
                                    if world > 1 and i < k - 1
                                    else nullcontext())
                        with sync_ctx:
                            loss = step(inputs, labels, i == 0)
                        step_losses.append(loss.item() * accum if accum > 1
                                           else loss.item())
                    with clock.phase("update"):
                        ddp.finish_backward()
                        optimizer.step()
                    epoch_losses.append(float(np.mean(step_losses)))
                train_delta = before.delta(clock)

                before_eval = clock.snapshot()
                val_loss, val_acc = self._evaluate(model, val_loader)
                eval_delta = before_eval.delta(clock)
                records.append(
                    EpochRecord(
                        epoch=epoch,
                        train_time=train_delta.elapsed,
                        eval_time=eval_delta.elapsed,
                        phase_times=train_delta.phase_elapsed,
                        train_loss=float(np.mean(epoch_losses)),
                        val_loss=val_loss,
                        val_acc=val_acc,
                    )
                )
                scheduler.step(val_loss)
                # The paper's stopping rule: LR decayed to 1e-6.
                if optimizer.lr <= self.config.min_lr:
                    break

            _, test_acc = self._evaluate(model, test_loader)
            self.final_model = model
            total = start.delta(clock).elapsed
            return RunResult(
                test_acc=test_acc,
                epochs=records,
                peak_memory=self.device.memory.peak,
                gpu_utilization=clock.utilization(),
                total_time=total,
            )
