"""Model checkpointing to ``.npz`` archives.

The graph-classification protocol uses "the model parameters at the end of
training ... for evaluations on test sets" (Section IV-B.2); checkpoints
make that reproducible across processes, and they are what the
DataParallel simulation broadcasts between replicas.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.nn import Module

PathLike = Union[str, "os.PathLike[str]"]


def save_checkpoint(model: Module, path: PathLike) -> None:
    """Write the model's parameters and buffers to an ``.npz`` file."""
    state = model.state_dict()
    # np.savez forbids '/' in keys on load via attribute access, but plain
    # dict access works; keep names verbatim for fidelity.
    np.savez(path, **state)


def load_checkpoint(model: Module, path: PathLike) -> None:
    """Load an ``.npz`` checkpoint into ``model`` (strict key match)."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)


def checkpoint_nbytes(model: Module) -> int:
    """Size of a checkpoint's tensor payload in bytes."""
    return sum(array.nbytes for array in model.state_dict().values())
