"""Model checkpointing to ``.npz`` archives.

The graph-classification protocol uses "the model parameters at the end of
training ... for evaluations on test sets" (Section IV-B.2); checkpoints
make that reproducible across processes, and they are what the
DataParallel simulation broadcasts between replicas.

Beyond plain weights, :func:`save_run_state` / :func:`load_run_state`
capture a *whole training run* mid-flight — model, optimizer moments,
LR-schedule state and the exact RNG stream — so a run interrupted by a
fault resumes bitwise-identically to its uninterrupted twin.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.nn import Module
from repro.train.results import EpochRecord

PathLike = Union[str, "os.PathLike[str]"]


def save_checkpoint(model: Module, path: PathLike) -> None:
    """Write the model's parameters and buffers to an ``.npz`` file."""
    state = model.state_dict()
    # np.savez forbids '/' in keys on load via attribute access, but plain
    # dict access works; keep names verbatim for fidelity.
    np.savez(path, **state)


def load_checkpoint(model: Module, path: PathLike) -> None:
    """Load an ``.npz`` checkpoint into ``model`` (strict key match)."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)


def checkpoint_nbytes(model: Module) -> int:
    """Size of a checkpoint's tensor payload in bytes."""
    return sum(array.nbytes for array in model.state_dict().values())


def checkpoint_name(framework: str, model_name: str, dataset: str) -> str:
    """Canonical file name for a ``(framework, model, dataset)`` checkpoint."""
    return f"{framework}_{model_name}_{dataset}.npz"


# ----------------------------------------------------------------------
# full run state (fault-tolerant training)
# ----------------------------------------------------------------------
@dataclass
class RunState:
    """Metadata restored alongside the tensors of a run-state checkpoint."""

    #: Index of the last *completed* epoch; ``-1`` = nothing trained yet.
    epoch: int
    #: Whether the stopping rule already fired (LR decayed to ``min_lr``).
    stopped: bool = False
    #: Per-epoch records accumulated up to and including ``epoch``.
    records: List[EpochRecord] = field(default_factory=list)


def _record_to_dict(record: EpochRecord) -> Dict:
    return {
        "epoch": record.epoch,
        "train_time": record.train_time,
        "eval_time": record.eval_time,
        "phase_times": dict(record.phase_times),
        "train_loss": record.train_loss,
        "val_loss": record.val_loss,
        "val_acc": record.val_acc,
    }


def save_run_state(
    path: PathLike,
    model: Module,
    optimizer,
    scheduler,
    rng: np.random.Generator,
    epoch: int,
    records: List[EpochRecord] = (),
    stopped: bool = False,
) -> None:
    """Snapshot a training run after ``epoch`` into one ``.npz`` archive.

    Everything that influences the remaining epochs goes in: model
    parameters and buffers, optimizer state (Adam moments and step count),
    LR-schedule counters, and the *exact* generator state of ``rng`` (the
    stream driving shuffling, dropout and initialisation).  Restoring all
    four makes the continuation bitwise-identical to a run that never
    stopped — ``1e-6``-close is not enough when the stopping rule keys off
    exact loss comparisons.
    """
    arrays: Dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[f"model/{name}"] = value
    for name, value in optimizer.state_dict().items():
        arrays[f"optim/{name}"] = value
    meta = {
        "epoch": int(epoch),
        "stopped": bool(stopped),
        "scheduler": scheduler.state_dict(),
        # PCG64 state is a nested dict of (arbitrarily large) ints; JSON
        # round-trips it exactly.
        "rng_state": rng.bit_generator.state,
        "records": [_record_to_dict(r) for r in records],
    }
    arrays["__meta__"] = np.array(json.dumps(meta))
    np.savez(path, **arrays)


def load_run_state(
    path: PathLike,
    model: Module,
    optimizer,
    scheduler,
    rng: np.random.Generator,
) -> RunState:
    """Restore a :func:`save_run_state` snapshot in place.

    ``model``/``optimizer``/``scheduler``/``rng`` must be freshly built
    with the same configuration that produced the snapshot (strict key
    matching catches drift).  Returns the :class:`RunState` metadata so
    the trainer knows where to pick up.
    """
    with np.load(path) as archive:
        meta = json.loads(str(archive["__meta__"][()]))
        model_state = {}
        optim_state = {}
        for name in archive.files:
            if name.startswith("model/"):
                model_state[name[len("model/"):]] = archive[name]
            elif name.startswith("optim/"):
                optim_state[name[len("optim/"):]] = archive[name]
    model.load_state_dict(model_state)
    optimizer.load_state_dict(optim_state)
    scheduler.load_state_dict(meta["scheduler"])
    rng.bit_generator.state = meta["rng_state"]
    return RunState(
        epoch=int(meta["epoch"]),
        stopped=bool(meta["stopped"]),
        records=[EpochRecord(**r) for r in meta["records"]],
    )


def load_model(
    framework: str,
    config,
    path: PathLike,
    rng: Optional[np.random.Generator] = None,
) -> Module:
    """Build a fresh model for ``framework``/``config`` and load ``path``.

    This is the loading half of the serving story: the registry (and any
    other consumer of trained weights) should not need to know which
    framework pack a checkpoint came from beyond its name.  The returned
    model keeps its default (training) mode; callers that serve it switch
    to ``eval()`` themselves.
    """
    if framework == "pygx":
        from repro.pygx import build_model
    elif framework == "dglx":
        from repro.dglx import build_model
    else:
        raise ValueError(f"unknown framework {framework!r}; options: ('pygx', 'dglx')")
    model = build_model(config, rng or np.random.default_rng())
    load_checkpoint(model, path)
    return model
