"""Model checkpointing to ``.npz`` archives.

The graph-classification protocol uses "the model parameters at the end of
training ... for evaluations on test sets" (Section IV-B.2); checkpoints
make that reproducible across processes, and they are what the
DataParallel simulation broadcasts between replicas.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.nn import Module

PathLike = Union[str, "os.PathLike[str]"]


def save_checkpoint(model: Module, path: PathLike) -> None:
    """Write the model's parameters and buffers to an ``.npz`` file."""
    state = model.state_dict()
    # np.savez forbids '/' in keys on load via attribute access, but plain
    # dict access works; keep names verbatim for fidelity.
    np.savez(path, **state)


def load_checkpoint(model: Module, path: PathLike) -> None:
    """Load an ``.npz`` checkpoint into ``model`` (strict key match)."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)


def checkpoint_nbytes(model: Module) -> int:
    """Size of a checkpoint's tensor payload in bytes."""
    return sum(array.nbytes for array in model.state_dict().values())


def checkpoint_name(framework: str, model_name: str, dataset: str) -> str:
    """Canonical file name for a ``(framework, model, dataset)`` checkpoint."""
    return f"{framework}_{model_name}_{dataset}.npz"


def load_model(
    framework: str,
    config,
    path: PathLike,
    rng: Optional[np.random.Generator] = None,
) -> Module:
    """Build a fresh model for ``framework``/``config`` and load ``path``.

    This is the loading half of the serving story: the registry (and any
    other consumer of trained weights) should not need to know which
    framework pack a checkpoint came from beyond its name.  The returned
    model keeps its default (training) mode; callers that serve it switch
    to ``eval()`` themselves.
    """
    if framework == "pygx":
        from repro.pygx import build_model
    elif framework == "dglx":
        from repro.dglx import build_model
    else:
        raise ValueError(f"unknown framework {framework!r}; options: ('pygx', 'dglx')")
    model = build_model(config, rng or np.random.default_rng())
    load_checkpoint(model, path)
    return model
