"""Result records produced by the trainers and consumed by the benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class EpochRecord:
    """Simulated timing of one training epoch."""

    epoch: int
    train_time: float
    eval_time: float
    phase_times: Dict[str, float]
    train_loss: float
    val_loss: float
    val_acc: float


@dataclass
class RunResult:
    """Outcome of one training run (one seed or one fold)."""

    test_acc: float
    epochs: List[EpochRecord] = field(default_factory=list)
    peak_memory: int = 0
    gpu_utilization: float = 0.0
    total_time: float = 0.0

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    @property
    def mean_epoch_time(self) -> float:
        """Mean simulated train-time per epoch (the paper's 'Epoch' column)."""
        if not self.epochs:
            return 0.0
        return sum(e.train_time for e in self.epochs) / len(self.epochs)

    @property
    def mean_full_epoch_time(self) -> float:
        """Mean train + validation time per epoch.

        The node-classification pipelines the paper follows time an "epoch"
        as one training pass plus the per-epoch validation evaluation, so
        Table IV uses this; the graph-classification breakdown (Fig. 1/2)
        uses the train-only :attr:`mean_epoch_time`.
        """
        if not self.epochs:
            return 0.0
        return sum(e.train_time + e.eval_time for e in self.epochs) / len(self.epochs)

    def mean_phase_times(self) -> Dict[str, float]:
        """Per-phase mean time per epoch (Fig. 1/2 series)."""
        if not self.epochs:
            return {}
        keys = set()
        for e in self.epochs:
            keys.update(e.phase_times)
        return {
            k: sum(e.phase_times.get(k, 0.0) for e in self.epochs) / len(self.epochs)
            for k in keys
        }


@dataclass
class ExperimentResult:
    """Aggregate over seeds/folds: one cell of Table IV or Table V."""

    framework: str
    model: str
    dataset: str
    acc_mean: float
    acc_std: float
    epoch_time: float
    total_time: float
    runs: List[RunResult] = field(default_factory=list)

    def format_row(self) -> str:
        return (
            f"{self.dataset:8s} {self.model:9s} {self.framework:5s} "
            f"{self.epoch_time:9.4f}s/{self.total_time:8.2f}s "
            f"{self.acc_mean * 100:5.1f}+-{self.acc_std * 100:.1f}"
        )
