"""Training harnesses reproducing the paper's experiment protocols."""

from repro.train.checkpoint import (
    RunState,
    checkpoint_name,
    checkpoint_nbytes,
    load_checkpoint,
    load_model,
    load_run_state,
    save_checkpoint,
    save_run_state,
)
from repro.train.ddp_trainer import DDP_PHASES, DDPTrainer
from repro.train.graph_trainer import FaultTolerantRun, GraphClassificationTrainer
from repro.train.multi_gpu import multi_gpu_epoch_time
from repro.train.node_trainer import NodeClassificationTrainer
from repro.train.results import EpochRecord, ExperimentResult, RunResult
from repro.train.sampled_trainer import SampledNodeTrainer
from repro.train.stats import AccuracyComparison, compare_accuracies

__all__ = [
    "NodeClassificationTrainer",
    "GraphClassificationTrainer",
    "DDPTrainer",
    "DDP_PHASES",
    "SampledNodeTrainer",
    "FaultTolerantRun",
    "RunState",
    "save_run_state",
    "load_run_state",
    "multi_gpu_epoch_time",
    "EpochRecord",
    "ExperimentResult",
    "RunResult",
    "save_checkpoint",
    "load_checkpoint",
    "load_model",
    "checkpoint_name",
    "checkpoint_nbytes",
    "compare_accuracies",
    "AccuracyComparison",
]
