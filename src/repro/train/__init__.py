"""Training harnesses reproducing the paper's experiment protocols."""

from repro.train.checkpoint import (
    checkpoint_name,
    checkpoint_nbytes,
    load_checkpoint,
    load_model,
    save_checkpoint,
)
from repro.train.graph_trainer import GraphClassificationTrainer
from repro.train.multi_gpu import multi_gpu_epoch_time
from repro.train.node_trainer import NodeClassificationTrainer
from repro.train.results import EpochRecord, ExperimentResult, RunResult
from repro.train.stats import AccuracyComparison, compare_accuracies

__all__ = [
    "NodeClassificationTrainer",
    "GraphClassificationTrainer",
    "multi_gpu_epoch_time",
    "EpochRecord",
    "ExperimentResult",
    "RunResult",
    "save_checkpoint",
    "load_checkpoint",
    "load_model",
    "checkpoint_name",
    "checkpoint_nbytes",
    "compare_accuracies",
    "AccuracyComparison",
]
