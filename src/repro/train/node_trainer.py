"""Full-batch node classification training (Table IV protocol).

Section IV-A: Cora/PubMed, full-batch (all training nodes every epoch),
2-layer models, Adam, a maximum of 200 epochs; per-epoch time and final test
accuracy are reported.  The graph is moved to the device once before
training (so per-epoch time contains no data loading, matching the paper's
node-classification setting), each epoch runs one forward/backward/update
and one no-grad validation pass, and the test accuracy is taken at the
best-validation epoch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.base import NodeClassificationDataset
from repro.device import Device, current_device, use_device
from repro.graph import GraphSample
from repro.models import ModelConfig, node_config
from repro.nn import accuracy, cross_entropy
from repro.optim import Adam
from repro.tensor import Tensor, index_rows, no_grad
from repro.train.results import EpochRecord, ExperimentResult, RunResult

FRAMEWORKS = ("pygx", "dglx")


def _build(framework: str, config: ModelConfig, rng: np.random.Generator):
    if framework == "pygx":
        from repro.pygx import build_model

        return build_model(config, rng)
    if framework == "dglx":
        from repro.dglx import build_model

        return build_model(config, rng)
    raise ValueError(f"unknown framework {framework!r}; options: {FRAMEWORKS}")


def _to_device(framework: str, graph: GraphSample):
    """Move the full graph to the device (one-time cost, not per-epoch)."""
    if framework == "pygx":
        from repro.pygx import Batch, Data

        return Batch.from_data_list([Data.from_sample(graph)])
    from repro.dglx import batch as dgl_batch

    return dgl_batch([graph])


class NodeClassificationTrainer:
    """Trains one (framework, model) pair on a citation dataset."""

    def __init__(
        self,
        framework: str,
        model_name: str,
        dataset: NodeClassificationDataset,
        max_epochs: int = 200,
        config: Optional[ModelConfig] = None,
        device: Optional[Device] = None,
        precision: str = "fp32",
    ) -> None:
        if framework not in FRAMEWORKS:
            raise ValueError(f"unknown framework {framework!r}; options: {FRAMEWORKS}")
        self.framework = framework
        self.model_name = model_name
        self.dataset = dataset
        self.max_epochs = max_epochs
        self.config = config or node_config(
            model_name, in_dim=dataset.num_features, n_classes=dataset.num_classes
        )
        #: "fp16" runs the device's fp16 roofline mode (halved tensor
        #: bytes; numerics and losses bitwise-identical to fp32).
        self.precision = precision if device is None else device.precision
        self.device = device or Device(precision=precision)

    # ------------------------------------------------------------------
    def run(self, seed: int = 0) -> RunResult:
        """One training run; returns per-epoch records and the test acc."""
        ds = self.dataset
        labels = np.asarray(ds.graph.y)
        with use_device(self.device):
            rng = np.random.default_rng(seed)
            model = _build(self.framework, self.config, rng)
            optimizer = Adam(model.parameters(), lr=self.config.lr)
            batch = _to_device(self.framework, ds.graph)
            clock = self.device.clock
            self.device.memory.reset_peak()

            records = []
            best_val, best_test = -1.0, 0.0
            start = clock.snapshot()
            for epoch in range(self.max_epochs):
                model.train()
                before = clock.snapshot()
                with clock.phase("forward"):
                    logits = model(batch)
                    loss = cross_entropy(
                        index_rows(logits, ds.train_idx), labels[ds.train_idx]
                    )
                with clock.phase("backward"):
                    optimizer.zero_grad()
                    loss.backward()
                with clock.phase("update"):
                    optimizer.step()
                train_delta = before.delta(clock)

                model.eval()
                before_eval = clock.snapshot()
                with no_grad():
                    val_logits = model(batch)
                val_acc = accuracy(
                    Tensor(val_logits.data[ds.val_idx]), labels[ds.val_idx]
                )
                with no_grad():
                    val_loss = cross_entropy(
                        Tensor(val_logits.data[ds.val_idx]), labels[ds.val_idx]
                    ).item()
                eval_delta = before_eval.delta(clock)

                if val_acc > best_val:
                    best_val = val_acc
                    best_test = accuracy(
                        Tensor(val_logits.data[ds.test_idx]), labels[ds.test_idx]
                    )
                records.append(
                    EpochRecord(
                        epoch=epoch,
                        train_time=train_delta.elapsed,
                        eval_time=eval_delta.elapsed,
                        phase_times=train_delta.phase_elapsed,
                        train_loss=loss.item(),
                        val_loss=val_loss,
                        val_acc=val_acc,
                    )
                )
            total = start.delta(clock).elapsed
            return RunResult(
                test_acc=best_test,
                epochs=records,
                peak_memory=self.device.memory.peak,
                gpu_utilization=clock.utilization(),
                total_time=total,
            )

    # ------------------------------------------------------------------
    def run_seeds(self, seeds=(0, 1, 2, 3)) -> ExperimentResult:
        """Aggregate multiple seeds into a Table IV cell."""
        runs = [self.run(seed) for seed in seeds]
        accs = np.array([r.test_acc for r in runs])
        return ExperimentResult(
            framework=self.framework,
            model=self.model_name,
            dataset=self.dataset.name,
            acc_mean=float(accs.mean()),
            acc_std=float(accs.std()),
            epoch_time=float(np.mean([r.mean_full_epoch_time for r in runs])),
            total_time=float(np.mean([r.total_time for r in runs])),
            runs=runs,
        )
