"""Mini-batch graph classification training (Table V protocol).

Section IV-B: ENZYMES/DD, stratified 10-fold cross-validation (8:1:1),
Adam with ReduceLROnPlateau (factor 0.5, patience 25), training stops when
the LR decays to ``min_lr`` (1e-6) or the epoch cap is hit, batch size 128,
mean readout + MLP classifier.

Every epoch is phase-instrumented (data loading / forward / backward /
update / other), which regenerates the breakdown of Fig. 1 and Fig. 2
directly from the simulated clock.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import GraphClassificationDataset
from repro.datasets.splits import kfold_splits
from repro.device import Device, OutOfMemoryError, use_device
from repro.models import ModelConfig, graph_config
from repro.nn import accuracy, cross_entropy
from repro.optim import Adam, ReduceLROnPlateau
from repro.tensor import no_grad
from repro.train.checkpoint import PathLike, load_run_state, save_run_state
from repro.train.results import EpochRecord, ExperimentResult, RunResult

FRAMEWORKS = ("pygx", "dglx")
PHASES = ("data_loading", "forward", "backward", "update")


def _build(framework: str, config: ModelConfig, rng: np.random.Generator):
    if framework == "pygx":
        from repro.pygx import build_model

        return build_model(config, rng)
    if framework == "dglx":
        from repro.dglx import build_model

        return build_model(config, rng)
    raise ValueError(f"unknown framework {framework!r}; options: {FRAMEWORKS}")


@dataclass
class FaultTolerantRun:
    """A :meth:`run_fold_fault_tolerant` outcome: the run plus its scars."""

    result: RunResult
    #: How many times a fault aborted an epoch and training resumed from
    #: the last checkpoint.
    restarts: int
    #: The :class:`~repro.faults.FaultStats` of the injector, if one ran.
    fault_stats: Optional[Any] = None


class GraphClassificationTrainer:
    """Trains one (framework, model) pair on a TU-style dataset."""

    def __init__(
        self,
        framework: str,
        model_name: str,
        dataset: GraphClassificationDataset,
        batch_size: int = 128,
        max_epochs: int = 1000,
        config: Optional[ModelConfig] = None,
        device: Optional[Device] = None,
        compile: bool = False,
        prefetch: bool = False,
        precision: str = "fp32",
    ) -> None:
        if framework not in FRAMEWORKS:
            raise ValueError(f"unknown framework {framework!r}; options: {FRAMEWORKS}")
        self.framework = framework
        self.model_name = model_name
        self.dataset = dataset
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.config = config or graph_config(
            model_name, in_dim=dataset.num_features, n_classes=dataset.num_classes
        )
        #: Roofline precision mode of the training device: "fp16" halves
        #: tensor bytes (2x bandwidth, half peak memory) with numerics
        #: untouched, so losses match fp32 bitwise.  Ignored when an
        #: explicit ``device`` is passed.
        self.precision = precision if device is None else device.precision
        self.device = device or Device(precision=precision)
        #: Capture-and-replay the per-batch train step through
        #: ``repro.compile`` (fewer kernel launches, fused schedule).
        self.compile = compile
        #: Pipeline batch collation behind compute with the framework's
        #: ``PrefetchDataLoader`` (Section IV-D's overlap, executed).
        #: Numerics are identical either way; only epoch time changes.
        self.prefetch = prefetch
        #: The :class:`~repro.compile.CompiledStep` of the most recent
        #: :meth:`run_fold` call when ``compile=True`` (for its stats).
        self.compiled_step = None
        #: The trained network from the most recent :meth:`run_fold` call —
        #: the parameters "at the end of training" that Section IV-B.2
        #: evaluates, and what gets checkpointed for serving.
        self.final_model = None

    # ------------------------------------------------------------------
    # loaders
    # ------------------------------------------------------------------
    def _loader(self, graphs, shuffle: bool, rng: np.random.Generator):
        if self.framework == "pygx":
            from repro.pygx import DataLoader
            from repro.pygx import PrefetchDataLoader as Prefetch

            loader = DataLoader(graphs, self.batch_size, shuffle=shuffle, rng=rng)
        else:
            from repro.dglx import GraphDataLoader
            from repro.dglx import PrefetchDataLoader as Prefetch

            loader = GraphDataLoader(graphs, self.batch_size, shuffle=shuffle, rng=rng)
        return Prefetch(loader) if self.prefetch else loader

    def _iterate(self, loader):
        """Yield ``(model_input, labels)`` uniformly for both frameworks."""
        if self.framework == "pygx":
            for batch in loader:
                yield batch, batch.y
        else:
            yield from loader

    # ------------------------------------------------------------------
    def _evaluate(self, model, loader) -> Tuple[float, float]:
        """(loss, accuracy) over a loader, gradient-free."""
        model.eval()
        losses, accs, weights = [], [], []
        with no_grad():
            for inputs, labels in self._iterate(loader):
                logits = model(inputs)
                losses.append(cross_entropy(logits, labels).item())
                accs.append(accuracy(logits, labels))
                weights.append(len(labels))
        total = float(np.sum(weights)) or 1.0
        loss = float(np.dot(losses, weights) / total)
        acc = float(np.dot(accs, weights) / total)
        return loss, acc

    # ------------------------------------------------------------------
    def run_fold(
        self,
        train_idx: np.ndarray,
        val_idx: np.ndarray,
        test_idx: np.ndarray,
        seed: int = 0,
        state_path: Optional[PathLike] = None,
        resume: bool = False,
    ) -> RunResult:
        """Train on one CV fold; returns per-epoch records and test acc.

        With ``state_path`` set, the full run state (model, optimizer,
        LR schedule, RNG stream, per-epoch records) is checkpointed there
        after every epoch — and once up front, so even an epoch-0 fault
        has something to resume from.  ``resume=True`` restores that
        snapshot (if the file exists) and continues from the next epoch,
        reproducing the uninterrupted run bitwise.
        """
        ds = self.dataset
        with use_device(self.device):
            rng = np.random.default_rng(seed)
            model = _build(self.framework, self.config, rng)
            optimizer = Adam(model.parameters(), lr=self.config.lr)
            scheduler = ReduceLROnPlateau(
                optimizer,
                factor=self.config.lr_reduce_factor,
                patience=self.config.lr_patience,
            )
            train_loader = self._loader(ds.subset(train_idx), shuffle=True, rng=rng)
            val_loader = self._loader(ds.subset(val_idx), shuffle=False, rng=rng)
            test_loader = self._loader(ds.subset(test_idx), shuffle=False, rng=rng)
            clock = self.device.clock
            self.device.memory.reset_peak()

            start_epoch = 0
            stopped = False
            restored: List[EpochRecord] = []
            if state_path is not None and resume and os.path.exists(state_path):
                state = load_run_state(state_path, model, optimizer, scheduler, rng)
                start_epoch = state.epoch + 1
                stopped = state.stopped
                restored = list(state.records)
            elif state_path is not None:
                save_run_state(state_path, model, optimizer, scheduler, rng, epoch=-1)

            def train_step(inputs, labels):
                with clock.phase("forward"):
                    logits = model(inputs)
                    loss = cross_entropy(logits, labels)
                with clock.phase("backward"):
                    optimizer.zero_grad()
                    loss.backward()
                with clock.phase("update"):
                    optimizer.step()
                return loss

            if self.compile:
                from repro.compile import CompiledStep

                step = CompiledStep(train_step)
                self.compiled_step = step
            else:
                step = train_step

            records: List[EpochRecord] = restored
            start = clock.snapshot()
            # A restored ``stopped`` means the stopping rule already fired;
            # go straight to the test evaluation.
            for epoch in range(start_epoch, start_epoch if stopped else self.max_epochs):
                model.train()
                before = clock.snapshot()
                epoch_losses = []
                for inputs, labels in self._iterate(train_loader):
                    loss = step(inputs, labels)
                    epoch_losses.append(loss.item())
                train_delta = before.delta(clock)

                before_eval = clock.snapshot()
                val_loss, val_acc = self._evaluate(model, val_loader)
                eval_delta = before_eval.delta(clock)
                records.append(
                    EpochRecord(
                        epoch=epoch,
                        train_time=train_delta.elapsed,
                        eval_time=eval_delta.elapsed,
                        phase_times=train_delta.phase_elapsed,
                        train_loss=float(np.mean(epoch_losses)),
                        val_loss=val_loss,
                        val_acc=val_acc,
                    )
                )
                scheduler.step(val_loss)
                # The paper's stopping rule: LR decayed to 1e-6.
                stopped = optimizer.lr <= self.config.min_lr
                if state_path is not None:
                    save_run_state(
                        state_path, model, optimizer, scheduler, rng,
                        epoch=epoch, records=records, stopped=stopped,
                    )
                if stopped:
                    break

            _, test_acc = self._evaluate(model, test_loader)
            self.final_model = model
            total = start.delta(clock).elapsed
            return RunResult(
                test_acc=test_acc,
                epochs=records,
                peak_memory=self.device.memory.peak,
                gpu_utilization=clock.utilization(),
                total_time=total,
            )

    # ------------------------------------------------------------------
    def run_fold_fault_tolerant(
        self,
        train_idx: np.ndarray,
        val_idx: np.ndarray,
        test_idx: np.ndarray,
        seed: int = 0,
        fault_plan=None,
        state_path: Optional[PathLike] = None,
        max_restarts: int = 100,
    ) -> FaultTolerantRun:
        """Run one fold to completion despite injected (or real) faults.

        Wraps :meth:`run_fold` with checkpoint/resume: any
        :class:`~repro.device.OutOfMemoryError` or
        :class:`~repro.faults.FaultError` that escapes an epoch rolls the
        run back to the last end-of-epoch snapshot at ``state_path`` and
        retries.  Because the snapshot restores optimizer and RNG state
        exactly, the final loss curve and test accuracy are bitwise
        identical to a fault-free run — faults cost simulated time, never
        numerics.

        ``fault_plan`` is an optional :class:`~repro.faults.FaultPlan`;
        one injector (one decision stream) spans all restart attempts, so
        a deterministic fault cannot re-fire at the same point forever.
        """
        from repro.faults import FaultError

        if state_path is None:
            raise ValueError("run_fold_fault_tolerant needs a state_path to checkpoint to")
        injector = fault_plan.start() if fault_plan is not None else None
        restarts = 0
        while True:
            try:
                if injector is not None:
                    with self.device.injecting(injector):
                        result = self.run_fold(
                            train_idx, val_idx, test_idx, seed=seed,
                            state_path=state_path, resume=restarts > 0,
                        )
                else:
                    result = self.run_fold(
                        train_idx, val_idx, test_idx, seed=seed,
                        state_path=state_path, resume=restarts > 0,
                    )
                return FaultTolerantRun(
                    result=result,
                    restarts=restarts,
                    fault_stats=injector.stats if injector is not None else None,
                )
            except (OutOfMemoryError, FaultError):
                restarts += 1
                if restarts > max_restarts:
                    raise

    # ------------------------------------------------------------------
    def cross_validate(
        self,
        n_folds: int = 10,
        seed: int = 0,
        max_folds: Optional[int] = None,
    ) -> ExperimentResult:
        """Stratified k-fold CV (Table V).  ``max_folds`` trims for benches."""
        splits = kfold_splits(self.dataset.labels, n_folds, np.random.default_rng(seed))
        if max_folds is not None:
            splits = splits[:max_folds]
        runs = [
            self.run_fold(train, val, test, seed=seed + i)
            for i, (train, val, test) in enumerate(splits)
        ]
        accs = np.array([r.test_acc for r in runs])
        return ExperimentResult(
            framework=self.framework,
            model=self.model_name,
            dataset=self.dataset.name,
            acc_mean=float(accs.mean()),
            acc_std=float(accs.std()),
            epoch_time=float(np.mean([r.mean_epoch_time for r in runs])),
            total_time=float(np.mean([r.total_time for r in runs])),
            runs=runs,
        )

    # ------------------------------------------------------------------
    def measure_epoch(
        self, n_epochs: int = 2, seed: int = 0, train_fraction: float = 0.8
    ) -> RunResult:
        """Timing-only runs over the dataset's training split.

        Used by the Fig. 1/2/4/5 benches, which need per-phase time, memory
        and utilisation rather than converged accuracy.
        """
        n = len(self.dataset)
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        n_train = max(int(n * train_fraction), 1)
        train_idx = order[:n_train]
        rest = order[n_train:]
        half = max(len(rest) // 2, 1)
        saved = self.max_epochs
        self.max_epochs = n_epochs
        try:
            return self.run_fold(train_idx, rest[:half], rest[half:] if len(rest) > half else rest[:half], seed)
        finally:
            self.max_epochs = saved
