"""Multi-GPU (DataParallel) training simulation — Fig. 6.

Section IV-E: GCN and GAT on MNIST superpixels, data parallelism via
PyTorch's ``DataParallel``, 1/2/4/8 GPUs, several batch sizes.  Per
iteration the mini-batch is split across replicas; since replicas are
symmetric, the wall time of the compute phase equals one replica's time on
``batch_size / n_gpus`` graphs, plus the parameter broadcast, input
scatter, output gather and gradient reduction modelled by
:mod:`repro.device.multigpu`.

Data loading (collation) stays on the host process and is *not* divided by
the GPU count — exactly why the paper finds that "training models on
multiple GPUs can only reduce the computing time" while loading dominates.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datasets.base import GraphClassificationDataset
from repro.device import DataParallelPlan, Device, charge_iteration_overhead, use_device
from repro.models import ModelConfig, graph_config
from repro.nn import cross_entropy
from repro.optim import Adam

FRAMEWORKS = ("pygx", "dglx")


def _collate(framework: str, graphs):
    if framework == "pygx":
        from repro.pygx.data import Batch, Data

        return Batch.from_data_list([Data.from_sample(g) for g in graphs])
    from repro.dglx import batch as dgl_batch

    g = dgl_batch(graphs)
    return g


def _batch_nbytes(graphs) -> int:
    return int(
        sum(g.x.nbytes + g.edge_index.nbytes for g in graphs)
    )


def multi_gpu_epoch_time(
    framework: str,
    model_name: str,
    dataset: GraphClassificationDataset,
    batch_size: int,
    n_gpus: int,
    device: Optional[Device] = None,
    max_batches: Optional[int] = None,
    seed: int = 0,
    config: Optional[ModelConfig] = None,
) -> float:
    """Simulated seconds per epoch of DataParallel training.

    ``max_batches`` bounds the measured batches; the result is scaled back
    to a full epoch (every batch has the same expected cost).
    """
    if framework not in FRAMEWORKS:
        raise ValueError(f"unknown framework {framework!r}; options: {FRAMEWORKS}")
    if n_gpus < 1:
        raise ValueError("n_gpus must be >= 1")
    if batch_size < n_gpus:
        raise ValueError("batch size must be at least one graph per GPU")
    device = device or Device()
    config = config or graph_config(
        model_name, in_dim=dataset.num_features, n_classes=dataset.num_classes
    )
    with use_device(device):
        rng = np.random.default_rng(seed)
        if framework == "pygx":
            from repro.pygx import build_model
        else:
            from repro.dglx import build_model
        model = build_model(config, rng)
        optimizer = Adam(model.parameters(), lr=config.lr)
        param_bytes = model.param_bytes()
        costs = device.host_costs

        graphs: List = list(dataset.graphs)
        n_batches_total = (len(graphs) + batch_size - 1) // batch_size
        starts = range(0, len(graphs), batch_size)
        if max_batches is not None:
            starts = list(starts)[:max_batches]

        clock = device.clock
        begin = clock.snapshot()
        n_measured = 0
        for start in starts:
            chunk = graphs[start : start + batch_size]
            per_gpu = max(len(chunk) // n_gpus, 1)
            replica_graphs = chunk[:per_gpu]

            # Representative replica's collation (full simulated cost)...
            with clock.phase("data_loading"):
                device.host(costs.fetch_per_graph * len(chunk))
                batch = _collate(framework, replica_graphs)
                # ...plus the host cost of collating the other replicas'
                # shares (DataParallel collates serially on the host).
                others = len(chunk) - len(replica_graphs)
                if others > 0:
                    other_bytes = _batch_nbytes(chunk[per_gpu:])
                    if framework == "pygx":
                        extra = (
                            (n_gpus - 1) * costs.pyg_batch_base
                            + costs.pyg_batch_per_graph * others
                        )
                    else:
                        extra = (
                            (n_gpus - 1) * costs.dgl_batch_base
                            + (costs.dgl_batch_per_graph + 2 * costs.dgl_batch_per_type)
                            * others
                        )
                    device.host(extra + costs.batch_per_byte * other_bytes)
                    device.transfer(other_bytes)

            plan = DataParallelPlan(
                n_gpus=n_gpus,
                param_bytes=param_bytes,
                input_bytes=_batch_nbytes(chunk),
                output_bytes=4 * len(chunk) * config.n_classes,
            )
            charge_iteration_overhead(device, plan)

            model.train()
            if framework == "pygx":
                labels = batch.y
                inputs = batch
            else:
                labels = np.array([g.y for g in replica_graphs])
                inputs = batch
            with clock.phase("forward"):
                loss = cross_entropy(model(inputs), labels)
            with clock.phase("backward"):
                optimizer.zero_grad()
                loss.backward()
            with clock.phase("update"):
                optimizer.step()
            n_measured += 1

        measured = begin.delta(clock).elapsed
        if n_measured == 0:
            return 0.0
        return measured / n_measured * n_batches_total
