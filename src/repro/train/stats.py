"""Statistical comparison of accuracy results.

The paper repeatedly concludes "it is hard to tell the best between the two
frameworks" on accuracy.  :func:`compare_accuracies` makes that statement
testable: a Welch t-test over per-run test accuracies, with the paper-style
verdict that the frameworks are statistically indistinguishable when the
p-value clears a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class AccuracyComparison:
    """Welch t-test summary between two accuracy samples."""

    mean_a: float
    mean_b: float
    t_statistic: float
    p_value: float

    def indistinguishable(self, alpha: float = 0.05) -> bool:
        """True when the difference is not significant at level ``alpha``."""
        return self.p_value > alpha

    @property
    def mean_gap(self) -> float:
        return abs(self.mean_a - self.mean_b)


def compare_accuracies(
    accs_a: Sequence[float], accs_b: Sequence[float]
) -> AccuracyComparison:
    """Welch t-test between two sets of per-run accuracies."""
    a = np.asarray(accs_a, dtype=np.float64)
    b = np.asarray(accs_b, dtype=np.float64)
    if len(a) < 2 or len(b) < 2:
        # Degenerate samples: fall back to a mean comparison with p=1 when
        # equal, p=0.5 otherwise (no variance information available).
        gap = abs(a.mean() - b.mean())
        return AccuracyComparison(
            mean_a=float(a.mean()),
            mean_b=float(b.mean()),
            t_statistic=0.0,
            p_value=1.0 if gap < 1e-12 else 0.5,
        )
    if np.allclose(a, a[0]) and np.allclose(b, b[0]):
        same = abs(a.mean() - b.mean()) < 1e-12
        return AccuracyComparison(
            mean_a=float(a.mean()),
            mean_b=float(b.mean()),
            t_statistic=0.0 if same else np.inf,
            p_value=1.0 if same else 0.0,
        )
    t_stat, p_value = scipy_stats.ttest_ind(a, b, equal_var=False)
    return AccuracyComparison(
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        t_statistic=float(t_stat),
        p_value=float(p_value),
    )
