"""Sampled mini-batch node-classification training (large-graph regime).

The GraphSAGE training protocol at scale: instead of the full-batch Table
IV loop (whole graph resident on the device), every step trains on a
fanout-sampled subgraph around a shuffled chunk of training seeds, so
peak device memory is bounded by the batch's sampled support rather than
the graph — the only way a million-node graph trains under a real memory
cap.

Wired through both framework packs' ``NeighborLoader``\\ s and composing
with the existing execution stack: ``prefetch=True`` pipelines
sampling+collation behind compute (the packs' ``PrefetchDataLoader``),
``compile=True`` captures the per-batch train step through
``repro.compile`` (sampled batches of differing node counts share one
plan — the structural-signature bucketing).  Epochs report the
``sampling`` phase alongside data_loading/forward/backward/update.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.device import Device, use_device
from repro.models import ModelConfig, node_config
from repro.nn import accuracy, cross_entropy
from repro.optim import Adam
from repro.scale.dataset import ScaleNodeDataset
from repro.tensor import index_rows, no_grad
from repro.train.results import EpochRecord, RunResult

FRAMEWORKS = ("pygx", "dglx")
PHASES = ("sampling", "data_loading", "forward", "backward", "update")


def _build(framework: str, config: ModelConfig, rng: np.random.Generator):
    if framework == "pygx":
        from repro.pygx import build_model

        return build_model(config, rng)
    if framework == "dglx":
        from repro.dglx import build_model

        return build_model(config, rng)
    raise ValueError(f"unknown framework {framework!r}; options: {FRAMEWORKS}")


class SampledNodeTrainer:
    """Fanout-sampled mini-batch trainer for one (framework, model) pair.

    ``fanouts`` set both the sampler and the model depth
    (``n_layers = len(fanouts)``) so every conv layer aggregates over
    sampled support.  ``max_batches`` trims each training epoch for
    timing-focused benches.
    """

    def __init__(
        self,
        framework: str,
        model_name: str,
        dataset: ScaleNodeDataset,
        fanouts: Sequence[int] = (10, 10),
        batch_size: int = 1024,
        max_epochs: int = 5,
        config: Optional[ModelConfig] = None,
        device: Optional[Device] = None,
        compile: bool = False,
        prefetch: bool = False,
        max_batches: Optional[int] = None,
        eval_batch_size: Optional[int] = None,
        ensure_self_loops: bool = False,
        full_graph_norm: bool = False,
    ) -> None:
        if framework not in FRAMEWORKS:
            raise ValueError(f"unknown framework {framework!r}; options: {FRAMEWORKS}")
        self.framework = framework
        self.model_name = model_name
        self.dataset = dataset
        self.fanouts = tuple(int(f) for f in fanouts)
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.config = config or node_config(
            model_name,
            in_dim=dataset.num_features,
            n_classes=dataset.num_classes,
            n_layers=len(self.fanouts),
        )
        if self.config.n_layers != len(self.fanouts):
            raise ValueError(
                f"model depth {self.config.n_layers} needs one fanout per "
                f"layer, got {len(self.fanouts)}"
            )
        self.device = device or Device()
        self.compile = compile
        self.prefetch = prefetch
        self.max_batches = max_batches
        self.eval_batch_size = eval_batch_size or batch_size
        self.ensure_self_loops = ensure_self_loops
        self.full_graph_norm = full_graph_norm
        #: The :class:`~repro.compile.CompiledStep` of the latest
        #: :meth:`run` when ``compile=True`` (for its replay stats).
        self.compiled_step = None
        #: The trained network from the latest :meth:`run`.
        self.final_model = None

    # ------------------------------------------------------------------
    # loaders
    # ------------------------------------------------------------------
    def _loader(self, seeds, batch_size, shuffle: bool, rng, prefetch: bool):
        if self.framework == "pygx":
            from repro.pygx import NeighborLoader
            from repro.pygx import PrefetchDataLoader as Prefetch
        else:
            from repro.dglx import NeighborLoader
            from repro.dglx import PrefetchDataLoader as Prefetch
        loader = NeighborLoader(
            self.dataset.graph, seeds, self.fanouts, batch_size,
            shuffle=shuffle, rng=rng,
            ensure_self_loops=self.ensure_self_loops,
            full_graph_norm=self.full_graph_norm,
        )
        return Prefetch(loader) if prefetch else loader

    def _iterate(self, loader):
        """Yield ``(inputs, labels, n_seeds)`` uniformly for both packs."""
        if self.framework == "pygx":
            for batch in loader:
                yield batch, batch.y, batch.n_seeds
        else:
            yield from loader

    # ------------------------------------------------------------------
    def _evaluate(self, model, loader) -> float:
        """Seed-row accuracy over a loader, gradient-free."""
        model.eval()
        correct, total = 0.0, 0
        with no_grad():
            for inputs, labels, n_seeds in self._iterate(loader):
                logits = model(inputs)
                seed_rows = index_rows(logits, np.arange(n_seeds, dtype=np.int64))
                correct += accuracy(seed_rows, labels) * n_seeds
                total += n_seeds
        return correct / max(total, 1)

    # ------------------------------------------------------------------
    def run(self, seed: int = 0) -> RunResult:
        """One sampled training run; returns per-epoch records and test acc.

        Validation runs a sampled inference pass per epoch; the reported
        ``test_acc`` is taken at the best-validation epoch, like the
        full-batch trainer.  Deterministic for a fixed ``seed``.
        """
        ds = self.dataset
        with use_device(self.device):
            rng = np.random.default_rng(seed)
            model = _build(self.framework, self.config, rng)
            optimizer = Adam(model.parameters(), lr=self.config.lr)
            # The sampler gets its own RNG stream: sharing ``rng`` with the
            # model's dropout would make the numerics depend on *when*
            # batches are sampled, so prefetching (which pumps batches
            # ahead of the compute that consumes them) would change the
            # dropout masks.  Separate streams keep prefetch=True bitwise
            # identical to serial iteration.
            train_loader = self._loader(
                ds.train_idx, self.batch_size, shuffle=True,
                rng=np.random.default_rng(seed + 5_000),
                prefetch=self.prefetch,
            )
            clock = self.device.clock
            self.device.memory.reset_peak()

            def train_step(inputs, labels, seed_rows):
                with clock.phase("forward"):
                    logits = model(inputs)
                    loss = cross_entropy(index_rows(logits, seed_rows), labels)
                with clock.phase("backward"):
                    optimizer.zero_grad()
                    loss.backward()
                with clock.phase("update"):
                    optimizer.step()
                return loss

            if self.compile:
                from repro.compile import CompiledStep

                step = CompiledStep(train_step)
                self.compiled_step = step
            else:
                step = train_step

            records = []
            best_val, best_test = -1.0, 0.0
            start = clock.snapshot()
            for epoch in range(self.max_epochs):
                model.train()
                before = clock.snapshot()
                epoch_losses = []
                for i, (inputs, labels, n_seeds) in enumerate(
                    self._iterate(train_loader)
                ):
                    if self.max_batches is not None and i >= self.max_batches:
                        break
                    seed_rows = np.arange(n_seeds, dtype=np.int64)
                    loss = step(inputs, labels, seed_rows)
                    epoch_losses.append(loss.item())
                train_delta = before.delta(clock)

                before_eval = clock.snapshot()
                # Fresh per-epoch eval rng: evaluation sampling stays
                # deterministic and independent of how many training
                # batches ran.
                val_acc = self._evaluate(
                    model,
                    self._loader(ds.val_idx, self.eval_batch_size, shuffle=False,
                                 rng=seed + 7_000 + epoch, prefetch=False),
                )
                eval_delta = before_eval.delta(clock)

                if val_acc > best_val:
                    best_val = val_acc
                    best_test = self._evaluate(
                        model,
                        self._loader(ds.test_idx, self.eval_batch_size,
                                     shuffle=False, rng=seed + 9_000 + epoch,
                                     prefetch=False),
                    )
                records.append(
                    EpochRecord(
                        epoch=epoch,
                        train_time=train_delta.elapsed,
                        eval_time=eval_delta.elapsed,
                        phase_times=train_delta.phase_elapsed,
                        train_loss=float(np.mean(epoch_losses)) if epoch_losses else 0.0,
                        val_loss=0.0,
                        val_acc=val_acc,
                    )
                )
            self.final_model = model
            total = start.delta(clock).elapsed
            return RunResult(
                test_acc=best_test,
                epochs=records,
                peak_memory=self.device.memory.peak,
                gpu_utilization=clock.utilization(),
                total_time=total,
            )

    # ------------------------------------------------------------------
    def sampled_accuracy(self, model, seeds: np.ndarray, seed: int = 0) -> float:
        """Sampled-inference accuracy of ``model`` over arbitrary seeds."""
        with use_device(self.device):
            loader = self._loader(
                np.asarray(seeds, dtype=np.int64), self.eval_batch_size,
                shuffle=False, rng=seed, prefetch=False,
            )
            return self._evaluate(model, loader)
