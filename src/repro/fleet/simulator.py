"""Discrete-event replay of a multi-tenant trace over a replica fleet.

The fleet generalises :class:`~repro.serve.ServeSimulator` from one server
to N: every replica executes forwards on its own stream of the *shared*
simulated device (the per-replica-stream construction ``repro.dist`` uses
for DDP), so replica compute overlaps while host-side collation and
dispatch serialise on the shared frontend clock — the realistic regime
where a fleet's frontend is itself a bottleneck under burst.

One frontend event loop drives everything in simulated-time order:

1. retire in-flight batches whose stream completion events have passed
   (responses recorded per tenant, result cache filled, quotas released);
2. apply due chaos (a replica loss re-routes its backlog and retries its
   in-flight work, bounded, then fails *explicitly* — never silently);
3. bring warming / recovering replicas up;
4. admit due arrivals: tenant quota -> result cache -> routing policy ->
   the chosen replica's SLA-tiered queue (typed sheds at each gate);
5. tick the autoscaler (warm-start cost charged via the device cost
   model before a new replica becomes routable);
6. dispatch one dynamic batch per free replica;
7. fast-forward the clock to the next event (waiting on in-flight work
   counts as busy; true quiet periods as idle).

The per-tenant no-silent-loss invariant holds by construction: every
admitted-or-rejected request ends in exactly one of *response*, *shed*
or *explicit failure*, accounted both fleet-wide and per tenant.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List, Optional, Sequence, Set, Union

import numpy as np

from repro.device import Device, OutOfMemoryError, use_device
from repro.device.timeline import write_chrome_trace
from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig
from repro.fleet.cache import ResultCache
from repro.fleet.chaos import ChaosPlan, ChaosSchedule
from repro.fleet.metrics import FleetMetrics, FleetResult, ReplicaSummary
from repro.fleet.replica import DOWN, UP, WARMING, PendingBatch, Replica
from repro.fleet.request import FleetRequest, FleetResponse
from repro.fleet.routing import RoutingPolicy, make_policy, routable
from repro.fleet.tiers import TenantQuota
from repro.fleet.traffic import Arrival
from repro.graph import GraphSample
from repro.serve.batcher import DynamicBatcher
from repro.serve.request import Overloaded
from repro.serve.resilience import RetryPolicy

_NEVER = float("inf")


class _Liveness:
    """Deadline check shim with the ``AdmissionController`` surface.

    The fleet admits straight into per-replica tiered queues, so the only
    thing :meth:`DynamicBatcher.next_batch` needs at dispatch is the
    deadline predicate.
    """

    @staticmethod
    def still_live(request: FleetRequest, now: float) -> bool:
        return not request.expired(now)


class FleetSimulator:
    """N serving replicas behind a router, one shared simulated device."""

    def __init__(
        self,
        inference,
        n_replicas: int = 2,
        policy: Union[str, RoutingPolicy] = "p2c",
        batcher: Optional[DynamicBatcher] = None,
        queue_capacity: int = 64,
        cache: Optional[ResultCache] = None,
        autoscaler: Optional[AutoscalerConfig] = None,
        chaos: Optional[ChaosPlan] = None,
        device: Optional[Device] = None,
        retry_policy: Optional[RetryPolicy] = None,
        seed: int = 0,
        cache_lookup_seconds: float = 2e-6,
        route_seconds: float = 5e-6,
    ) -> None:
        if n_replicas <= 0:
            raise ValueError("n_replicas must be positive")
        self.inference = inference
        self.device = device or Device()
        self.policy = policy if isinstance(policy, RoutingPolicy) else make_policy(policy, seed)
        self.batcher = batcher or DynamicBatcher()
        self.queue_capacity = queue_capacity
        self.cache = cache
        self.autoscaler_config = autoscaler
        self.chaos = chaos
        self.retry_policy = retry_policy or RetryPolicy()
        self.cache_lookup_seconds = cache_lookup_seconds
        #: Frontend cost of routing one request (quota + policy + enqueue)
        #: — the only per-request work that stays on the shared clock.
        self.route_seconds = route_seconds
        self.replicas: List[Replica] = [
            Replica(i, inference, self.device, queue_capacity)
            for i in range(n_replicas)
        ]
        self._initial_replicas = n_replicas
        self._liveness = _Liveness()

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(
        self, samples: Sequence[GraphSample], arrivals: Sequence[Arrival]
    ) -> FleetResult:
        if not samples:
            raise ValueError("need at least one graph sample to serve")
        if not arrivals:
            raise ValueError("arrival trace is empty")
        times = [a.time for a in arrivals]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("arrival times must be non-decreasing")

        requests = [
            FleetRequest(
                request_id=i,
                sample=samples[a.sample_idx % len(samples)],
                arrival_time=float(a.time),
                deadline=a.tenant.deadline if a.tenant is not None else None,
                tenant=a.tenant,
                sample_idx=a.sample_idx,
            )
            for i, a in enumerate(arrivals)
        ]

        metrics = FleetMetrics()
        quota = TenantQuota()
        scaler = (
            Autoscaler(self.autoscaler_config)
            if self.autoscaler_config is not None
            else None
        )
        schedule: Optional[ChaosSchedule] = (
            self.chaos.start() if self.chaos is not None else None
        )
        max_dispatches = self.chaos.max_dispatches if self.chaos is not None else 3
        retired: Set[int] = set()
        peak = len([r for r in self.replicas if r.state != DOWN])

        fault_plan = self.chaos.fault_plan if self.chaos is not None else None
        injecting = (
            self.device.injecting(fault_plan)
            if fault_plan is not None
            else nullcontext()
        )
        with use_device(self.device), injecting:
            clock = self.device.clock
            start = clock.snapshot()
            t0 = clock.elapsed
            idle0 = clock.idle
            n = len(requests)
            i = 0  # next arrival not yet admitted
            while True:
                now = clock.elapsed - t0

                # 1. retire finished batches (stream events that passed).
                for replica in self.replicas:
                    pending = replica.inflight
                    if pending is not None and pending.done_at <= now:
                        self._retire(replica, pending, metrics, quota)

                # 2. due chaos losses.
                if schedule is not None:
                    while schedule.pop_due(now) is not None:
                        self._lose_replica(schedule, metrics, quota, now, max_dispatches)

                # 3. warming / recovering replicas whose ready time passed.
                for replica in self.replicas:
                    if replica.id in retired:
                        continue
                    if replica.state in (WARMING, DOWN) and replica.ready_at <= now:
                        if replica.state == DOWN and replica.ready_at == 0.0:
                            continue  # lost before ever given a recovery time
                        replica.come_up()

                # 4. admit due arrivals.
                while i < n and requests[i].arrival_time <= now:
                    self._admit(requests[i], metrics, quota, now)
                    i += 1
                metrics.sample_queue_depth(sum(len(r.queue) for r in self.replicas))

                # 5. autoscaler tick.
                if scaler is not None and now >= scaler.next_eval:
                    decision = scaler.decide(
                        now, self.replicas, metrics.window_p99(scaler.config.window)
                    )
                    if decision > 0:
                        self._scale_up(scaler, retired, now)
                    elif decision < 0:
                        victim = scaler.pick_scale_down(self.replicas)
                        if victim is not None:
                            victim.state = DOWN
                            victim.ready_at = _NEVER
                            retired.add(victim.id)

                peak = max(peak, self._population())

                # 6. dispatch per free replica until it has work in flight
                # or nothing queued (an open breaker sheds straight through,
                # so its queue never strands the event loop).
                for replica in self.replicas:
                    while replica.free and len(replica.queue) > 0:
                        self._dispatch(replica, metrics, quota, t0)

                # 7. advance to the next event (or stop).
                done = (
                    i >= n
                    and all(len(r.queue) == 0 for r in self.replicas)
                    and all(r.inflight is None for r in self.replicas)
                )
                if done:
                    break
                next_time = self._next_event_time(i, n, requests, schedule, scaler, retired)
                if next_time == _NEVER:
                    # No event will ever free capacity for what is queued
                    # (every replica gone, nothing warming, no chaos
                    # recovery, no autoscaler): fail the backlog explicitly.
                    for replica in self.replicas:
                        stranded = replica.queue.drain()
                        if stranded:
                            metrics.record_failure("no_capacity", stranded)
                            for request in stranded:
                                quota.release(request.tenant)
                    break
                gap = next_time - now
                if gap > 0:
                    if any(r.inflight is not None for r in self.replicas):
                        clock.advance_wait(gap)
                    else:
                        with clock.phase("idle"):
                            clock.advance_idle(gap)

            delta = start.delta(clock)
            idle = clock.idle - idle0
            elapsed = delta.elapsed
            return metrics.summary(
                policy=self.policy.name,
                initial_replicas=self._initial_replicas,
                peak_replicas=peak,
                final_replicas=self._population(),
                n_requests=n,
                elapsed=elapsed,
                gpu_utilization=delta.gpu_busy / elapsed if elapsed > 0 else 0.0,
                busy_fraction=(elapsed - idle) / elapsed if elapsed > 0 else 0.0,
                phase_times=delta.phase_elapsed,
                replicas=[
                    ReplicaSummary(
                        replica_id=r.id,
                        batches_served=r.batches_served,
                        requests_served=r.requests_served,
                        losses=r.losses,
                        busy=r.stream.busy,
                        circuit_opens=r.breaker.opens,
                    )
                    for r in self.replicas
                ],
                cache_hits=self.cache.hits if self.cache is not None else 0,
                cache_misses=self.cache.misses if self.cache is not None else 0,
                replica_losses=sum(r.losses for r in self.replicas),
                scale_ups=scaler.scale_ups if scaler is not None else 0,
                scale_downs=scaler.scale_downs if scaler is not None else 0,
            )

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _population(self) -> int:
        return len([r for r in self.replicas if r.state != DOWN])

    def _admit(
        self,
        request: FleetRequest,
        metrics: FleetMetrics,
        quota: TenantQuota,
        now: float,
    ) -> None:
        metrics.record_arrival(request)
        self.device.clock.advance_host(self.route_seconds)
        if self.cache is not None:
            self.device.clock.advance_host(self.cache_lookup_seconds)
            hit = self.cache.get(request.sample_idx)
            if hit is not None:
                metrics.record_responses(
                    [
                        FleetResponse(
                            request_id=request.request_id,
                            prediction=hit,
                            arrival_time=request.arrival_time,
                            dispatch_time=now,
                            completion_time=now,
                            batch_size=1,
                            tenant=request.tenant_name,
                            replica=-1,
                            cached=True,
                        )
                    ]
                )
                return
        if not quota.try_acquire(request.tenant):
            metrics.record_shed("quota", [request])
            return
        candidates = routable(self.replicas, now)
        if not candidates:
            quota.release(request.tenant)
            metrics.record_shed("no_capacity", [request])
            return
        replica = self.policy.select(request, candidates)
        try:
            replica.queue.push(request)
        except Overloaded:
            quota.release(request.tenant)
            metrics.record_shed("queue_full", [request])

    def _dispatch(
        self,
        replica: Replica,
        metrics: FleetMetrics,
        quota: TenantQuota,
        t0: float,
    ) -> None:
        clock = self.device.clock
        now = clock.elapsed - t0
        batch, expired = self.batcher.next_batch(replica.queue, self._liveness, now)
        if expired:
            metrics.record_shed("deadline", expired)
            for request in expired:
                quota.release(request.tenant)
        if not batch:
            return
        if not replica.breaker.allow(now):
            metrics.record_shed("circuit_open", batch)
            for request in batch:
                quota.release(request.tenant)
            return
        pending = PendingBatch(dispatch_time=now)
        for request in batch:
            request.dispatches += 1
        self._execute(replica, batch, pending, metrics, quota, t0)
        if pending.completions:
            replica.inflight = pending

    def _execute(
        self,
        replica: Replica,
        batch: List[FleetRequest],
        pending: PendingBatch,
        metrics: FleetMetrics,
        quota: TenantQuota,
        t0: float,
    ) -> None:
        """Run one (sub-)batch to enqueued kernels or an explicit failure.

        Mirrors the single-server dispatch path: transient kernel faults
        retry with exponential backoff, OOM batches split in half and both
        halves are served, terminal failures count against the replica's
        circuit breaker.  Successful forwards land on the replica's stream;
        their completion timestamps join ``pending``.
        """
        from repro.faults import KernelFault

        clock = self.device.clock
        attempt = 0
        while True:
            try:
                # The replica is its own machine: collation and kernel
                # launches run on its host timeline (offload), kernels on
                # its compute stream — both overlap across replicas; only
                # this dispatch call serialises on the frontend clock.
                with self.device.offload(replica.host_stream):
                    collated = self.inference.collate([r.sample for r in batch])
                    with self.device.on(replica.stream):
                        logits = self.inference.forward(collated)
                done = replica.stream.record()
            except KernelFault:
                if attempt < self.retry_policy.max_retries:
                    metrics.record_retry()
                    # Backoff burns the replica's host, not the frontend's.
                    replica.host_stream.enqueue(self.retry_policy.delay(attempt))
                    attempt += 1
                    continue
                metrics.record_failure("kernel_fault", batch)
                for request in batch:
                    quota.release(request.tenant)
                replica.breaker.record_failure(clock.elapsed - t0)
                return
            except OutOfMemoryError:
                if len(batch) > 1:
                    metrics.record_split()
                    first, second = DynamicBatcher.split(batch)
                    self._execute(replica, first, pending, metrics, quota, t0)
                    self._execute(replica, second, pending, metrics, quota, t0)
                    return
                metrics.record_failure("oom", batch)
                quota.release(batch[0].tenant)
                replica.breaker.record_failure(clock.elapsed - t0)
                return
            completion = done.timestamp - t0
            predictions = np.argmax(logits.data, axis=1)
            pending.completions.extend(
                (request, int(p), completion)
                for request, p in zip(batch, predictions)
            )
            replica.breaker.record_success()
            return

    def _retire(
        self,
        replica: Replica,
        pending: PendingBatch,
        metrics: FleetMetrics,
        quota: TenantQuota,
    ) -> None:
        responses = [
            FleetResponse(
                request_id=request.request_id,
                prediction=prediction,
                arrival_time=request.arrival_time,
                dispatch_time=pending.dispatch_time,
                completion_time=completion,
                batch_size=len(pending.completions),
                tenant=request.tenant_name,
                replica=replica.id,
            )
            for request, prediction, completion in pending.completions
        ]
        metrics.record_responses(responses)
        for request, prediction, _ in pending.completions:
            if self.cache is not None:
                self.cache.put(request.sample_idx, prediction)
            quota.release(request.tenant)
        replica.batches_served += 1
        replica.requests_served += len(pending.completions)
        replica.inflight = None

    def _lose_replica(
        self,
        schedule: ChaosSchedule,
        metrics: FleetMetrics,
        quota: TenantQuota,
        now: float,
        max_dispatches: int,
    ) -> None:
        up = [r for r in self.replicas if r.is_up]
        victim = schedule.pick_victim(up)
        if victim is None:
            return
        pending = victim.inflight
        victim.inflight = None
        backlog = victim.go_down(self.device.clock.elapsed)
        victim.ready_at = now + schedule.plan.downtime

        if pending is not None:
            # Sub-batches that finished on the device before the crash were
            # delivered; the rest died with the replica and retry elsewhere.
            delivered = [c for c in pending.completions if c[2] <= now]
            lost = [c for c in pending.completions if c[2] > now]
            if delivered:
                survivor = PendingBatch(pending.dispatch_time, delivered)
                self._retire(victim, survivor, metrics, quota)
                victim.inflight = None
            for request, _, _ in lost:
                if request.dispatches >= max_dispatches:
                    metrics.record_failure("replica_lost", [request])
                    quota.release(request.tenant)
                else:
                    self._reroute(request, metrics, quota, now)
        for request in backlog:
            self._reroute(request, metrics, quota, now)

    def _reroute(
        self,
        request: FleetRequest,
        metrics: FleetMetrics,
        quota: TenantQuota,
        now: float,
    ) -> None:
        """Re-home an already-admitted request after its replica died."""
        candidates = routable(self.replicas, now)
        if not candidates:
            metrics.record_failure("replica_lost", [request])
            quota.release(request.tenant)
            return
        replica = self.policy.select(request, candidates)
        try:
            replica.queue.push(request)
        except Overloaded:
            metrics.record_failure("replica_lost", [request])
            quota.release(request.tenant)
            return
        metrics.record_reroute()

    def _scale_up(self, scaler: Autoscaler, retired: Set[int], now: float) -> None:
        """Add capacity: revive a retired replica or build a fresh one."""
        revivable = sorted(retired)
        if revivable:
            replica = self.replicas[revivable[0]]
            retired.discard(replica.id)
        else:
            replica = Replica(
                len(self.replicas),
                self.inference,
                self.device,
                self.queue_capacity,
                state=DOWN,
            )
            self.replicas.append(replica)
        replica.begin_warmup(now, scaler.config.boot_overhead)

    # ------------------------------------------------------------------
    def _next_event_time(
        self,
        i: int,
        n: int,
        requests: List[FleetRequest],
        schedule: Optional[ChaosSchedule],
        scaler: Optional[Autoscaler],
        retired: Set[int],
    ) -> float:
        candidates: List[float] = []
        if i < n:
            candidates.append(requests[i].arrival_time)
        for replica in self.replicas:
            if replica.inflight is not None:
                candidates.append(replica.inflight.done_at)
            if replica.id in retired:
                continue
            if replica.state == WARMING:
                candidates.append(replica.ready_at)
            if replica.state == DOWN and replica.ready_at not in (0.0, _NEVER):
                candidates.append(replica.ready_at)
        if schedule is not None and schedule.next_loss is not None:
            candidates.append(schedule.next_loss)
        if scaler is not None and candidates:
            # The control loop only matters while other events remain —
            # without this guard the fleet would tick forever after the
            # trace drains.
            candidates.append(scaler.next_eval)
        return min(candidates) if candidates else _NEVER

    # ------------------------------------------------------------------
    def write_trace(self, path) -> None:
        """Chrome-trace of the replay: one track per replica stream."""
        write_chrome_trace(
            self.device.profiler.records, path, stream_names=self.device.stream_names()
        )


__all__ = ["FleetSimulator"]
