"""Multi-tenant traffic generators for fleet serving.

Production GNN inference traffic is not a single stationary Poisson
process: load swings over the day (diurnal cycles), individual customers
spike (flash crowds), and request *content* is heavily skewed toward hot
items.  These generators model all three, deterministically from seeded
RNG streams, as merged per-tenant arrival traces the fleet simulator
replays open-loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.fleet.request import Tenant
from repro.graph import as_generator
from repro.graph.graph import RngLike


@dataclass(frozen=True)
class Arrival:
    """One request arrival: when, for whom, and which sample it asks for."""

    time: float
    tenant: Tenant
    sample_idx: int


def zipf_sample_indices(
    n: int, n_samples: int, skew: float = 1.1, rng: RngLike = None
) -> np.ndarray:
    """Zipf-skewed sample indices: a hot head, a long cold tail.

    ``skew`` is the Zipf exponent (larger = hotter head).  A skewed access
    pattern is what makes a bounded LRU result cache earn its keep; a
    uniform cycle over the corpus would never hit.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if skew <= 0:
        raise ValueError("skew must be positive")
    weights = 1.0 / np.power(np.arange(1, n_samples + 1, dtype=np.float64), skew)
    weights /= weights.sum()
    return as_generator(rng).choice(n_samples, size=n, p=weights)


def diurnal_trace(
    tenant: Tenant,
    n_requests: int,
    base_rate: float,
    period: float = 1.0,
    amplitude: float = 0.6,
    n_samples: int = 1,
    skew: float = 1.1,
    rng: RngLike = None,
) -> List[Arrival]:
    """Sinusoidally rate-modulated Poisson arrivals (a compressed day).

    The instantaneous rate is ``base_rate * (1 + amplitude * sin(2*pi*t /
    period))``: traffic breathes between ``(1-amplitude)`` and
    ``(1+amplitude)`` times the base rate over each ``period`` of
    simulated seconds.  Inter-arrival gaps are drawn at the rate in force
    at the previous arrival — the standard thinning-free approximation,
    exact in the limit of small gaps.
    """
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    generator = as_generator(rng)
    indices = zipf_sample_indices(n_requests, n_samples, skew, generator)
    arrivals: List[Arrival] = []
    t = 0.0
    for i in range(n_requests):
        rate = base_rate * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period))
        t += float(generator.exponential(1.0 / rate))
        arrivals.append(Arrival(t, tenant, int(indices[i])))
    return arrivals


def flash_crowd_trace(
    tenant: Tenant,
    n_requests: int,
    base_rate: float,
    spike_at: float,
    spike_rate: float,
    spike_duration: float,
    n_samples: int = 1,
    skew: float = 1.1,
    rng: RngLike = None,
) -> List[Arrival]:
    """Steady Poisson traffic with one sudden flash crowd.

    Arrivals come at ``base_rate`` except inside ``[spike_at, spike_at +
    spike_duration)``, where the rate jumps to ``spike_rate`` — the
    viral-moment burst an autoscaler must absorb with warm-started
    replicas rather than pre-provisioned peak capacity.
    """
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if base_rate <= 0 or spike_rate <= 0:
        raise ValueError("rates must be positive")
    if spike_at < 0 or spike_duration <= 0:
        raise ValueError("spike window must be non-negative/positive")
    generator = as_generator(rng)
    indices = zipf_sample_indices(n_requests, n_samples, skew, generator)
    arrivals: List[Arrival] = []
    t = 0.0
    for i in range(n_requests):
        in_spike = spike_at <= t < spike_at + spike_duration
        rate = spike_rate if in_spike else base_rate
        t += float(generator.exponential(1.0 / rate))
        arrivals.append(Arrival(t, tenant, int(indices[i])))
    return arrivals


def merge_traces(*traces: Sequence[Arrival]) -> List[Arrival]:
    """Merge per-tenant traces into one time-ordered fleet trace.

    Ties break by tenant name then sample index, so the merged order is a
    pure function of the inputs — no iteration-order nondeterminism.
    """
    merged = [a for trace in traces for a in trace]
    merged.sort(key=lambda a: (a.time, a.tenant.name, a.sample_idx))
    return merged


def bursty_multitenant_trace(
    n_samples: int,
    scale: float = 1.0,
    n_requests: int = 600,
    seed: int = 0,
    deadline: Optional[float] = 0.25,
) -> List[Arrival]:
    """The benchmark's canonical three-tenant bursty trace.

    Three tenants with distinct SLA tiers and traffic shapes, merged:

    * ``acme`` (gold, tight quota-free SLA) — diurnal breathing load;
    * ``initech`` (silver) — steady base load with one flash crowd;
    * ``hooli`` (bronze, quota-capped) — a second, offset flash crowd big
      enough to need admission control.

    ``scale`` multiplies every rate, so one knob sweeps the fleet from
    comfortable to saturated; everything is seeded and deterministic.
    """
    gold = Tenant("acme", tier="gold", deadline=deadline)
    silver = Tenant("initech", tier="silver", deadline=deadline)
    bronze = Tenant("hooli", tier="bronze", deadline=deadline, quota=48)
    seeds = np.random.SeedSequence(seed).spawn(3)
    n_gold = int(n_requests * 0.3)
    n_silver = int(n_requests * 0.3)
    n_bronze = n_requests - n_gold - n_silver
    return merge_traces(
        diurnal_trace(
            gold, n_gold, base_rate=1200.0 * scale, period=0.4,
            amplitude=0.5, n_samples=n_samples, rng=np.random.default_rng(seeds[0]),
        ),
        flash_crowd_trace(
            silver, n_silver, base_rate=900.0 * scale, spike_at=0.08,
            spike_rate=6000.0 * scale, spike_duration=0.05,
            n_samples=n_samples, rng=np.random.default_rng(seeds[1]),
        ),
        flash_crowd_trace(
            bronze, n_bronze, base_rate=700.0 * scale, spike_at=0.18,
            spike_rate=9000.0 * scale, spike_duration=0.04,
            n_samples=n_samples, rng=np.random.default_rng(seeds[2]),
        ),
    )
