"""Bounded LRU result cache with hit-rate accounting.

GNN serving traffic is content-skewed: a small head of hot graphs absorbs
most requests (the Zipf pattern the fleet's traffic generators emit).  The
router checks this cache before queueing anything — a hit answers at the
door for a host-lookup cost instead of a replica forward, which is both
the latency win and the capacity win of production embedding/result
caches.  Entries are filled from completed batches, keyed by sample index.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class ResultCache:
    """LRU map of ``sample_idx -> prediction`` with hit/miss counters."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def get(self, key: int) -> Optional[int]:
        """Look up a prediction; counts the hit/miss and refreshes LRU order."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: int, prediction: int) -> None:
        """Insert/refresh an entry, evicting the LRU one beyond capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = prediction
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache({len(self)}/{self.capacity}, hits={self.hits}, "
            f"misses={self.misses}, hit_rate={self.hit_rate:.2f})"
        )


__all__ = ["ResultCache"]
