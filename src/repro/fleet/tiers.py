"""SLA-tiered priority queues and per-tenant admission quotas.

Each replica owns a :class:`TieredQueue`: one bounded FIFO lane per SLA
tier, drained highest-priority-first.  The queue exposes the same
``peek``/``pop``/``__len__`` surface as :class:`repro.serve.RequestQueue`,
so the existing :class:`~repro.serve.DynamicBatcher` coalesces fleet
batches unchanged (a batch may mix tiers — priority decides *order*, the
node/edge budget decides *size*).

:class:`TenantQuota` is the fleet-wide admission counter: each tenant may
have at most ``quota`` requests outstanding (queued anywhere in the
fleet); beyond it, admission sheds with reason ``quota`` — per-customer
backpressure, so one tenant's burst cannot monopolise every queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.fleet.request import SLA_TIERS, FleetRequest, Tenant
from repro.serve.request import Overloaded


class TieredQueue:
    """Bounded priority queue: one FIFO lane per SLA tier."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._lanes: List[Deque[FleetRequest]] = [
            deque() for _ in range(len(SLA_TIERS))
        ]

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes)

    def __iter__(self) -> Iterator[FleetRequest]:
        for lane in self._lanes:
            yield from lane

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    def push(self, request: FleetRequest) -> None:
        if self.full:
            raise Overloaded(
                f"tiered queue full at depth {len(self)}", queue_depth=len(self)
            )
        self._lanes[request.priority].append(request)

    def peek(self) -> Optional[FleetRequest]:
        for lane in self._lanes:
            if lane:
                return lane[0]
        return None

    def pop(self) -> FleetRequest:
        for lane in self._lanes:
            if lane:
                return lane.popleft()
        raise IndexError("pop from an empty tiered queue")

    def drain(self) -> List[FleetRequest]:
        """Remove and return everything queued, priority-then-FIFO order.

        Used when a replica is lost or scaled away: its backlog gets
        re-routed, never dropped.
        """
        out: List[FleetRequest] = []
        for lane in self._lanes:
            out.extend(lane)
            lane.clear()
        return out

    def depth_by_tier(self) -> Dict[str, int]:
        names = sorted(SLA_TIERS, key=SLA_TIERS.get)
        return {name: len(self._lanes[SLA_TIERS[name]]) for name in names}


class TenantQuota:
    """Fleet-wide outstanding-request counter per tenant."""

    def __init__(self) -> None:
        self._outstanding: Dict[str, int] = {}

    def outstanding(self, tenant: Tenant) -> int:
        return self._outstanding.get(tenant.name, 0)

    def try_acquire(self, tenant: Optional[Tenant]) -> bool:
        """Reserve one slot for ``tenant``; False when its quota is spent."""
        if tenant is None:
            return True
        held = self._outstanding.get(tenant.name, 0)
        if tenant.quota is not None and held >= tenant.quota:
            return False
        self._outstanding[tenant.name] = held + 1
        return True

    def release(self, tenant: Optional[Tenant]) -> None:
        """Free one slot (the request left every queue, whatever its fate)."""
        if tenant is None:
            return
        held = self._outstanding.get(tenant.name, 0)
        if held <= 0:
            raise RuntimeError(f"quota underflow for tenant {tenant.name!r}")
        self._outstanding[tenant.name] = held - 1


__all__ = ["TieredQueue", "TenantQuota"]
