"""One serving replica of the fleet.

A replica is a :class:`~repro.serve.InferenceModel` behind its own local
:class:`~repro.fleet.tiers.TieredQueue`, executing forwards on a dedicated
device stream (``replica<i>``) of the *shared* simulated device — the
same per-replica-stream construction ``repro.dist`` uses for DDP, applied
to serving.  Kernel durations land on the replica's stream timeline
(parallel across replicas), host dispatch/collation cost stays on the
shared frontend clock, and completions are read off stream events.

Replicas are also the unit of elasticity and chaos: a scaled-up replica
*warms* first (checkpoint weights crossing PCIe, charged via the device
cost model), and a lost replica goes *down*, its backlog re-routed and its
in-flight batch retried or failed — never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.device import Device, KernelRecord
from repro.fleet.request import FleetRequest
from repro.fleet.tiers import TieredQueue
from repro.serve.registry import InferenceModel
from repro.serve.resilience import CircuitBreaker

UP = "up"
WARMING = "warming"
DOWN = "down"


@dataclass
class PendingBatch:
    """One dispatched batch awaiting its stream completion event.

    ``completions`` pairs each request with its prediction and per-request
    completion timestamp (fleet-relative); OOM splitting can give the two
    halves different completion times within one dispatch.
    """

    dispatch_time: float
    #: ``(request, prediction, completion_time)`` per request.
    completions: List[Tuple[FleetRequest, int, float]] = field(default_factory=list)

    @property
    def done_at(self) -> float:
        """When the whole batch has retired (the last sub-completion)."""
        return max((c[2] for c in self.completions), default=self.dispatch_time)

    @property
    def requests(self) -> List[FleetRequest]:
        return [c[0] for c in self.completions]


class Replica:
    """A single fleet member: model + local queue + stream + breaker."""

    def __init__(
        self,
        replica_id: int,
        inference: InferenceModel,
        device: Device,
        queue_capacity: int = 64,
        breaker: Optional[CircuitBreaker] = None,
        state: str = UP,
        ready_at: float = 0.0,
    ) -> None:
        self.id = replica_id
        self.inference = inference
        self.device = device
        self.stream = device.stream(f"replica{replica_id}")
        #: The replica's own host timeline: each fleet member is its own
        #: machine, so its collation + launch work runs here (via
        #: :meth:`Device.offload`) and overlaps with every other replica —
        #: only routing/admission serialise on the shared frontend clock.
        self.host_stream = device.stream(f"replica{replica_id}.host")
        self.queue = TieredQueue(queue_capacity)
        self.breaker = breaker or CircuitBreaker()
        self.state = state
        #: Fleet-relative time a warming replica comes up.
        self.ready_at = ready_at
        self.inflight: Optional[PendingBatch] = None
        #: Batches this replica served to completion.
        self.batches_served = 0
        #: Requests this replica answered.
        self.requests_served = 0
        #: Times this replica was killed by chaos.
        self.losses = 0

    # ------------------------------------------------------------------
    @property
    def is_up(self) -> bool:
        return self.state == UP

    @property
    def backlog(self) -> int:
        """Routing load signal: queued requests plus the in-flight batch."""
        inflight = len(self.inflight.completions) if self.inflight is not None else 0
        return len(self.queue) + inflight

    @property
    def free(self) -> bool:
        """Whether a new batch may be dispatched right now."""
        return self.is_up and self.inflight is None

    # ------------------------------------------------------------------
    def warm_start_seconds(self, boot_overhead: float = 2e-3) -> float:
        """Cost of bringing this replica up, via the device cost model.

        A warm start ships the model's weights across PCIe (one fp32 word
        per parameter, timed by :meth:`GPUSpec.transfer_time`) plus a
        fixed host-side boot overhead (process spawn, allocator warmup).
        """
        weight_bytes = 4.0 * self.inference.model.num_parameters()
        return self.device.spec.transfer_time(weight_bytes) + boot_overhead

    def begin_warmup(self, now: float, boot_overhead: float = 2e-3) -> float:
        """Mark the replica warming; returns its ready time (fleet-relative).

        The weight transfer is recorded on the replica's stream as a
        ``replica_warmup`` profiler record, so scale-ups are visible on
        the replica's Chrome-trace track like any other work.
        """
        warm = self.warm_start_seconds(boot_overhead)
        self.state = WARMING
        self.ready_at = now + warm
        weight_bytes = 4.0 * self.inference.model.num_parameters()
        self.stream.enqueue(warm)
        self.device.profiler.record(
            KernelRecord(
                name="replica_warmup",
                scope=("fleet", f"replica{self.id}"),
                duration=warm,
                flops=0.0,
                bytes_moved=weight_bytes,
                timestamp=self.stream.ready,
                memory=self.device.memory.current,
                stream=self.stream.id,
                phase="warmup",
            )
        )
        return self.ready_at

    def come_up(self) -> None:
        self.state = UP
        self.ready_at = 0.0

    def go_down(self, now_abs: float) -> List[FleetRequest]:
        """Kill the replica at absolute clock time ``now_abs``.

        Returns the drained backlog for the caller to re-route.  Any
        enqueued-but-unfinished stream work stops where the crash caught
        it (``stream.ready`` is pulled back), so a recovered replica does
        not inherit phantom busy time from work that never completed.
        """
        self.state = DOWN
        self.losses += 1
        self.stream.ready = min(self.stream.ready, now_abs)
        self.host_stream.ready = min(self.host_stream.ready, now_abs)
        return self.queue.drain()


__all__ = ["Replica", "PendingBatch", "UP", "WARMING", "DOWN"]
