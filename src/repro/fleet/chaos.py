"""Fleet-level chaos: seeded replica loss on top of device fault injection.

``repro.faults`` injects *device*-level trouble (OOMs, kernel faults,
stalls).  A fleet adds a new failure domain: whole replicas vanish — the
machine dies, the pod is pre-empted.  A :class:`ChaosPlan` schedules those
losses deterministically: explicit loss times, with the victim drawn from
a seeded RNG stream over the replicas that are up at that instant, each
loss followed by a fixed-downtime recovery.

The composition contract mirrors the serving layer's: a lost replica's
backlog is re-routed, its in-flight batch is retried on surviving
replicas (bounded attempts, then an explicit ``replica_lost`` failure),
and the per-tenant no-silent-loss invariant holds through any schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic schedule of replica losses (and device faults).

    ``loss_times`` are fleet-relative seconds; at each, one up replica
    (chosen by the plan's seeded RNG) goes down for ``downtime`` seconds.
    ``fault_plan`` optionally carries a :class:`repro.faults.FaultPlan`
    installed on the shared device for the whole replay, so kernel faults
    and injected OOMs fire *inside* replica forwards while replicas are
    being killed around them.
    """

    seed: int = 0
    loss_times: Tuple[float, ...] = ()
    downtime: float = 0.05
    fault_plan: Optional[object] = None
    #: Routing attempts per request before an explicit ``replica_lost``
    #: failure (first dispatch + re-routes after crashes).
    max_dispatches: int = 3

    def __post_init__(self) -> None:
        if self.downtime <= 0:
            raise ValueError("downtime must be positive")
        if any(t < 0 for t in self.loss_times):
            raise ValueError("loss times must be non-negative")
        if list(self.loss_times) != sorted(self.loss_times):
            raise ValueError("loss times must be sorted")
        if self.max_dispatches <= 0:
            raise ValueError("max_dispatches must be positive")

    def start(self) -> "ChaosSchedule":
        return ChaosSchedule(self)


@dataclass
class ChaosSchedule:
    """Per-run cursor over a plan's loss times with its own victim RNG."""

    plan: ChaosPlan
    _next: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(
            np.random.SeedSequence(self.plan.seed).spawn(1)[0]
        )

    @property
    def next_loss(self) -> Optional[float]:
        times = self.plan.loss_times
        return times[self._next] if self._next < len(times) else None

    def pop_due(self, now: float) -> Optional[float]:
        """Return (and consume) the next loss time if it is due at ``now``."""
        due = self.next_loss
        if due is not None and due <= now:
            self._next += 1
            return due
        return None

    def pick_victim(self, up_replicas: Sequence) -> Optional[object]:
        """Seeded uniform choice among the currently-up replicas."""
        if not up_replicas:
            return None
        return up_replicas[int(self._rng.integers(0, len(up_replicas)))]


__all__ = ["ChaosPlan", "ChaosSchedule"]
