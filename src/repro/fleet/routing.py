"""Pluggable request routing across fleet replicas.

The router assigns each admitted request to one replica's local queue at
arrival time (immediate dispatch, per-replica queues) — the architecture
where routing policy actually matters.  With a single shared queue every
work-conserving policy is equivalent; with local queues, load-blind
round-robin lets queue-length imbalance build up behind slow batches
(service time varies with graph shape), while sampling just *two* queues
and picking the shorter collapses that imbalance almost as well as
scanning all of them — the classic power-of-two-choices result.

Every policy is deterministic: round-robin and least-loaded by
construction, power-of-two-choices from a dedicated seeded RNG stream.
Each decision is appended to :attr:`RoutingPolicy.decisions` so tests can
assert two seeded runs route identically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

POLICY_NAMES = ("round_robin", "least_loaded", "p2c")


class RoutingPolicy:
    """Base class: pick one replica from the routable set."""

    name = "base"

    def __init__(self) -> None:
        #: ``(request_id, replica_id)`` per routing decision, in order.
        self.decisions: List[Tuple[int, int]] = []

    def select(self, request, replicas: Sequence) -> object:
        """Route ``request`` to one of ``replicas`` (non-empty, routable)."""
        if not replicas:
            raise ValueError("cannot route with no routable replicas")
        choice = self._pick(request, replicas)
        self.decisions.append((request.request_id, choice.id))
        return choice

    def _pick(self, request, replicas: Sequence):
        raise NotImplementedError

    @staticmethod
    def _load(replica) -> Tuple[int, int]:
        """Comparable load: backlog first, replica id as the tie-break."""
        return (replica.backlog, replica.id)


class RoundRobin(RoutingPolicy):
    """Load-blind rotation over the routable replicas."""

    name = "round_robin"

    def __init__(self) -> None:
        super().__init__()
        self._counter = 0

    def _pick(self, request, replicas: Sequence):
        choice = replicas[self._counter % len(replicas)]
        self._counter += 1
        return choice


class LeastLoaded(RoutingPolicy):
    """Scan every routable replica, pick the smallest backlog."""

    name = "least_loaded"

    def _pick(self, request, replicas: Sequence):
        return min(replicas, key=self._load)


class PowerOfTwoChoices(RoutingPolicy):
    """Sample two distinct replicas (seeded), keep the less loaded.

    With one routable replica the sample degenerates to it.  The RNG is a
    dedicated stream spawned from ``seed``, so routing decisions are a
    pure function of (seed, request sequence, backlog history) — two runs
    of the same trace route byte-for-byte identically.
    """

    name = "p2c"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self._rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])

    def _pick(self, request, replicas: Sequence):
        if len(replicas) == 1:
            return replicas[0]
        first, second = self._rng.choice(len(replicas), size=2, replace=False)
        return min(replicas[int(first)], replicas[int(second)], key=self._load)


def make_policy(name: str, seed: int = 0) -> RoutingPolicy:
    """Build a routing policy by name (``seed`` only feeds ``p2c``)."""
    if name == "round_robin":
        return RoundRobin()
    if name == "least_loaded":
        return LeastLoaded()
    if name == "p2c":
        return PowerOfTwoChoices(seed)
    raise ValueError(f"unknown routing policy {name!r}; options: {POLICY_NAMES}")


def routable(replicas: Sequence, now: float) -> List:
    """Replicas a router may target at ``now``: up, breaker not open.

    The breaker check is non-mutating (state transitions stay at dispatch,
    where :meth:`CircuitBreaker.allow` runs): an open breaker inside its
    cooldown makes the replica invisible to new traffic, while one past
    cooldown is routable again so the half-open probe can happen.
    """
    out = []
    for replica in replicas:
        if not replica.is_up:
            continue
        breaker = replica.breaker
        if breaker.state == breaker.OPEN and now - breaker.opened_at < breaker.cooldown:
            continue
        out.append(replica)
    return out


__all__ = [
    "POLICY_NAMES",
    "RoutingPolicy",
    "RoundRobin",
    "LeastLoaded",
    "PowerOfTwoChoices",
    "make_policy",
    "routable",
]
