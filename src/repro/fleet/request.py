"""Tenants, SLA tiers, and the fleet-level request/response types.

The fleet serves *many* customers over shared replicas.  Each request
belongs to a :class:`Tenant` with an SLA tier (dispatch priority + latency
deadline) and an admission quota — the per-customer backpressure that stops
one tenant's flash crowd from starving everyone else's gold traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.serve.request import InferenceRequest, InferenceResponse

#: SLA tier name -> dispatch priority (lower dispatches first).
SLA_TIERS = {"gold": 0, "silver": 1, "bronze": 2}


@dataclass(frozen=True)
class Tenant:
    """One customer of the fleet: identity, SLA tier, admission quota.

    ``deadline`` is the tier's latency SLA in simulated seconds (requests
    past it are shed at dispatch rather than answered late); ``quota``
    bounds the tenant's *outstanding* requests across the whole fleet —
    admission sheds with reason ``quota`` beyond it.
    """

    name: str
    tier: str = "bronze"
    deadline: Optional[float] = None
    quota: Optional[int] = None

    def __post_init__(self) -> None:
        if self.tier not in SLA_TIERS:
            raise ValueError(f"unknown SLA tier {self.tier!r}; options: {sorted(SLA_TIERS)}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive when set")
        if self.quota is not None and self.quota <= 0:
            raise ValueError("quota must be positive when set")

    @property
    def priority(self) -> int:
        """Dispatch priority of this tenant's tier (lower is sooner)."""
        return SLA_TIERS[self.tier]


@dataclass
class FleetRequest(InferenceRequest):
    """An :class:`InferenceRequest` stamped with its tenant and sample key.

    ``sample_idx`` identifies the underlying graph in the served corpus —
    the cache key for the fleet's result cache.  ``dispatches`` counts
    routing attempts (a request re-routed off a lost replica retries with
    a bounded budget, then fails explicitly).
    """

    tenant: Optional[Tenant] = None
    sample_idx: int = 0
    dispatches: int = 0

    @property
    def tenant_name(self) -> str:
        return self.tenant.name if self.tenant is not None else ""

    @property
    def priority(self) -> int:
        return self.tenant.priority if self.tenant is not None else SLA_TIERS["bronze"]


@dataclass
class FleetResponse(InferenceResponse):
    """A served fleet request: prediction plus where/how it was served."""

    tenant: str = ""
    replica: int = -1
    #: Answered straight from the result cache, no replica involved.
    cached: bool = False
