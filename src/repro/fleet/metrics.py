"""Fleet-wide observability: per-tenant accounting over shared replicas.

Reuses :class:`~repro.serve.ServerMetrics` as the accounting primitive —
one instance for the fleet aggregate, one per tenant — so the no-silent-
loss bookkeeping (``resolved_ids``) that made single-server chaos testable
extends to every tenant individually: after a replay, ``completed + shed +
failed == n`` must hold *per tenant*, whatever the chaos schedule did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.fleet.request import FleetRequest, FleetResponse, Tenant
from repro.serve.metrics import LATENCY_PERCENTILES, ServerMetrics


@dataclass
class TenantSummary:
    """One tenant's slice of a fleet replay."""

    tenant: str
    tier: str
    n_requests: int
    completed: int
    shed: int
    failed: int
    shed_by_reason: Dict[str, int]
    failed_by_reason: Dict[str, int]
    latency_percentiles: Dict[float, float]

    @property
    def resolved(self) -> int:
        return self.completed + self.shed + self.failed

    @property
    def p50(self) -> float:
        return self.latency_percentiles[50.0]

    @property
    def p99(self) -> float:
        return self.latency_percentiles[99.0]


@dataclass
class ReplicaSummary:
    """One replica's service record over a replay."""

    replica_id: int
    batches_served: int
    requests_served: int
    losses: int
    busy: float
    circuit_opens: int


@dataclass
class FleetResult:
    """Summary of one fleet replay (policy x replicas x trace)."""

    policy: str
    initial_replicas: int
    peak_replicas: int
    final_replicas: int
    n_requests: int
    completed: int
    shed: int
    failed: int
    shed_by_reason: Dict[str, int]
    failed_by_reason: Dict[str, int]
    latency_percentiles: Dict[float, float]
    mean_latency: float
    mean_queue_delay: float
    mean_batch_size: float
    elapsed: float
    gpu_utilization: float
    busy_fraction: float
    phase_times: Dict[str, float]
    tenants: Dict[str, TenantSummary]
    replicas: List[ReplicaSummary]
    cache_hits: int
    cache_misses: int
    retries: int
    batch_splits: int
    circuit_opens: int
    reroutes: int
    replica_losses: int
    scale_ups: int
    scale_downs: int

    @property
    def resolved(self) -> int:
        return self.completed + self.shed + self.failed

    @property
    def goodput(self) -> float:
        """Successful responses per simulated second."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def p50(self) -> float:
        return self.latency_percentiles[50.0]

    @property
    def p95(self) -> float:
        return self.latency_percentiles[95.0]

    @property
    def p99(self) -> float:
        return self.latency_percentiles[99.0]

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def no_silent_loss(self) -> bool:
        """Every request resolved, fleet-wide *and* within every tenant."""
        if self.resolved != self.n_requests:
            return False
        return all(t.resolved == t.n_requests for t in self.tenants.values())


class FleetMetrics:
    """Accumulates fleet observations, fanned out per tenant."""

    def __init__(self) -> None:
        self.overall = ServerMetrics()
        self._tenants: Dict[str, ServerMetrics] = {}
        self._tenant_meta: Dict[str, Tenant] = {}
        self._tenant_arrivals: Dict[str, int] = {}
        self.reroutes = 0

    # ------------------------------------------------------------------
    def _tenant(self, tenant: Optional[Tenant]) -> ServerMetrics:
        name = tenant.name if tenant is not None else ""
        if name not in self._tenants:
            self._tenants[name] = ServerMetrics()
            if tenant is not None:
                self._tenant_meta[name] = tenant
        return self._tenants[name]

    def record_arrival(self, request: FleetRequest) -> None:
        self._tenant(request.tenant)
        name = request.tenant_name
        self._tenant_arrivals[name] = self._tenant_arrivals.get(name, 0) + 1

    def record_responses(self, responses: List[FleetResponse]) -> None:
        self.overall.record_batch(responses)
        for response in responses:
            self._tenants[response.tenant].record_batch([response])

    def record_shed(self, reason: str, requests: Iterable[FleetRequest]) -> None:
        for request in requests:
            self.overall.record_shed(reason, request_ids=[request.request_id])
            self._tenant(request.tenant).record_shed(
                reason, request_ids=[request.request_id]
            )

    def record_failure(self, reason: str, requests: Iterable[FleetRequest]) -> None:
        for request in requests:
            self.overall.record_failure(reason, [request.request_id])
            self._tenant(request.tenant).record_failure(reason, [request.request_id])

    def record_retry(self, count: int = 1) -> None:
        self.overall.record_retry(count)

    def record_split(self) -> None:
        self.overall.record_split()

    def record_reroute(self, count: int = 1) -> None:
        self.reroutes += count

    def sample_queue_depth(self, depth: int) -> None:
        self.overall.sample_queue_depth(depth)

    def window_p99(self, window: int) -> float:
        """Sliding-window p99 — the autoscaler's latency signal."""
        return self.overall.window_latency_percentiles(window)[99.0]

    # ------------------------------------------------------------------
    def tenant_summaries(self) -> Dict[str, TenantSummary]:
        out: Dict[str, TenantSummary] = {}
        for name, metrics in sorted(self._tenants.items()):
            meta = self._tenant_meta.get(name)
            out[name] = TenantSummary(
                tenant=name,
                tier=meta.tier if meta is not None else "bronze",
                n_requests=self._tenant_arrivals.get(name, 0),
                completed=metrics.completed,
                shed=metrics.shed,
                failed=metrics.failed,
                shed_by_reason=dict(metrics.shed_by_reason),
                failed_by_reason=dict(metrics.failed_by_reason),
                latency_percentiles=metrics.latency_percentiles(),
            )
        return out

    def summary(
        self,
        policy: str,
        initial_replicas: int,
        peak_replicas: int,
        final_replicas: int,
        n_requests: int,
        elapsed: float,
        gpu_utilization: float,
        busy_fraction: float,
        phase_times: Dict[str, float],
        replicas: List[ReplicaSummary],
        cache_hits: int,
        cache_misses: int,
        replica_losses: int,
        scale_ups: int,
        scale_downs: int,
    ) -> FleetResult:
        metrics = self.overall
        latencies = metrics.latencies()
        delays = [r.queue_delay for r in metrics.responses]
        return FleetResult(
            policy=policy,
            initial_replicas=initial_replicas,
            peak_replicas=peak_replicas,
            final_replicas=final_replicas,
            n_requests=n_requests,
            completed=metrics.completed,
            shed=metrics.shed,
            failed=metrics.failed,
            shed_by_reason=dict(metrics.shed_by_reason),
            failed_by_reason=dict(metrics.failed_by_reason),
            latency_percentiles=metrics.latency_percentiles(),
            mean_latency=float(latencies.mean()) if latencies.size else 0.0,
            mean_queue_delay=sum(delays) / len(delays) if delays else 0.0,
            mean_batch_size=(
                sum(metrics.batch_sizes) / len(metrics.batch_sizes)
                if metrics.batch_sizes
                else 0.0
            ),
            elapsed=elapsed,
            gpu_utilization=gpu_utilization,
            busy_fraction=busy_fraction,
            phase_times=dict(phase_times),
            tenants=self.tenant_summaries(),
            replicas=replicas,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            retries=metrics.retries,
            batch_splits=metrics.batch_splits,
            circuit_opens=sum(r.circuit_opens for r in replicas),
            reroutes=self.reroutes,
            replica_losses=replica_losses,
            scale_ups=scale_ups,
            scale_downs=scale_downs,
        )


__all__ = [
    "LATENCY_PERCENTILES",
    "FleetMetrics",
    "FleetResult",
    "TenantSummary",
    "ReplicaSummary",
]
