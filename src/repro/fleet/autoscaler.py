"""Queue-depth / p99-driven replica autoscaling.

The control loop the ROADMAP's production fleet needs: every ``interval``
simulated seconds the autoscaler looks at (a) mean queued requests per up
replica and (b) the sliding-window p99 latency
(:meth:`ServerMetrics.window_latency_percentiles` — the nearest-rank
estimator that stays well-defined on near-empty windows), and scales one
replica at a time.  Scale-ups are *not free*: the new replica warms first
(weights over PCIe via the device cost model) and only joins the routable
set when warm — exactly the lag that makes flash crowds hard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class AutoscalerConfig:
    """Thresholds and pacing of the scaling control loop."""

    min_replicas: int = 1
    max_replicas: int = 8
    #: Seconds between control-loop evaluations.
    interval: float = 0.02
    #: Scale up when mean queued requests per up replica exceeds this.
    scale_up_queue_depth: float = 12.0
    #: ... or when the sliding-window p99 exceeds this (``None`` disables).
    scale_up_p99: Optional[float] = None
    #: Scale down when mean queue depth per up replica falls below this
    #: (and the p99 signal, when configured, is also comfortable).
    scale_down_queue_depth: float = 1.0
    #: Responses in the sliding latency window.
    window: int = 64
    #: Minimum seconds between two scaling actions (either direction).
    cooldown: float = 0.05
    #: Fixed host-side boot cost added to the weight-transfer warm time.
    boot_overhead: float = 2e-3

    def __post_init__(self) -> None:
        if self.min_replicas <= 0:
            raise ValueError("min_replicas must be positive")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


class Autoscaler:
    """Evaluates the config's thresholds against live fleet signals."""

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config
        self.next_eval = config.interval
        self._last_action = -float("inf")
        self.scale_ups = 0
        self.scale_downs = 0

    # ------------------------------------------------------------------
    def decide(self, now: float, replicas: Sequence, window_p99: float) -> int:
        """Return +1 (scale up), -1 (scale down) or 0 (hold) at ``now``.

        ``replicas`` is the full fleet roster; warming replicas count
        toward the population cap (capacity already paid for) but not
        toward the load average (they serve nothing yet).
        """
        config = self.config
        self.next_eval = now + config.interval
        if now - self._last_action < config.cooldown:
            return 0
        up = [r for r in replicas if r.is_up]
        alive = [r for r in replicas if r.state != "down"]
        if not up:
            # Nothing serving (everything warming or lost): add capacity if
            # the population cap allows, through the same bookkeeping.
            if len(alive) < config.max_replicas:
                self._last_action = now
                self.scale_ups += 1
                return +1
            return 0
        depth = sum(len(r.queue) for r in up) / len(up)
        over_depth = depth > config.scale_up_queue_depth
        over_p99 = (
            config.scale_up_p99 is not None and window_p99 > config.scale_up_p99
        )
        if (over_depth or over_p99) and len(alive) < config.max_replicas:
            self._last_action = now
            self.scale_ups += 1
            return +1
        calm_p99 = config.scale_up_p99 is None or window_p99 <= config.scale_up_p99
        if depth < config.scale_down_queue_depth and calm_p99 and len(up) > config.min_replicas:
            # Only shrink when some up replica is actually idle.
            if any(r.free and len(r.queue) == 0 for r in up):
                self._last_action = now
                self.scale_downs += 1
                return -1
        return 0

    def pick_scale_down(self, replicas: Sequence) -> Optional[object]:
        """The idle up replica to retire (highest id — LIFO elasticity)."""
        idle = [r for r in replicas if r.is_up and r.free and len(r.queue) == 0]
        return max(idle, key=lambda r: r.id) if idle else None


__all__ = ["Autoscaler", "AutoscalerConfig"]
