"""Multi-replica serving fleet on the simulated device.

``repro.serve`` models one inference server; production GNN serving runs
*fleets*: N replicas behind a router, shared by many tenants with
different SLAs, resized by an autoscaler, and losing members to chaos.
This package composes those pieces — routing policies (round-robin,
least-loaded, power-of-two-choices), SLA-tiered queues with per-tenant
admission quotas, an LRU result cache, a queue-depth/p99 autoscaler with
device-cost-model warm starts, and seeded replica-loss chaos — on the
same shared :class:`~repro.device.Device` clock the training benchmarks
use, one stream per replica so replica compute genuinely overlaps.

Everything is deterministic under a seed, and every request ends in an
explicit outcome per tenant (no silent loss), so fleet-level claims
(power-of-two-choices beats round-robin at high load; scale-up absorbs a
flash crowd) are reproducible, CI-gated measurements.
"""

from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig
from repro.fleet.cache import ResultCache
from repro.fleet.chaos import ChaosPlan, ChaosSchedule
from repro.fleet.metrics import (
    FleetMetrics,
    FleetResult,
    ReplicaSummary,
    TenantSummary,
)
from repro.fleet.replica import DOWN, UP, WARMING, PendingBatch, Replica
from repro.fleet.request import SLA_TIERS, FleetRequest, FleetResponse, Tenant
from repro.fleet.routing import (
    POLICY_NAMES,
    LeastLoaded,
    PowerOfTwoChoices,
    RoundRobin,
    RoutingPolicy,
    make_policy,
    routable,
)
from repro.fleet.simulator import FleetSimulator
from repro.fleet.tiers import TenantQuota, TieredQueue
from repro.fleet.traffic import (
    Arrival,
    bursty_multitenant_trace,
    diurnal_trace,
    flash_crowd_trace,
    merge_traces,
    zipf_sample_indices,
)

__all__ = [
    "Arrival",
    "Autoscaler",
    "AutoscalerConfig",
    "ChaosPlan",
    "ChaosSchedule",
    "DOWN",
    "FleetMetrics",
    "FleetRequest",
    "FleetResponse",
    "FleetResult",
    "FleetSimulator",
    "LeastLoaded",
    "POLICY_NAMES",
    "PendingBatch",
    "PowerOfTwoChoices",
    "Replica",
    "ReplicaSummary",
    "ResultCache",
    "RoundRobin",
    "RoutingPolicy",
    "SLA_TIERS",
    "Tenant",
    "TenantQuota",
    "TenantSummary",
    "TieredQueue",
    "UP",
    "WARMING",
    "bursty_multitenant_trace",
    "diurnal_trace",
    "flash_crowd_trace",
    "make_policy",
    "merge_traces",
    "routable",
    "zipf_sample_indices",
]
