"""Collective communication primitives over the modelled fabric.

A :class:`Communicator` plays the role NCCL plays under
``torch.distributed``: ring and tree all-reduce, broadcast, all-gather and
reduce-scatter, scheduled as chunked send/recv transfers over the
point-to-point links of a :class:`~repro.device.Fabric` and landing on one
*comm stream per replica* (``replica{r}/comm``) on the measured device.

Two properties are load-bearing:

* **Bitwise-deterministic numerics.**  Every reduction computes the
  canonical fixed-order sum ``(((a_0 + a_1) + a_2) + ...)`` in float32,
  regardless of the algorithm that models its *timing*.  Ring vs tree vs
  sequential therefore never changes a single bit of the result — real
  NCCL makes the same promise per (topology, size) and the property tests
  in ``tests/dist/test_collectives.py`` pin it here.
* **Async timing.**  Transfers and receive-side reductions occupy links
  and comm streams without advancing wall time (the host only pays the
  launch overhead per collective); the wall meets the schedule at
  :meth:`Communicator.synchronize`, so collectives issued during backward
  overlap with the remaining backward compute exactly as DDP intends.
  All comm time is attributed to the ``"comm"`` clock phase and comm
  kernels carry ``phase="comm"`` in profiler records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device import Device, Fabric, LinkSpec, NVLINK, current_device
from repro.device.gpu import kernel_efficiency
from repro.device.kernel import KernelRecord

#: Phase name comm work is attributed to (see ``Profiler.time_by_phase``).
COMM_PHASE = "comm"


def reduce_fixed_order(arrays: Sequence[np.ndarray], op: str = "sum") -> np.ndarray:
    """The canonical reduction: left-to-right float32 sum over replicas.

    This is *the* definition of a collective's numerics in this model —
    every all-reduce/reduce-scatter algorithm must match it bitwise.
    """
    if not arrays:
        raise ValueError("cannot reduce zero arrays")
    if op not in ("sum", "mean"):
        raise ValueError(f"unknown reduction op {op!r}")
    acc = np.asarray(arrays[0], dtype=np.float32).copy()
    for arr in arrays[1:]:
        if arr.shape != acc.shape:
            raise ValueError(
                f"replica buffers disagree on shape: {arr.shape} vs {acc.shape}"
            )
        acc += np.asarray(arr, dtype=np.float32)
    if op == "mean":
        acc /= np.float32(len(arrays))
    return acc


@dataclass
class CommStats:
    """Aggregate counters across all collectives issued on a communicator."""

    collectives: int = 0
    bytes_moved: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def count(self, kind: str) -> None:
        self.collectives += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class Communicator:
    """NCCL-style collectives for ``world_size`` replicas on one device.

    All replicas' comm engines are modelled as streams of the *measured*
    device (``replica{r}/comm``) so one clock carries the whole schedule;
    replica compute itself may run elsewhere (see
    :class:`~repro.dist.DistributedDataParallel`).  With ``world_size=1``
    the communicator is a strict no-op: no streams or links are created
    and every collective returns its input unchanged — the basis of the
    DDP single-replica bitwise-parity guarantee.
    """

    def __init__(
        self,
        world_size: int,
        device: Optional[Device] = None,
        link: LinkSpec = NVLINK,
        fabric: Optional[Fabric] = None,
        record_transfers: bool = False,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.device = device or current_device()
        self.stats = CommStats()
        if world_size > 1:
            self.fabric = fabric or Fabric(world_size, spec=link,
                                           record=record_transfers)
            if self.fabric.world_size < world_size:
                raise ValueError(
                    f"fabric of world_size={self.fabric.world_size} cannot "
                    f"carry a communicator of world_size={world_size}"
                )
            self.streams = [self.device.stream(f"replica{r}/comm")
                            for r in range(world_size)]
        else:
            self.fabric = None
            self.streams = []

    # ------------------------------------------------------------------
    # schedule helpers (timing only — numerics never pass through these)
    # ------------------------------------------------------------------
    def _begin(self, kind: str, nbytes: int) -> None:
        """Host-side cost of issuing one collective (the NCCL launch)."""
        self.stats.count(kind)
        self.stats.bytes_moved += int(nbytes)
        with self.device.clock.phase(COMM_PHASE):
            self.device.host(self.device.spec.launch_overhead)

    def _reduce_seconds(self, nbytes: float) -> float:
        """GPU time for the receive-side elementwise reduce of ``nbytes``."""
        elems = nbytes / 4.0
        return self.device.spec.kernel_time(
            flops=elems, bytes_moved=3.0 * nbytes,
            efficiency=kernel_efficiency("grad_accumulate"),
        )

    def _record(self, kind: str, started: List[float], nbytes: int) -> None:
        """One profiler record per replica spanning its comm activity."""
        if not self.device.profiler.enabled:
            return
        for rank, stream in enumerate(self.streams):
            if stream.ready <= started[rank]:
                continue  # this rank did nothing (e.g. broadcast leaf round)
            self.device.profiler.record(
                KernelRecord(
                    name=f"nccl:{kind}",
                    scope=self.device.current_scope,
                    duration=stream.ready - started[rank],
                    flops=0.0,
                    bytes_moved=float(nbytes),
                    timestamp=stream.ready,
                    memory=self.device.memory.current,
                    stream=stream.id,
                    phase=COMM_PHASE,
                )
            )

    def _stream_marks(self) -> List[float]:
        return [max(s.ready, self.device.clock.elapsed) for s in self.streams]

    # ------------------------------------------------------------------
    # algorithm selection
    # ------------------------------------------------------------------
    def estimate_ring_seconds(self, nbytes: int) -> float:
        """Analytic ring all-reduce time: bandwidth-optimal, 2(N-1) hops."""
        n, spec = self.world_size, self.fabric.spec
        steps = 2 * (n - 1)
        return steps * spec.transfer_time(nbytes / n)

    def estimate_tree_seconds(self, nbytes: int) -> float:
        """Analytic tree all-reduce time: latency-optimal, 2·log2(N) rounds."""
        rounds = 2 * math.ceil(math.log2(self.world_size))
        return rounds * self.fabric.spec.transfer_time(nbytes)

    def _pick_algorithm(self, algorithm: str, nbytes: int) -> str:
        if algorithm != "auto":
            if algorithm not in ("ring", "tree"):
                raise ValueError(f"unknown all-reduce algorithm {algorithm!r}")
            return algorithm
        if self.estimate_tree_seconds(nbytes) < self.estimate_ring_seconds(nbytes):
            return "tree"
        return "ring"

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def all_reduce(
        self,
        arrays: Sequence[np.ndarray],
        op: str = "sum",
        algorithm: str = "auto",
        label: str = "all_reduce",
    ) -> np.ndarray:
        """Reduce one buffer per replica; every replica ends with the result.

        Returns the reduced array (identical on all ranks by construction).
        ``algorithm`` chooses the *timing* schedule only: ``"ring"`` is
        bandwidth-optimal, ``"tree"`` latency-optimal, ``"auto"`` picks the
        analytically cheaper of the two for this buffer size.
        """
        self._check_world(arrays)
        result = reduce_fixed_order(arrays, op=op)
        if self.world_size == 1:
            return result
        nbytes = int(result.nbytes)
        algo = self._pick_algorithm(algorithm, nbytes)
        self._begin(f"{algo}_all_reduce", nbytes)
        started = self._stream_marks()
        if algo == "ring":
            self._ring_all_reduce_schedule(nbytes, label)
        else:
            self._tree_reduce_schedule(nbytes, label)
            self._tree_broadcast_schedule(nbytes, label)
        self._record(f"{algo}_all_reduce", started, nbytes)
        return result

    def broadcast(self, array: np.ndarray, root: int = 0,
                  label: str = "broadcast") -> np.ndarray:
        """Send ``root``'s buffer to every replica (binomial tree rounds)."""
        if not 0 <= root < self.world_size:
            raise ValueError(f"root={root} outside world_size={self.world_size}")
        array = np.asarray(array, dtype=np.float32)
        if self.world_size == 1:
            return array
        nbytes = int(array.nbytes)
        self._begin("tree_broadcast", nbytes)
        started = self._stream_marks()
        self._tree_broadcast_schedule(nbytes, label, root=root)
        self._record("tree_broadcast", started, nbytes)
        return array

    def all_gather(self, arrays: Sequence[np.ndarray],
                   label: str = "all_gather") -> List[np.ndarray]:
        """Every replica ends with every replica's buffer (ring rotation)."""
        self._check_world(arrays)
        out = [np.asarray(a, dtype=np.float32) for a in arrays]
        if self.world_size == 1:
            return out
        n = self.world_size
        nbytes = int(sum(a.nbytes for a in out))
        self._begin("ring_all_gather", nbytes)
        started = self._stream_marks()
        # N-1 rotation steps; at step s, rank r forwards the block it
        # received at step s-1 (originating at rank (r - s) mod N).
        for step in range(n - 1):
            marks = self._stream_marks()
            for rank in range(n):
                origin = (rank - step) % n
                self._hop_snapshot(rank, (rank + 1) % n, out[origin].nbytes,
                                   reduce_after=False, label=label,
                                   sender_ready=marks[rank])
        self._record("ring_all_gather", started, nbytes)
        return out

    def reduce_scatter(
        self,
        arrays: Sequence[np.ndarray],
        op: str = "sum",
        label: str = "reduce_scatter",
    ) -> List[np.ndarray]:
        """Reduce across replicas; rank ``r`` ends with chunk ``r``.

        Chunking follows ``np.array_split`` over the flattened buffer, so
        uneven sizes are allowed and the chunks concatenate back to the
        full fixed-order reduction bitwise.
        """
        self._check_world(arrays)
        reduced = reduce_fixed_order(arrays, op=op)
        chunks = np.array_split(reduced.reshape(-1), self.world_size)
        if self.world_size == 1:
            return [chunks[0]]
        nbytes = int(reduced.nbytes)
        self._begin("ring_reduce_scatter", nbytes)
        started = self._stream_marks()
        self._ring_reduce_scatter_schedule(
            [int(c.nbytes) for c in chunks], label)
        self._record("ring_reduce_scatter", started, nbytes)
        return list(chunks)

    # ------------------------------------------------------------------
    # timing schedules
    # ------------------------------------------------------------------
    def _hop_snapshot(self, src: int, dst: int, nbytes: float,
                      reduce_after: bool, label: str,
                      sender_ready: float) -> None:
        """Like :meth:`_hop`, but against a snapshotted sender readiness.

        Ring steps are simultaneous across ranks: every rank's send at step
        ``s`` depends on its state after step ``s-1``, not on sends other
        ranks already issued *within* step ``s`` (the loop over ranks is a
        serialisation artefact of the simulation, not of the schedule).
        """
        start, end = self.fabric.transfer(src, dst, int(nbytes),
                                          sender_ready, label=label)
        seconds = (end - start) + (self._reduce_seconds(nbytes)
                                   if reduce_after else 0.0)
        self.streams[dst].enqueue(seconds, after=start)
        if reduce_after and dst == 0:
            self.device.clock.account_gpu_async(self._reduce_seconds(nbytes))

    def _ring_reduce_scatter_schedule(self, chunk_bytes: List[int],
                                      label: str) -> None:
        n = self.world_size
        for step in range(n - 1):
            marks = self._stream_marks()
            for rank in range(n):
                chunk = (rank - step) % n
                if chunk_bytes[chunk] == 0:
                    continue
                self._hop_snapshot(rank, (rank + 1) % n, chunk_bytes[chunk],
                                   reduce_after=True,
                                   label=f"{label}/chunk{chunk}",
                                   sender_ready=marks[rank])

    def _ring_all_gather_schedule(self, chunk_bytes: List[int],
                                  label: str) -> None:
        n = self.world_size
        for step in range(n - 1):
            marks = self._stream_marks()
            for rank in range(n):
                chunk = (rank + 1 - step) % n
                if chunk_bytes[chunk] == 0:
                    continue
                self._hop_snapshot(rank, (rank + 1) % n, chunk_bytes[chunk],
                                   reduce_after=False,
                                   label=f"{label}/chunk{chunk}",
                                   sender_ready=marks[rank])

    def _ring_all_reduce_schedule(self, nbytes: int, label: str) -> None:
        """Reduce-scatter then all-gather over N chunks (NCCL's ring)."""
        n = self.world_size
        base, extra = divmod(nbytes, n)
        chunk_bytes = [base + (1 if r < extra else 0) for r in range(n)]
        self._ring_reduce_scatter_schedule(chunk_bytes, label)
        self._ring_all_gather_schedule(chunk_bytes, label)

    def _tree_reduce_schedule(self, nbytes: int, label: str) -> None:
        """Binomial-tree reduce to rank 0: log2(N) full-buffer rounds."""
        n, distance = self.world_size, 1
        while distance < n:
            marks = self._stream_marks()
            for rank in range(n):
                if rank % (2 * distance) == distance:
                    self._hop_snapshot(rank, rank - distance, nbytes,
                                       reduce_after=True, label=label,
                                       sender_ready=marks[rank])
            distance *= 2

    def _tree_broadcast_schedule(self, nbytes: int, label: str,
                                 root: int = 0) -> None:
        """Binomial-tree broadcast from ``root`` (relabelled to rank 0)."""
        n = self.world_size
        distance = 1
        while distance < n:
            distance *= 2
        while distance >= 2:
            distance //= 2
            marks = self._stream_marks()
            for rank in range(n):
                if rank % (2 * distance) == 0 and rank + distance < n:
                    src = (rank + root) % n
                    dst = (rank + distance + root) % n
                    self._hop_snapshot(src, dst, nbytes, reduce_after=False,
                                       label=label, sender_ready=marks[src])

    # ------------------------------------------------------------------
    def synchronize(self) -> None:
        """Block the host until every comm stream drains (phase ``comm``).

        The residual wait — whatever the collectives could not hide behind
        compute issued since — lands in ``phase_elapsed["comm"]``; fully
        hidden communication costs zero wall time here.
        """
        if self.world_size == 1:
            return
        target = max(s.ready for s in self.streams)
        gap = target - self.device.clock.elapsed
        if gap > 0:
            with self.device.clock.phase(COMM_PHASE):
                self.device.clock.advance_wait(gap)

    def _check_world(self, arrays: Sequence[np.ndarray]) -> None:
        if len(arrays) != self.world_size:
            raise ValueError(
                f"expected one buffer per replica "
                f"({self.world_size}), got {len(arrays)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Communicator(world_size={self.world_size}, "
                f"collectives={self.stats.collectives})")
