"""DistributedDataParallel: bucketed gradient all-reduce during backward.

The wrapper reproduces the mechanism that lets DDP scale where the
paper's DataParallel loop cannot: gradients are packed into size-capped
buckets in reverse parameter order (the order backward produces them), and
the moment a bucket's last gradient lands, its all-reduce is launched on
the comm streams — *overlapped* with the rest of backward still running on
the default stream.  The host only meets the communication at
:meth:`DistributedDataParallel.finish_backward`, so well-overlapped steps
pay almost nothing for gradient sync.

Replica compute is modelled asymmetrically (see
:class:`~repro.train.DDPTrainer`): replica 0 runs on the measured device,
replicas ``1..N-1`` run on shadow devices and *stage* their gradients here
(:meth:`stage_remote_grads`) before replica 0's synchronised backward.
Reduction numerics are the communicator's canonical fixed-rank-order
float32 sum divided by the world size, so results never depend on bucket
layout or schedule.

With ``world_size == 1`` the wrapper is inert: no hooks are registered,
no kernels or host costs are added, and training is bitwise identical to
the unwrapped module — the parity tests pin this.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.dist.comm import Communicator
from repro.nn.module import Module, Parameter

#: Default bucket capacity.  Small enough that the models of the paper's
#: graph tasks span several buckets (so overlap is observable), large
#: enough that per-collective launch overhead stays amortised.
DEFAULT_BUCKET_BYTES = 1 << 16


class GradBucket:
    """One all-reduce unit: consecutive (reversed-order) parameters."""

    def __init__(self, index: int, params: List[Tuple[str, Parameter]]) -> None:
        self.index = index
        self.params = params
        self.nbytes = int(sum(p.nbytes for _, p in params))
        #: Parameter names still waiting for a gradient this backward.
        self.pending = {name for name, _ in params}

    def reset(self) -> None:
        self.pending = {name for name, _ in self.params}

    @property
    def complete(self) -> bool:
        return not self.pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GradBucket({self.index}, params={len(self.params)}, "
                f"nbytes={self.nbytes})")


class DistributedDataParallel:
    """Wrap a module for data-parallel gradient averaging.

    Calls forward through to the wrapped module unchanged (no extra scope,
    no extra kernels).  During a synchronised backward on the measured
    replica, post-accumulate-grad hooks fire per parameter; when a bucket
    completes, its gradients — together with the staged gradients of every
    remote replica — are all-reduced with ``op="mean"`` and written back
    into ``param.grad``, so a subsequent ``optimizer.step()`` applies the
    replica-averaged gradient.
    """

    def __init__(
        self,
        module: Module,
        comm: Communicator,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        algorithm: str = "auto",
    ) -> None:
        if bucket_bytes < 1:
            raise ValueError("bucket_bytes must be positive")
        self.module = module
        self.comm = comm
        self.world_size = comm.world_size
        self.bucket_bytes = int(bucket_bytes)
        self.algorithm = algorithm
        self._sync_enabled = True
        #: Per-remote-rank gradients staged for the next synchronised
        #: backward: ``{rank: {param_name: np.ndarray}}``.
        self._staged: Dict[int, Dict[str, np.ndarray]] = {}
        self._named: List[Tuple[str, Parameter]] = list(module.named_parameters())
        self.buckets: List[GradBucket] = []
        self._bucket_of: Dict[str, GradBucket] = {}
        self._hook_handles: List[Callable[[], None]] = []
        if self.world_size > 1:
            self._build_buckets()
            self._register_hooks()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_buckets(self) -> None:
        """Pack parameters into buckets in reverse declaration order.

        Backward reaches the last layers first, so reversing the parameter
        list means early buckets complete early in backward — maximising
        how much backward remains to overlap their all-reduce with.
        """
        current: List[Tuple[str, Parameter]] = []
        size = 0
        for name, param in reversed(self._named):
            if not param.requires_grad:
                continue
            if current and size + param.nbytes > self.bucket_bytes:
                self.buckets.append(GradBucket(len(self.buckets), current))
                current, size = [], 0
            current.append((name, param))
            size += param.nbytes
        if current:
            self.buckets.append(GradBucket(len(self.buckets), current))
        for bucket in self.buckets:
            for name, _ in bucket.params:
                self._bucket_of[name] = bucket

    def _register_hooks(self) -> None:
        for name, param in self._named:
            if not param.requires_grad:
                continue

            def hook(_tensor, name=name):
                self._on_grad_ready(name)

            self._hook_handles.append(
                param.register_post_accumulate_grad_hook(hook))

    # ------------------------------------------------------------------
    # forward delegation
    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.module(*args, **kwargs)

    def parameters(self) -> Iterator[Parameter]:
        return self.module.parameters()

    def named_parameters(self):
        return self.module.named_parameters()

    def train(self) -> None:
        self.module.train()

    def eval(self) -> None:
        self.module.eval()

    # ------------------------------------------------------------------
    # gradient synchronisation
    # ------------------------------------------------------------------
    @contextmanager
    def no_sync(self) -> Iterator[None]:
        """Suppress bucket bookkeeping inside the block.

        Used for all but the last micro-batch of a gradient-accumulation
        group, and for shadow replicas' backward passes (their gradients
        arrive via :meth:`stage_remote_grads` instead).
        """
        previous = self._sync_enabled
        self._sync_enabled = False
        try:
            yield
        finally:
            self._sync_enabled = previous

    def stage_remote_grads(self, rank: int,
                           grads: Dict[str, np.ndarray]) -> None:
        """Deposit replica ``rank``'s gradients for the next sync.

        ``grads`` maps parameter names to arrays; missing names reduce as
        zeros.  Must be called for every rank in ``1..world_size-1``
        before the measured replica's synchronised backward completes a
        bucket.
        """
        if not 1 <= rank < self.world_size:
            raise ValueError(
                f"rank must be in [1, {self.world_size - 1}], got {rank}")
        known = {name for name, _ in self._named}
        unknown = set(grads) - known
        if unknown:
            raise ValueError(f"staged gradients for unknown parameters: "
                             f"{sorted(unknown)}")
        self._staged[rank] = {name: np.asarray(g, dtype=np.float32).copy()
                              for name, g in grads.items()}

    def _on_grad_ready(self, name: str) -> None:
        if not self._sync_enabled:
            return
        bucket = self._bucket_of.get(name)
        if bucket is None or name not in bucket.pending:
            return
        bucket.pending.discard(name)
        if bucket.complete:
            self._reduce_bucket(bucket)

    def _flatten(self, bucket: GradBucket,
                 lookup: Callable[[str, Parameter], Optional[np.ndarray]]) -> np.ndarray:
        parts = []
        for name, param in bucket.params:
            grad = lookup(name, param)
            if grad is None:
                grad = np.zeros(param.shape, dtype=np.float32)
            parts.append(np.asarray(grad, dtype=np.float32).reshape(-1))
        return np.concatenate(parts)

    def _reduce_bucket(self, bucket: GradBucket) -> None:
        """All-reduce one bucket across replicas and write back the mean."""
        missing = [r for r in range(1, self.world_size)
                   if r not in self._staged]
        if missing:
            raise RuntimeError(
                f"bucket {bucket.index} is ready but replicas {missing} have "
                f"not staged gradients; run shadow replicas (under no_sync) "
                f"and stage_remote_grads() before the synchronised backward"
            )
        flats = [self._flatten(bucket, lambda name, p: p.grad)]
        for rank in range(1, self.world_size):
            staged = self._staged[rank]
            flats.append(self._flatten(bucket,
                                       lambda name, p: staged.get(name)))
        reduced = self.comm.all_reduce(flats, op="mean",
                                       algorithm=self.algorithm,
                                       label=f"bucket{bucket.index}")
        offset = 0
        for name, param in bucket.params:
            chunk = reduced[offset:offset + param.size]
            grad = np.ascontiguousarray(chunk.reshape(param.shape))
            self.comm.device.track(grad)
            param.grad = grad
            offset += param.size

    def finish_backward(self) -> None:
        """Flush stragglers and meet the in-flight collectives.

        Buckets whose parameters were partially touched this backward
        (e.g. a head not exercised by this batch) are reduced with zeros
        for the missing gradients; buckets never touched at all stay
        local.  The residual communication wait — whatever all-reduce time
        backward could not hide — is paid here under the ``comm`` phase.
        No-op at ``world_size == 1``.
        """
        if self.world_size == 1:
            return
        for bucket in self.buckets:
            if bucket.pending and len(bucket.pending) < len(bucket.params):
                self._reduce_bucket(bucket)
        self.comm.synchronize()
        self._staged.clear()
        for bucket in self.buckets:
            bucket.reset()

    # ------------------------------------------------------------------
    def remove_hooks(self) -> None:
        """Detach all grad hooks (the module reverts to plain training)."""
        for handle in self._hook_handles:
            handle()
        self._hook_handles.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DistributedDataParallel(world_size={self.world_size}, "
                f"buckets={len(self.buckets)})")


def collect_grads(named: Sequence[Tuple[str, Parameter]]) -> Dict[str, np.ndarray]:
    """Snapshot current gradients by name (copies; ``None`` grads skipped)."""
    return {name: np.asarray(p.grad, dtype=np.float32).copy()
            for name, p in named if p.grad is not None}
