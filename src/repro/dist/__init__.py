"""Distributed data-parallel training over the modelled interconnect.

The paper's Fig. 6 DataParallel loop serialises communication; this
package supplies the modern alternative the ROADMAP calls for:

* :class:`Communicator` — NCCL-style collectives (ring/tree all-reduce,
  broadcast, all-gather, reduce-scatter) scheduled as chunked transfers
  over a :class:`~repro.device.Fabric`, with bitwise-deterministic
  fixed-order reduction numerics.
* :class:`DistributedDataParallel` — grad hooks pack gradients into
  size-capped buckets whose all-reduces overlap the remaining backward.
* :class:`BatchConfig` — micro-batch x gradient-accumulation x replicas
  factoring of the effective global batch.

The trainer that drives all three lives in
:class:`repro.train.DDPTrainer`; the scaling deliverable is
``BENCH_scaling.json`` (see ``benchmarks/test_scaling_ddp.py``).
"""

from repro.dist.batch_config import BatchConfig
from repro.dist.comm import COMM_PHASE, CommStats, Communicator, reduce_fixed_order
from repro.dist.ddp import (
    DEFAULT_BUCKET_BYTES,
    DistributedDataParallel,
    GradBucket,
    collect_grads,
)

__all__ = [
    "BatchConfig",
    "COMM_PHASE",
    "CommStats",
    "Communicator",
    "reduce_fixed_order",
    "DEFAULT_BUCKET_BYTES",
    "DistributedDataParallel",
    "GradBucket",
    "collect_grads",
]
