"""Effective-batch arithmetic for distributed training.

The paper sweeps the *loader* batch size (Fig. 5/6); under DDP the number
a practitioner actually tunes is the **global batch**: how many graphs
contribute to one optimizer step.  A :class:`BatchConfig` factors it as

    global = micro_batch_size x grad_accumulation x replicas

so a trainer can trade replica parallelism against gradient accumulation
at a fixed effective batch, exactly the knob the scaling bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BatchConfig:
    """How one optimizer step's global batch is assembled.

    Attributes:
        micro_batch_size: Graphs per forward/backward on one replica.
        grad_accumulation: Micro-steps accumulated before the optimizer
            steps; gradients of each micro-batch loss are scaled by
            ``1/grad_accumulation`` so the accumulated gradient matches
            the mean-loss gradient of the full replica batch.
        replicas: Data-parallel world size; gradients are averaged across
            replicas by the bucket all-reduce.
    """

    micro_batch_size: int
    grad_accumulation: int = 1
    replicas: int = 1

    def __post_init__(self) -> None:
        for name in ("micro_batch_size", "grad_accumulation", "replicas"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive int, got {value!r}")

    @property
    def replica_batch_size(self) -> int:
        """Graphs one replica consumes per optimizer step."""
        return self.micro_batch_size * self.grad_accumulation

    @property
    def global_batch_size(self) -> int:
        """Graphs contributing to one optimizer step across all replicas."""
        return self.replica_batch_size * self.replicas

    @classmethod
    def for_global_batch(cls, global_batch_size: int, replicas: int = 1,
                         grad_accumulation: int = 1) -> "BatchConfig":
        """Split a target global batch evenly over replicas and micro-steps.

        Raises ``ValueError`` when the split is uneven — a silently
        rounded batch would break parity with the single-device baseline.
        """
        per_step = replicas * grad_accumulation
        micro, remainder = divmod(global_batch_size, per_step)
        if remainder or micro < 1:
            raise ValueError(
                f"global_batch_size={global_batch_size} does not split over "
                f"{replicas} replica(s) x {grad_accumulation} micro-step(s)"
            )
        return cls(micro_batch_size=micro, grad_accumulation=grad_accumulation,
                   replicas=replicas)

    def __str__(self) -> str:
        return (f"{self.global_batch_size} = {self.micro_batch_size} micro "
                f"x {self.grad_accumulation} accum x {self.replicas} replicas")
