"""PyG-style ``NeighborLoader`` over a CSR-backed large graph.

Mirrors ``torch_geometric.loader.NeighborLoader``: every mini-batch is the
merged union subgraph of a fanout neighbor sample around a chunk of seed
nodes, relabelled so the seeds occupy rows ``[:n_seeds]`` — a model's
output rows for the seeds line up with the batch labels directly.

Sampling happens on the host under the clock's ``"sampling"`` phase (via
:class:`repro.scale.NeighborSampler`); feature gather, collation and the
H2D copy are charged under ``"data_loading"`` like every other loader, so
sampled-training epochs expose a sampling/loading/compute breakdown.
Compatible with :class:`repro.pygx.PrefetchDataLoader` for pipelined
sampling+collation.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.device import current_device
from repro.graph.big_graph import CSRBigGraph, gather_rows
from repro.graph.graph import RngLike, as_generator
from repro.scale.sample import NeighborSampler
from repro.tensor import Tensor


class NeighborBatch:
    """One sampled subgraph on the device; duck-types :class:`~repro.pygx.Batch`.

    ``x``/``edge_index``/``num_nodes`` feed ``PyGXNet.forward`` unchanged
    (node task); rows ``[:n_seeds]`` of the model output correspond to
    ``seed_nodes`` and ``y``.
    """

    def __init__(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        n_seeds: int,
        seed_nodes: np.ndarray,
        y: np.ndarray,
        true_in_degrees: Optional[np.ndarray] = None,
    ) -> None:
        self.x = x
        self.edge_index = edge_index
        self.n_seeds = n_seeds
        self.seed_nodes = seed_nodes
        self.y = y
        self.true_in_degrees = true_in_degrees

    @property
    def num_nodes(self) -> int:
        return len(self.x)

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]


class NeighborLoader:
    """Iterates :class:`NeighborBatch` objects over seed-node chunks."""

    def __init__(
        self,
        graph: CSRBigGraph,
        seeds: np.ndarray,
        fanouts: Sequence[int],
        batch_size: int,
        shuffle: bool = False,
        rng: RngLike = None,
        labels: Optional[np.ndarray] = None,
        ensure_self_loops: bool = False,
        full_graph_norm: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if labels is None:
            labels = graph.y
        if labels is None:
            raise ValueError("graph has no labels; pass labels= explicitly")
        self.graph = graph
        self.seeds = np.asarray(seeds, dtype=np.int64)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = as_generator(rng)
        self.labels = np.asarray(labels)
        self.ensure_self_loops = ensure_self_loops
        self.full_graph_norm = full_graph_norm
        self.sampler = NeighborSampler(graph, fanouts, rng=self.rng)

    def __len__(self) -> int:
        return (len(self.seeds) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[NeighborBatch]:
        device = current_device()
        costs = device.host_costs
        order = np.arange(len(self.seeds))
        if self.shuffle:
            order = self.rng.permutation(len(self.seeds))
        for start in range(0, len(order), self.batch_size):
            chunk = self.seeds[order[start:start + self.batch_size]]
            sub = self.sampler.sample(chunk)  # charged under "sampling"
            src_e, dst_e = sub.src, sub.dst
            if self.ensure_self_loops:
                # add_self_loop-after-sampling: fanout truncation must not
                # randomly drop a high-degree node's own feature, or the
                # training regime diverges from full-graph inference.
                keep = src_e != dst_e
                loops = np.arange(sub.num_nodes, dtype=np.int64)
                src_e = np.concatenate([src_e[keep], loops])
                dst_e = np.concatenate([dst_e[keep], loops])
            with device.clock.phase("data_loading"):
                x = gather_rows(self.graph.x, sub.nodes)
                edge_index = np.stack([src_e, dst_e])
                nbytes = x.nbytes + edge_index.nbytes
                device.host(
                    costs.fetch_per_graph * len(chunk)
                    + costs.batch_per_byte * nbytes
                )
                device.transfer(nbytes)
                device.track(edge_index)
                true_deg = None
                if self.full_graph_norm:
                    true_deg = np.diff(self.graph.indptr)[sub.nodes]
                    device.track(true_deg)
                batch = NeighborBatch(
                    x=Tensor(x),
                    edge_index=edge_index,
                    n_seeds=sub.n_seeds,
                    seed_nodes=chunk,
                    y=self.labels[chunk],
                    true_in_degrees=true_deg,
                )
            yield batch
