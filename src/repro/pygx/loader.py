"""Mini-batch loader for the PyG-style framework."""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.device import current_device
from repro.graph import GraphSample, as_generator
from repro.graph.graph import RngLike
from repro.pygx.data import Batch, Data


class DataLoader:
    """Iterates PyG-style :class:`Batch` objects over a list of graphs.

    Collation happens under the clock's ``data_loading`` phase so trainers
    get the Fig. 1/2 breakdown for free.
    """

    def __init__(
        self,
        graphs: Sequence[GraphSample],
        batch_size: int,
        shuffle: bool = False,
        rng: RngLike = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.data: List[Data] = [Data.from_sample(g) for g in graphs]
        if drop_last and len(self.data) < batch_size:
            raise ValueError(
                f"drop_last=True with batch_size={batch_size} would yield zero "
                f"batches over {len(self.data)} graphs"
            )
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = as_generator(rng)
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.data)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        device = current_device()
        order = np.arange(len(self.data))
        if self.shuffle:
            order = self.rng.permutation(len(self.data))
        for start in range(0, len(order), self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            with device.clock.phase("data_loading"):
                device.host(device.host_costs.fetch_per_graph * len(indices))
                batch = Batch.from_data_list([self.data[i] for i in indices])
            yield batch
