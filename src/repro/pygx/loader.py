"""Mini-batch loader for the PyG-style framework."""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.device import current_device
from repro.graph import GraphSample, as_generator
from repro.graph.graph import RngLike
from repro.graph.sharding import check_shard, shard_order
from repro.pygx.data import Batch, Data


class DataLoader:
    """Iterates PyG-style :class:`Batch` objects over a list of graphs.

    Collation happens under the clock's ``data_loading`` phase so trainers
    get the Fig. 1/2 breakdown for free.

    With ``world_size > 1`` the loader yields only replica ``rank``'s
    shard of each epoch's order (see :mod:`repro.graph.sharding`):
    identically seeded RNGs on all replicas give disjoint, equal-sized,
    drop-remainder shards.
    """

    def __init__(
        self,
        graphs: Sequence[GraphSample],
        batch_size: int,
        shuffle: bool = False,
        rng: RngLike = None,
        drop_last: bool = False,
        rank: int = 0,
        world_size: int = 1,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.data: List[Data] = [Data.from_sample(g) for g in graphs]
        shard_len = check_shard(len(self.data), batch_size, drop_last,
                                rank, world_size)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = as_generator(rng)
        self.drop_last = drop_last
        self.rank = rank
        self.world_size = world_size
        self._shard_len = shard_len

    def __len__(self) -> int:
        if self.drop_last:
            return self._shard_len // self.batch_size
        return (self._shard_len + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        device = current_device()
        order = np.arange(len(self.data))
        if self.shuffle:
            order = self.rng.permutation(len(self.data))
        order = shard_order(order, self.rank, self.world_size)
        for start in range(0, len(order), self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            with device.clock.phase("data_loading"):
                device.host(device.host_costs.fetch_per_graph * len(indices))
                batch = Batch.from_data_list([self.data[i] for i in indices])
            yield batch
