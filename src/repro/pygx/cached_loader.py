"""Batch-caching loader — the optimisation the paper calls for.

The paper's conclusion: "More efficient graph batching strategies will
greatly speed up GNN training."  For full-dataset epochs with a fixed batch
partition, the collated big graphs never change, so they can be built once
and replayed — trading the per-epoch CPU collation cost for keeping every
collated batch resident on the device.

:class:`CachedDataLoader` does exactly that: the first epoch pays the
normal PyG-style collation cost; later epochs only pay the per-batch fetch
bookkeeping.  The batch partition is fixed (re-shuffling would invalidate
the cache), which is the standard trade made by caching loaders.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.device import current_device
from repro.graph import GraphSample, as_generator
from repro.graph.graph import RngLike
from repro.pygx.data import Batch, Data


class CachedDataLoader:
    """Collate once, replay every epoch (fixed batch partition)."""

    def __init__(
        self,
        graphs: Sequence[GraphSample],
        batch_size: int,
        rng: RngLike = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        order = as_generator(rng).permutation(len(graphs))
        self._data = [Data.from_sample(graphs[i]) for i in order]
        self._cache: List[Batch] = []

    def __len__(self) -> int:
        n = len(self._data)
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        device = current_device()
        if not self._cache:
            for start in range(0, len(self._data), self.batch_size):
                with device.clock.phase("data_loading"):
                    chunk = self._data[start : start + self.batch_size]
                    device.host(device.host_costs.fetch_per_graph * len(chunk))
                    batch = Batch.from_data_list(chunk)
                self._cache.append(batch)
                yield batch
            return
        for batch in self._cache:
            with device.clock.phase("data_loading"):
                # replay: only the per-batch fetch bookkeeping remains
                device.host(device.host_costs.fetch_per_graph)
            yield batch

    def cached_bytes(self) -> int:
        """Device memory held by the cached batches."""
        return sum(b.x.nbytes + b.edge_index.nbytes for b in self._cache)
