"""Global pooling (graph readout) for the PyG-style framework.

Built on the scatter API, as the paper notes: "In PyG, the pooling
operations are based on the scatter API of PyTorch" (Section IV-C).
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, scatter_max, scatter_mean, scatter_sum


def global_mean_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Average node features per graph."""
    return scatter_mean(x, batch, num_graphs)


def global_add_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Sum node features per graph."""
    return scatter_sum(x, batch, num_graphs)


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Max-reduce node features per graph."""
    return scatter_max(x, batch, num_graphs)
