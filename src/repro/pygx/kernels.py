"""PyG-style kernel wrappers for operation-level benchmarking.

The microbench harness (:mod:`repro.bench.ops`) times *each framework's
own lowering* of the common GNN operations, framework-independently —
the protocol of the op-level benchmarking literature (Magnifying Glass,
arXiv 2211.03021).  For the PyG-style pack that lowering is the
gather → message → scatter composition of :mod:`repro.pygx.message_passing`:
SpMM is **not** one fused kernel but an ``index_select`` materialising
per-edge source rows followed by a ``scatter_add`` — more launches and
more edge-level traffic than the DGL-style GSpMM, which is exactly the
gap the paper's Section IV-C attributes.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, index_rows, ops, scatter_sum


def spmm(edge_index: np.ndarray, x: Tensor, num_nodes: int) -> Tensor:
    """Sum-aggregate source features onto destinations, PyG-style.

    Two launches — a gather (``index_select``) that materialises the
    ``(E, D)`` message tensor, then a ``scatter_add`` reduction — versus
    the single fused GSpMM launch of :func:`repro.dglx.kernels.spmm`.
    """
    src, dst = edge_index[0], edge_index[1]
    messages = index_rows(x, src)
    return scatter_sum(messages, dst, num_nodes)


def reduce_rows(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Pool rows by an index vector (PyG's ``scatter`` pooling path)."""
    return scatter_sum(src, index, dim_size)


def sddmm(
    edge_index: np.ndarray, src_feat: Tensor, dst_feat: Tensor, op: str = "dot"
) -> Tensor:
    """Per-edge combination of endpoint features, PyG-style (unfused).

    Two ``index_select`` gathers materialise both ``(E, ...)`` endpoint
    tensors, then the combinator runs as its own elementwise kernel (plus a
    reduction for ``op="dot"``) — three to four launches and ``2 x E``
    rows of traffic, versus the single fused
    :func:`repro.dglx.kernels.sddmm` / :func:`repro.tensor.gsddmm` launch.
    """
    src, dst = edge_index[0], edge_index[1]
    u = index_rows(src_feat, src)
    v = index_rows(dst_feat, dst)
    if op == "dot":
        return ops.mul(u, v).sum(axis=-1)
    if op not in ("add", "sub", "mul", "div"):
        raise ValueError(f"sddmm supports add/sub/mul/div/dot, got {op!r}")
    return getattr(ops, op)(u, v)
