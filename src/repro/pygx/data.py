"""PyG-style data objects.

``Data`` keeps host-side (numpy) arrays like a PyG ``Data`` living on CPU;
``Batch`` is the device-resident collated form.  ``Batch.from_data_list``
implements PyG's *advanced mini-batching*: all graphs of a batch are merged
into one disconnected big graph by concatenating feature matrices and
offsetting edge indices — a fully vectorised operation with, as the PyG
paper puts it, no computational or memory overhead (quoted in Section IV-C
of the paper under study).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.device import current_device
from repro.graph import GraphSample
from repro.tensor import Tensor


class Data:
    """One graph on the host, PyG style."""

    def __init__(
        self,
        x: np.ndarray,
        edge_index: np.ndarray,
        y,
        pos: Optional[np.ndarray] = None,
    ) -> None:
        self.x = np.asarray(x, dtype=np.float32)
        self.edge_index = np.asarray(edge_index, dtype=np.int64)
        self.y = y
        self.pos = None if pos is None else np.asarray(pos, dtype=np.float32)

    @classmethod
    def from_sample(cls, sample: GraphSample) -> "Data":
        return cls(sample.x, sample.edge_index, sample.y, sample.pos)

    @property
    def num_nodes(self) -> int:
        return len(self.x)

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]


class Batch:
    """A batch of graphs merged into one big disconnected graph (device)."""

    def __init__(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        batch: np.ndarray,
        y: np.ndarray,
        num_graphs: int,
        pos: Optional[Tensor] = None,
    ) -> None:
        self.x = x
        self.edge_index = edge_index
        self.batch = batch
        self.y = y
        self.num_graphs = num_graphs
        self.pos = pos

    @property
    def num_nodes(self) -> int:
        return len(self.x)

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]

    @classmethod
    def from_data_list(cls, data_list: Sequence[Data]) -> "Batch":
        """Collate graphs PyG-style (vectorised concatenation + offsets)."""
        if not data_list:
            raise ValueError("cannot batch an empty list of graphs")
        device = current_device()
        costs = device.host_costs

        node_counts = np.array([d.num_nodes for d in data_list], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(node_counts)[:-1]])
        x = np.concatenate([d.x for d in data_list], axis=0)
        edge_index = np.concatenate(
            [d.edge_index + off for d, off in zip(data_list, offsets)], axis=1
        )
        batch_vec = np.repeat(np.arange(len(data_list)), node_counts)
        y = np.array([d.y for d in data_list])
        pos_arrays = [d.pos for d in data_list]
        pos = None
        if all(p is not None for p in pos_arrays):
            pos = np.concatenate(pos_arrays, axis=0)

        # Simulated CPU cost of the collation (see HostCostModel).
        nbytes = x.nbytes + edge_index.nbytes
        device.host(
            costs.pyg_batch_base
            + costs.pyg_batch_per_graph * len(data_list)
            + costs.batch_per_byte * nbytes
        )
        # Host-to-device copy of the collated arrays; index structures live
        # in device memory for the batch lifetime.
        device.transfer(nbytes)
        device.track(edge_index)
        device.track(batch_vec)
        return cls(
            x=Tensor(x),
            edge_index=edge_index,
            batch=batch_vec,
            y=y,
            num_graphs=len(data_list),
            pos=None if pos is None else Tensor(pos),
        )
