"""Edge softmax for the PyG-style framework.

Normalises per-edge scores over the incoming edges of each destination
node, composed from scatter/gather primitives exactly as
``torch_geometric.utils.softmax`` is: a max-reduce for stability, a gather,
an exp, a sum-reduce, a gather and a divide — six kernel launches.  The
DGL-style framework fuses this (see :mod:`repro.dglx.softmax`), one of the
op-count differences behind Fig. 3.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, exp, index_rows, ops, scatter_max, scatter_sum


def edge_softmax(scores: Tensor, dst: np.ndarray, num_nodes: int) -> Tensor:
    """Softmax of ``scores`` grouped by destination node.

    ``scores`` has shape ``(E, ...)`` (e.g. ``(E, H)`` for multi-head
    attention); groups are the incoming-edge sets of each node.
    """
    score_max = scatter_max(scores, dst, num_nodes)
    shifted = ops.sub(scores, index_rows(score_max, dst))
    exp_scores = exp(shifted)
    denom = scatter_sum(exp_scores, dst, num_nodes)
    denom = ops.clamp_min(index_rows(denom, dst), 1e-16)
    return ops.div(exp_scores, denom)
