"""GatedGCN under the PyG-style framework (``edge_feat: False``).

The anisotropic update of Eq. (4) with edge gates:

``h_i' = h_i + ReLU(BN(U h_i + (sum_j eta_ij * V h_j) / (sum_j eta_ij)))``
with ``eta_ij = sigmoid(A h_i + B h_j)``.

Crucially — and this is the paper's observation 3 in Section IV-A — the PyG
implementation keeps **no explicit edge feature state**: gates are computed
on the fly from node features and never written back through a fully
connected layer.  The DGL-style implementation does maintain and update
edge features (see :mod:`repro.dglx.models.gatedgcn`), which roughly
doubles its cost.
"""

from __future__ import annotations

import numpy as np

from repro.models import ModelConfig
from repro.nn import BatchNorm1d, Linear
from repro.pygx.message_passing import MessagePassing
from repro.pygx.models.base import PyGXNet
from repro.tensor import Tensor, index_rows, ops, relu, scatter_sum, sigmoid


class GatedGCNConv(MessagePassing):
    """One GatedGCN layer without explicit edge features."""

    def __init__(
        self, d_in: int, d_out: int, rng, residual: bool = True, activation: bool = True
    ) -> None:
        super().__init__(aggr="sum")
        self.activation = activation
        self.fc_u = Linear(d_in, d_out, rng=rng)
        self.fc_v = Linear(d_in, d_out, rng=rng)
        self.fc_a = Linear(d_in, d_out, rng=rng)
        self.fc_b = Linear(d_in, d_out, rng=rng)
        self.bn = BatchNorm1d(d_out)
        self.residual = residual and d_in == d_out

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        src, dst = edge_index[0], edge_index[1]
        uh = self.fc_u(x)
        vh = self.fc_v(x)
        ah = self.fc_a(x)
        bh = self.fc_b(x)
        gates = sigmoid(ops.add(index_rows(ah, dst), index_rows(bh, src)))  # (E, D)
        weighted = ops.mul(gates, index_rows(vh, src))
        numer = scatter_sum(weighted, dst, num_nodes)
        denom = ops.clamp_min(scatter_sum(gates, dst, num_nodes), 1e-6)
        h = ops.add(uh, ops.div(numer, denom))
        if not self.activation:  # final node-classification layer: raw logits
            return h
        h = relu(self.bn(h))
        if self.residual:
            h = ops.add(x, h)
        return h


class GatedGCNNet(PyGXNet):
    """Stack of :class:`GatedGCNConv` layers with residual connections."""

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        activation = not (last and config.task == "node")
        return GatedGCNConv(d_in, d_out, rng, activation=activation)
