"""GIN under the PyG-style framework (Eq. 3 of the paper).

``h' = ReLU(W · ReLU(BN(V · ((1 + eps) h + sum_j h_j))))`` with sum
aggregation via scatter and a learnable (or fixed) epsilon.
"""

from __future__ import annotations

import numpy as np

from repro.models import ModelConfig
from repro.nn import BatchNorm1d, Linear, Parameter
from repro.pygx.message_passing import MessagePassing
from repro.pygx.models.base import PyGXNet
from repro.tensor import Tensor, index_rows, ops, relu, scatter


class GINConv(MessagePassing):
    """One GIN layer: sum aggregation + 2-layer MLP with BatchNorm."""

    def __init__(
        self,
        d_in: int,
        d_out: int,
        rng,
        learn_eps: bool,
        activation: bool = True,
        neighbor_aggr: str = "sum",
    ) -> None:
        super().__init__(aggr=neighbor_aggr)
        self.fc_v = Linear(d_in, d_out, rng=rng)
        self.bn = BatchNorm1d(d_out)
        self.fc_w = Linear(d_out, d_out, rng=rng)
        self.learn_eps = learn_eps
        self.activation = activation
        if learn_eps:
            self.eps = Parameter(np.zeros(1, dtype=np.float32))
        else:
            self.eps = None

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        src, dst = edge_index[0], edge_index[1]
        agg = scatter(index_rows(x, src), dst, num_nodes, reduce=self.aggr)
        if self.eps is not None:
            scaled = ops.mul(x, ops.add(self.eps, Tensor(np.ones(1, np.float32))))
        else:
            scaled = x
        h = ops.add(scaled, agg)
        h = self.fc_v(h)
        h = relu(self.bn(h))
        h = self.fc_w(h)
        return relu(h) if self.activation else h


class GINNet(PyGXNet):
    """Stack of :class:`GINConv` layers."""

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        activation = not (last and config.task == "node")
        return GINConv(
            d_in,
            d_out,
            rng,
            learn_eps=config.learn_eps_gin,
            activation=activation,
            neighbor_aggr=config.neighbor_aggr_gin,
        )
