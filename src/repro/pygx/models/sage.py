"""GraphSAGE (mean-pool aggregator) under the PyG-style framework.

Eq. (2) of the paper: transform neighbours with a pooling FC + ReLU,
mean-aggregate, concatenate with the centre node, apply the layer weight,
then project the embedding onto the unit ball before the next layer.
"""

from __future__ import annotations

import numpy as np

from repro.models import ModelConfig
from repro.nn import Linear
from repro.nn.functional import l2_normalize
from repro.pygx.message_passing import MessagePassing
from repro.pygx.models.base import PyGXNet
from repro.tensor import Tensor, concat, index_rows, relu, scatter_max, scatter_mean


AGGREGATORS = ("mean", "mean_pool", "max_pool")


class SAGEConv(MessagePassing):
    """One GraphSAGE layer (aggregators: mean, mean_pool, max_pool)."""

    def __init__(
        self,
        d_in: int,
        d_out: int,
        rng,
        activation: bool = True,
        aggregator: str = "mean_pool",
    ) -> None:
        super().__init__(aggr="mean")
        if aggregator not in AGGREGATORS:
            raise ValueError(f"unknown aggregator {aggregator!r}; options: {AGGREGATORS}")
        self.aggregator = aggregator
        agg_dim = d_in if aggregator == "mean" else d_out
        self.fc_pool = None if aggregator == "mean" else Linear(d_in, d_out, rng=rng)
        self.fc = Linear(d_in + agg_dim, d_out, rng=rng)
        self.activation = activation

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        src, dst = edge_index[0], edge_index[1]
        if self.aggregator == "mean":
            agg = scatter_mean(index_rows(x, src), dst, num_nodes)
        else:
            pooled = relu(self.fc_pool(x))
            gathered = index_rows(pooled, src)
            if self.aggregator == "max_pool":
                agg = scatter_max(gathered, dst, num_nodes)
            else:
                agg = scatter_mean(gathered, dst, num_nodes)
        h = self.fc(concat([x, agg], axis=1))
        if not self.activation:  # final node-classification layer: raw logits
            return h
        return l2_normalize(relu(h))


class SAGENet(PyGXNet):
    """Stack of :class:`SAGEConv` layers."""

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        activation = not (last and config.task == "node")
        return SAGEConv(
            d_in, d_out, rng, activation=activation, aggregator=config.sage_aggregator
        )
