"""Common skeleton for the PyG-style model pack.

Every net is: input dropout (node task) -> ``conv1`` .. ``convL`` -> either
per-node logits (node classification, the last conv maps to classes) or a
mean-pool readout plus MLP classifier (graph classification, Section
IV-B.4).  Conv layers are registered as attributes ``conv1``..``convL`` so
profiler scopes line up with the paper's Fig. 3 labels.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.device import current_device
from repro.models import MLPReadout, ModelConfig
from repro.nn import Dropout, Module
from repro.pygx.data import Batch
from repro.pygx.pool import global_add_pool, global_max_pool, global_mean_pool
from repro.tensor import Tensor


class PyGXNet(Module):
    """Base class; subclasses implement :meth:`build_conv` and dims."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config
        rng = rng or np.random.default_rng()
        self.dropout = Dropout(config.dropout, rng=rng) if config.dropout else None
        self.conv_names: List[str] = []
        for i, (d_in, d_out) in enumerate(self.layer_dims(config)):
            name = f"conv{i + 1}"
            setattr(self, name, self.build_conv(i, d_in, d_out, config, rng))
            self.conv_names.append(name)
        if config.task == "graph":
            self.classifier = MLPReadout(config.out_dim, config.n_classes, rng=rng)

    # ------------------------------------------------------------------
    def layer_dims(self, config: ModelConfig) -> List[Tuple[int, int]]:
        """(in, out) feature widths per conv layer; subclasses may override."""
        dims: List[Tuple[int, int]] = []
        width_in = config.in_dim
        for i in range(config.n_layers):
            last = i == config.n_layers - 1
            width_out = config.out_dim if last else config.hidden
            dims.append((width_in, width_out))
            width_in = width_out
        return dims

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        raise NotImplementedError

    # ------------------------------------------------------------------
    def forward(self, batch: Batch) -> Tensor:
        x = batch.x
        # Sampled batches may carry the nodes' full-graph in-degrees so
        # degree-normalised convs can debias fanout truncation; convs that
        # understand them opt in via ``full_graph_norm_capable``.
        true_deg = getattr(batch, "true_in_degrees", None)
        for name in self.conv_names:
            if self.dropout is not None:
                x = self.dropout(x)
            conv = getattr(self, name)
            if true_deg is not None and getattr(conv, "full_graph_norm_capable", False):
                x = conv(x, batch.edge_index, batch.num_nodes,
                         true_in_degrees=true_deg)
            else:
                x = conv(x, batch.edge_index, batch.num_nodes)
        if self.config.task == "node":
            return x
        with current_device().scope("pooling"):
            hg = self._readout(x, batch)
        return self.classifier(hg)

    def _readout(self, x: Tensor, batch: Batch) -> Tensor:
        """Graph readout per ``config.readout`` (Table II/III: mean)."""
        readout = self.config.readout
        if readout == "mean":
            return global_mean_pool(x, batch.batch, batch.num_graphs)
        if readout == "sum":
            return global_add_pool(x, batch.batch, batch.num_graphs)
        if readout == "max":
            return global_max_pool(x, batch.batch, batch.num_graphs)
        raise ValueError(f"unknown readout {readout!r}")
