"""The six paper models implemented PyG-style."""

from typing import Optional

import numpy as np

from repro.models import ModelConfig
from repro.pygx.models.base import PyGXNet
from repro.pygx.models.gat import GATConv, GATNet
from repro.pygx.models.gatedgcn import GatedGCNConv, GatedGCNNet
from repro.pygx.models.gcn import GCNConv, GCNNet
from repro.pygx.models.gin import GINConv, GINNet
from repro.pygx.models.monet import GMMConv, MoNetNet
from repro.pygx.models.sage import SAGEConv, SAGENet

_NETS = {
    "gcn": GCNNet,
    "gin": GINNet,
    "sage": SAGENet,
    "gat": GATNet,
    "monet": MoNetNet,
    "gatedgcn": GatedGCNNet,
}


def build_model(config: ModelConfig, rng: Optional[np.random.Generator] = None) -> PyGXNet:
    """Instantiate the PyG-style net for ``config.model``."""
    try:
        net_cls = _NETS[config.model]
    except KeyError:
        raise KeyError(f"unknown model {config.model!r}; options: {sorted(_NETS)}") from None
    return net_cls(config, rng)


__all__ = [
    "build_model",
    "PyGXNet",
    "GCNNet",
    "GCNConv",
    "GINNet",
    "GINConv",
    "SAGENet",
    "SAGEConv",
    "GATNet",
    "GATConv",
    "MoNetNet",
    "GMMConv",
    "GatedGCNNet",
    "GatedGCNConv",
]
