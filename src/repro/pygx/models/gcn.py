"""GCN under the PyG-style framework.

Implements Eq. (1) of the paper with PyG's ``GCNConv`` lowering: add self
loops, compute the symmetric degree normalisation per edge with a handful of
small kernels, apply the weight first (features shrink before the gather),
then gather -> weighted message -> scatter-sum.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models import ModelConfig
from repro.nn import Linear
from repro.pygx.models.base import PyGXNet
from repro.pygx.message_passing import MessagePassing
from repro.tensor import Tensor, index_rows, ops, relu, scatter_sum


class GCNConv(MessagePassing):
    """One PyG-style GCN layer with symmetric normalisation."""

    #: Signals ``PyGXNet.forward`` that this conv accepts the optional
    #: ``true_in_degrees`` of a sampled batch (full-graph normalisation).
    full_graph_norm_capable = True

    def __init__(self, d_in: int, d_out: int, rng, activation: bool = True) -> None:
        super().__init__(aggr="sum")
        self.linear = Linear(d_in, d_out, rng=rng)
        self.activation = activation

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
        true_in_degrees: Optional[np.ndarray] = None,
    ) -> Tensor:
        loops = np.arange(num_nodes, dtype=np.int64)
        src = np.concatenate([edge_index[0], loops])
        dst = np.concatenate([edge_index[1], loops])
        deg = Tensor(np.bincount(dst, minlength=num_nodes).astype(np.float32))
        if true_in_degrees is not None:
            # Sampled subgraph with full-graph degrees: Horvitz-Thompson
            # estimate of the full-graph layer — source side normalised by
            # the *true* degree, destination side rescaled by true/sampled
            # so the truncated sum is unbiased for the full aggregation.
            # Identical to the plain path when the graph is complete, so
            # the trained weights serve unchanged at full-graph inference.
            n = Tensor((true_in_degrees + 1).astype(np.float32))
            inv_sqrt_n = ops.pow_scalar(n, -0.5)
            scale = ops.div(ops.pow_scalar(n, 0.5), ops.clamp_min(deg, 1.0))
            norm = ops.mul(index_rows(inv_sqrt_n, src), index_rows(scale, dst))
        else:
            inv_sqrt = ops.pow_scalar(ops.clamp_min(deg, 1.0), -0.5)
            norm = ops.mul(index_rows(inv_sqrt, src), index_rows(inv_sqrt, dst))

        h = self.linear(x)
        h_j = index_rows(h, src)
        messages = ops.mul(h_j, norm.reshape(-1, 1))
        out = scatter_sum(messages, dst, num_nodes)
        return relu(out) if self.activation else out


class GCNNet(PyGXNet):
    """Stack of :class:`GCNConv` layers (Table II/III shapes)."""

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        # The final layer of a node classifier emits raw class logits.
        activation = not (last and config.task == "node")
        return GCNConv(d_in, d_out, rng, activation=activation)
