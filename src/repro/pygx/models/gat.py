"""GAT under the PyG-style framework.

Multi-head attention with the additive mechanism of Velickovic et al.:
``e_ij = LeakyReLU(a_src . z_i + a_dst . z_j)`` normalised with an edge
softmax composed from scatter primitives (see :mod:`repro.pygx.softmax`),
then attention-weighted scatter-sum aggregation.  Heads are concatenated,
except in the final node-classification layer which uses one head emitting
class logits (the original GAT design).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.device import current_device
from repro.models import ModelConfig
from repro.nn import Linear, Parameter
from repro.pygx.message_passing import MessagePassing
from repro.pygx.models.base import PyGXNet
from repro.pygx.softmax import edge_softmax
from repro.tensor import (
    CSRGraph,
    Tensor,
    elu,
    gsddmm,
    gspmm,
    index_rows,
    leaky_relu,
    ops,
    scatter_sum,
)
from repro.tensor import edge_softmax as edge_softmax_csr
from repro.tensor.creation import randn


class GATConv(MessagePassing):
    """One multi-head GAT layer; output width is ``heads * head_dim``.

    ``fused=True`` lowers the attention pipeline through the generalized
    sparse kernels (GSDDMM logits → fused edge softmax → GSpMM aggregate)
    the way PyG does when handed a sparse adjacency — trading the per-layer
    COO→CSR conversion for far fewer edge-level launches.  The default is
    the paper's unfused gather/scatter composition.
    """

    def __init__(
        self,
        d_in: int,
        head_dim: int,
        heads: int,
        rng,
        concat_heads: bool = True,
        fused: bool = False,
    ) -> None:
        super().__init__(aggr="sum")
        self.heads = heads
        self.head_dim = head_dim
        self.concat_heads = concat_heads
        self.fused = fused
        self.fc = Linear(d_in, heads * head_dim, bias=False, rng=rng)
        self.attn_src = Parameter(randn((1, heads, head_dim), rng=rng, std=0.1))
        self.attn_dst = Parameter(randn((1, heads, head_dim), rng=rng, std=0.1))

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        src, dst = edge_index[0], edge_index[1]
        z = self.fc(x).reshape(num_nodes, self.heads, self.head_dim)
        # Node-level attention halves, gathered per edge and added.
        alpha_src = ops.mul(z, self.attn_src).sum(axis=-1)  # (N, H)
        alpha_dst = ops.mul(z, self.attn_dst).sum(axis=-1)
        if self.fused:
            return self._forward_fused(z, alpha_src, alpha_dst, edge_index, num_nodes)
        logits = leaky_relu(
            ops.add(index_rows(alpha_src, src), index_rows(alpha_dst, dst)),
            negative_slope=0.2,
        )
        attention = edge_softmax(logits, dst, num_nodes)  # (E, H)
        z_j = index_rows(z, src)  # (E, H, D)
        messages = ops.mul(z_j, attention.reshape(len(src), self.heads, 1))
        out = scatter_sum(messages, dst, num_nodes)  # (N, H, D)
        return self._finish(out, num_nodes)

    def _forward_fused(
        self,
        z: Tensor,
        alpha_src: Tensor,
        alpha_dst: Tensor,
        edge_index: np.ndarray,
        num_nodes: int,
    ) -> Tensor:
        # Sparse conversion is a real kernel (PyG's SparseTensor build).
        current_device().launch(
            "coo_to_csr",
            flops=float(edge_index.shape[1]),
            bytes_moved=16.0 * edge_index.shape[1],
        )
        graph = CSRGraph.from_edge_index(
            edge_index[0], edge_index[1], num_nodes, num_nodes
        )
        logits = leaky_relu(
            gsddmm(graph, "add", alpha_src, alpha_dst), negative_slope=0.2
        )
        attention = edge_softmax_csr(graph, logits)  # (E, H)
        out = gspmm(
            graph, z, attention.reshape(graph.num_edges, self.heads, 1)
        )  # (N, H, D)
        return self._finish(out, num_nodes)

    def _finish(self, out: Tensor, num_nodes: int) -> Tensor:
        if self.concat_heads:
            return elu(out.reshape(num_nodes, self.heads * self.head_dim))
        return out.mean(axis=1)  # average heads: final layer logits


class GATNet(PyGXNet):
    """Stack of :class:`GATConv` layers (Table II/III head layout)."""

    def layer_dims(self, config: ModelConfig) -> List[Tuple[int, int]]:
        dims: List[Tuple[int, int]] = []
        width_in = config.in_dim
        for i in range(config.n_layers):
            last = i == config.n_layers - 1
            if config.task == "node":
                # hidden is the total width; the final layer is single-head.
                width_out = config.n_classes if last else config.hidden
            else:
                # hidden is per-head width; heads concatenate to out_dim.
                width_out = config.out_dim if last else config.hidden * config.n_heads
            dims.append((width_in, width_out))
            width_in = width_out
        return dims

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        if config.task == "node" and last:
            return GATConv(d_in, d_out, heads=1, rng=rng, concat_heads=False)
        heads = config.n_heads
        head_dim = max(d_out // heads, 1)
        return GATConv(d_in, head_dim, heads, rng=rng)
