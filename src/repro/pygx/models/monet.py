"""MoNet (Gaussian Mixture Model conv) under the PyG-style framework.

Degree-based pseudo-coordinates ``u_ij = (deg_i^-1/2, deg_j^-1/2)`` are
projected through a small FC + tanh, then scored against ``K`` learnable
Gaussian kernels; each kernel weights a separate linear transform of the
source features before scatter-sum aggregation (the Dwivedi et al. setup
the paper follows: K=2 kernels, pseudo dim 2).
"""

from __future__ import annotations

import numpy as np

from repro.models import ModelConfig
from repro.nn import Linear, Parameter
from repro.pygx.message_passing import MessagePassing
from repro.pygx.models.base import PyGXNet
from repro.tensor import Tensor, exp, index_rows, ops, relu, scatter_sum, tanh
from repro.tensor.creation import randn


class GMMConv(MessagePassing):
    """One MoNet layer with ``K`` Gaussian kernels over pseudo-coordinates."""

    def __init__(
        self,
        d_in: int,
        d_out: int,
        kernels: int,
        pseudo_dim: int,
        rng,
        activation: bool = True,
    ) -> None:
        super().__init__(aggr="sum")
        self.kernels = kernels
        self.pseudo_dim = pseudo_dim
        self.d_out = d_out
        self.activation = activation
        self.fc = Linear(d_in, kernels * d_out, bias=False, rng=rng)
        self.fc_pseudo = Linear(2, pseudo_dim, rng=rng)
        self.mu = Parameter(randn((kernels, pseudo_dim), rng=rng, std=0.1))
        self.inv_sigma = Parameter(np.ones((kernels, pseudo_dim), dtype=np.float32))

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        src, dst = edge_index[0], edge_index[1]
        deg = Tensor(np.bincount(dst, minlength=num_nodes).astype(np.float32))
        inv_sqrt = ops.pow_scalar(ops.clamp_min(deg, 1.0), -0.5)
        pseudo = ops.concat(
            [
                index_rows(inv_sqrt, dst).reshape(-1, 1),
                index_rows(inv_sqrt, src).reshape(-1, 1),
            ],
            axis=1,
        )
        pseudo = tanh(self.fc_pseudo(pseudo))  # (E, pseudo_dim)

        # Gaussian kernel weights: (E, K)
        diff = ops.sub(pseudo.reshape(-1, 1, self.pseudo_dim), self.mu)
        scaled = ops.mul(diff, self.inv_sigma)
        weights = exp(ops.mul(ops.mul(scaled, scaled).sum(axis=-1), Tensor(np.float32(-0.5))))

        h = self.fc(x).reshape(num_nodes, self.kernels, self.d_out)
        h_j = index_rows(h, src)  # (E, K, D)
        messages = ops.mul(h_j, weights.reshape(-1, self.kernels, 1))
        out = scatter_sum(messages, dst, num_nodes).mean(axis=1)  # (N, D)
        return relu(out) if self.activation else out


class MoNetNet(PyGXNet):
    """Stack of :class:`GMMConv` layers."""

    def build_conv(self, index: int, d_in: int, d_out: int, config: ModelConfig, rng):
        last = index == config.n_layers - 1
        activation = not (last and config.task == "node")
        return GMMConv(
            d_in, d_out, config.kernels, config.pseudo_dim, rng, activation=activation
        )
