"""PyG-style GNN framework: COO data model, scatter-based message passing.

Architectural traits mirrored from PyTorch Geometric (and contrasted with
:mod:`repro.dglx` throughout the paper):

* vectorised "advanced mini-batching" (:class:`repro.pygx.data.Batch`);
* gather -> message -> scatter message passing (unfused, dense primitives);
* pooling built on the scatter API;
* edge softmax composed from scatter/gather launches.
"""

from repro.pygx import kernels, models
from repro.pygx.cached_loader import CachedDataLoader
from repro.pygx.data import Batch, Data
from repro.pygx.loader import DataLoader
from repro.pygx.message_passing import MessagePassing
from repro.pygx.models import build_model
from repro.pygx.neighbor_loader import NeighborBatch, NeighborLoader
from repro.pygx.prefetch import PrefetchDataLoader
from repro.pygx.pool import global_add_pool, global_max_pool, global_mean_pool
from repro.pygx.softmax import edge_softmax

__all__ = [
    "Data",
    "Batch",
    "DataLoader",
    "CachedDataLoader",
    "PrefetchDataLoader",
    "NeighborLoader",
    "NeighborBatch",
    "MessagePassing",
    "build_model",
    "models",
    "global_mean_pool",
    "global_add_pool",
    "global_max_pool",
    "edge_softmax",
    "kernels",
]
