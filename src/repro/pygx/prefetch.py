"""Pipelined prefetching wrapper for the PyG-style :class:`DataLoader`.

PyTorch's real ``DataLoader(num_workers>0, pin_memory=True)`` collates the
next batch in worker processes and copies it with ``cudaMemcpyAsync`` while
the current batch trains; this wrapper reproduces that pipeline on the
simulated clock via :class:`repro.device.prefetch.PrefetchLoader`.  Batches
and their numerics are identical to iterating the wrapped loader directly —
only where the collation/transfer time *lands* changes.
"""

from __future__ import annotations

from repro.device.prefetch import PrefetchLoader
from repro.pygx.loader import DataLoader


class PrefetchDataLoader(PrefetchLoader):
    """A :class:`~repro.pygx.loader.DataLoader` with pipelined collation.

    Wraps an already-constructed loader so all batching knobs (batch size,
    shuffle rng, ``drop_last``) stay in one place::

        loader = PrefetchDataLoader(DataLoader(graphs, batch_size=16))
    """

    def __init__(self, inner: DataLoader, depth: int = 2) -> None:
        super().__init__(inner, depth=depth)
