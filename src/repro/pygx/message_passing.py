"""PyG-style message passing base class.

The gather -> message -> scatter pipeline: per-edge source (and optionally
destination) features are *materialised* with gather kernels, transformed by
``message``, and aggregated with a scatter kernel.  This is the unfused
counterpart of DGL's GSpMM (see :mod:`repro.tensor.ops_sparse`) — more
kernel launches and more edge-level memory traffic, but each step is a
highly tuned dense primitive, which is the trade PyG makes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import Module
from repro.tensor import Tensor, index_rows, scatter


class MessagePassing(Module):
    """Base class: subclasses override :meth:`message` (and call propagate)."""

    def __init__(self, aggr: str = "sum") -> None:
        super().__init__()
        if aggr not in ("sum", "mean", "max"):
            raise ValueError(f"unsupported aggregation {aggr!r}")
        self.aggr = aggr

    def propagate(
        self,
        edge_index: np.ndarray,
        x: Tensor,
        num_nodes: Optional[int] = None,
        **edge_kwargs,
    ) -> Tensor:
        """Run one round of message passing over ``edge_index``.

        ``edge_kwargs`` are per-edge tensors forwarded to :meth:`message`
        (e.g. attention coefficients or Gaussian kernel weights).
        """
        src, dst = edge_index[0], edge_index[1]
        num_nodes = num_nodes if num_nodes is not None else len(x)
        x_j = index_rows(x, src)  # gather kernel: source features per edge
        x_i = index_rows(x, dst) if self.needs_destination() else None
        messages = self.message(x_j, x_i, **edge_kwargs)
        return scatter(messages, dst, num_nodes, reduce=self.aggr)

    def needs_destination(self) -> bool:
        """Whether :meth:`message` uses destination features (x_i)."""
        return False

    def message(self, x_j: Tensor, x_i: Optional[Tensor], **kwargs) -> Tensor:
        """Compute per-edge messages; default copies source features."""
        return x_j
