"""Reproduction of "Performance Analysis of Graph Neural Network Frameworks"
(Wu, Sun, Sun & Sun, ISPASS 2021).

The package implements, from scratch in numpy, everything the study needs:

* :mod:`repro.tensor` / :mod:`repro.nn` / :mod:`repro.optim` — a PyTorch-like
  autograd engine whose every operation reports a kernel to a simulated GPU;
* :mod:`repro.device` — the simulated 2080Ti: roofline cost model, clock,
  memory pool, profiler, DataParallel model;
* :mod:`repro.pygx` — a PyTorch-Geometric-style GNN framework;
* :mod:`repro.dglx` — a Deep-Graph-Library-style GNN framework;
* :mod:`repro.datasets` — synthetic stand-ins for Cora, PubMed, ENZYMES, DD
  and MNIST-superpixels matching Table I statistics;
* :mod:`repro.models` — the shared hyper-parameter tables (II/III);
* :mod:`repro.train` — the paper's training protocols;
* :mod:`repro.bench` — runners regenerating every table and figure.

See DESIGN.md for the substitution rationale and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
