"""Weight initialisation schemes.

The paper keeps initialisation identical across frameworks (Section III-C);
both model packs here therefore share these functions.  All take an explicit
``numpy.random.Generator`` for reproducibility.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def glorot_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_in, fan_out) matrix."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def kaiming_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation (PyTorch's Linear default)."""
    fan_in = shape[0]
    limit = math.sqrt(1.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
