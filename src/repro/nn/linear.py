"""Fully connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W + b`` with weight shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((in_features, out_features), rng))
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(init.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )
