"""Activation layers (module forms of the functional ops)."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor, ops


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return ops.leaky_relu(x, self.negative_slope)


class ELU(Module):
    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return ops.elu(x, self.alpha)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)
