"""Dropout layer with module-controlled RNG."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor.ops import dropout


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.p, training=self.training, rng=self.rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
