"""Module system: parameter registration, train/eval mode, profiler scopes.

Mirrors ``torch.nn.Module`` in the ways the reproduction needs:

* attribute assignment auto-registers :class:`Parameter` and sub-``Module``
  objects, so ``parameters()`` walks the whole tree;
* ``__call__`` wraps ``forward`` in a device profiler *scope* named after the
  attribute the module was assigned to.  That is what lets the Fig. 3 bench
  attribute kernel time to ``conv1`` .. ``conv4`` without any model-side
  instrumentation, the way nvprof attributes kernels to NVTX ranges.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.device import current_device
from repro.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable module parameter."""

    def __init__(self, data, requires_grad: bool = True) -> None:
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_scope_name", None)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
            if value._scope_name is None:
                object.__setattr__(value, "_scope_name", name)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, array: np.ndarray) -> None:
        """Register a non-learnable state array (e.g. BN running stats)."""
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    # ------------------------------------------------------------------
    # mode and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def num_parameters(self) -> int:
        """Total number of learnable scalars."""
        return sum(p.size for p in self.parameters())

    def param_bytes(self) -> int:
        """Total parameter size in bytes (used by the DataParallel model)."""
        return sum(p.nbytes for p in self.parameters())

    # ------------------------------------------------------------------
    # state dict (checkpointing and DataParallel replica sync)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            own[name] = param.data
        for name, buf in self.named_buffers():
            own[name] = buf
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, array in state.items():
            target = own[name]
            if target.shape != array.shape:
                raise ValueError(f"shape mismatch for {name}: {target.shape} vs {array.shape}")
            target[...] = array

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        scope = self._scope_name or type(self).__name__
        with current_device().scope(scope):
            return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"
