"""Neural-network modules built on the tensor engine."""

from repro.nn import functional, init
from repro.nn.activation import ELU, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.container import ModuleList, Sequential
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.loss import accuracy, cross_entropy
from repro.nn.module import Module, Parameter
from repro.nn.normalization import BatchNorm1d

__all__ = [
    "functional",
    "init",
    "Module",
    "Parameter",
    "Linear",
    "BatchNorm1d",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "ModuleList",
    "cross_entropy",
    "accuracy",
]
