"""Module containers: Sequential and ModuleList."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.nn.module import Module
from repro.tensor import Tensor


class Sequential(Module):
    """Run sub-modules in order, feeding each the previous output."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = str(i)
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])


class ModuleList(Module):
    """A list of sub-modules that registers each for parameter traversal."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container; call its items instead")
