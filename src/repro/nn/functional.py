"""Composite functional helpers built from primitive kernels.

These deliberately *compose* primitives rather than fuse them: the paper
calls out, e.g., that GCN's feature normalisation costs more kernel time
than the aggregation itself, which is only observable if normalisation
really launches several small kernels.
"""

from __future__ import annotations

from repro.tensor import Tensor, ops


def l2_normalize(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Project rows onto the unit ball (GraphSAGE, Eq. 2 postprocessing)."""
    squared = ops.mul(x, x)
    norm = ops.sqrt(squared.sum(axis=-1, keepdims=True))
    return ops.div(x, ops.clamp_min(norm, eps))


def degree_normalize(x: Tensor, degrees: Tensor) -> Tensor:
    """Scale rows by ``1/sqrt(deg)`` (the symmetric GCN normalisation)."""
    inv_sqrt = ops.pow_scalar(ops.clamp_min(degrees, 1.0), -0.5)
    return ops.mul(x, inv_sqrt)
