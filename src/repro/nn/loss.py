"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.device import current_device
from repro.tensor import Tensor, log_softmax
from repro.tensor.ops_nn import nll_loss


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross entropy between ``(N, C)`` logits and integer targets.

    Composed of a ``log_softmax`` kernel and an ``nll_loss`` kernel, matching
    PyTorch's ``F.cross_entropy`` lowering.
    """
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the target."""
    targets = np.asarray(targets)
    if len(targets) == 0:
        return 0.0
    device = current_device()
    device.host(device.host_costs.metric_per_sample * len(targets))
    pred = logits.data.argmax(axis=-1)
    return float((pred == targets).mean())
