"""Normalisation layers."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor.ops_nn import batch_norm


class BatchNorm1d(Module):
    """Batch normalisation over a 2-D ``(N, F)`` input.

    Used by GIN (Eq. 3) and GatedGCN in both frameworks.  Running statistics
    follow PyTorch's semantics: biased batch variance normalises the batch,
    unbiased variance updates the running buffer.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones(num_features))
        self.beta = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", init.zeros(num_features))
        self.register_buffer("running_var", init.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features})"
