"""Per-replica data sharding shared by both framework packs' loaders.

Distributed data parallelism needs each replica to see a disjoint,
equal-sized slice of every epoch's (possibly shuffled) sample order.  Both
loaders implement it the same way: draw the full permutation as usual,
truncate it to the largest multiple of ``world_size`` (drop-remainder, so
shards stay equal and optimizer steps stay in lockstep), and stride it by
rank::

    shard(rank) = order[: (n // world) * world][rank :: world]

Determinism: given identically seeded loader RNGs on every replica, all
replicas draw the *same* permutation, so the strided shards are disjoint
and cover the truncated epoch exactly once.
"""

from __future__ import annotations

import numpy as np


def check_shard(n: int, batch_size: int, drop_last: bool,
                rank: int, world_size: int) -> int:
    """Validate sharding arguments against ``n`` samples; returns shard size.

    Raises ``ValueError`` eagerly at loader construction — mirroring the
    existing ``drop_last`` zero-batch error — when the shard would be
    empty or when ``drop_last`` would drop every batch of the shard.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if not 0 <= rank < world_size:
        raise ValueError(f"rank must be in [0, {world_size - 1}], got {rank}")
    shard_len = n // world_size
    if shard_len == 0 and world_size > 1:
        # An unsharded loader over zero graphs stays legal (it yields
        # nothing); an *empty shard* under data parallelism means the
        # replica would silently sit out every step — error eagerly.
        raise ValueError(
            f"world_size={world_size} would yield an empty shard "
            f"over {n} graphs"
        )
    if drop_last and shard_len < batch_size:
        raise ValueError(
            f"drop_last=True with batch_size={batch_size} would yield zero "
            f"batches over {shard_len} graphs"
        )
    return shard_len


def shard_order(order: np.ndarray, rank: int, world_size: int) -> np.ndarray:
    """Rank's slice of a sample order (drop-remainder, stride-by-rank)."""
    if world_size == 1:
        return order
    n_even = (len(order) // world_size) * world_size
    return order[:n_even][rank::world_size]
