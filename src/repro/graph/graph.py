"""Framework-neutral graph sample.

Both framework front-ends (:mod:`repro.pygx` and :mod:`repro.dglx`) consume
:class:`GraphSample` objects produced by the dataset generators and convert
them to their own internal representations — exactly the role the on-disk
datasets play for PyG and DGL.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.integer, np.random.Generator, None]


def as_generator(rng: RngLike) -> np.random.Generator:
    """Coerce an ``int`` seed (or ``None``) into a ``numpy`` ``Generator``.

    Loaders and the serving simulator accept either form; passing the same
    seed twice gives two independent generators in the same state, which is
    what reproducible shuffling/arrival traces need.
    """
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    return rng or np.random.default_rng()


class GraphSample:
    """One graph: COO edges, node features, a label, optional coordinates.

    Attributes:
        edge_index: ``(2, E)`` int64 array of directed edges ``src -> dst``.
            Undirected graphs store both directions.
        x: ``(N, F)`` float32 node feature matrix.
        y: graph-level label (int) for graph classification, or ``(N,)``
            int64 node labels for node classification.
        pos: optional ``(N, 2)`` float32 node coordinates (superpixels).
    """

    def __init__(
        self,
        edge_index: np.ndarray,
        x: np.ndarray,
        y,
        pos: Optional[np.ndarray] = None,
    ) -> None:
        edge_index = np.asarray(edge_index, dtype=np.int64)
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            raise ValueError(f"edge_index must be (2, E), got {edge_index.shape}")
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError(f"x must be (N, F), got {x.shape}")
        if edge_index.size and edge_index.max() >= len(x):
            raise ValueError("edge_index refers to nodes beyond len(x)")
        if edge_index.size and edge_index.min() < 0:
            raise ValueError("edge_index contains negative node ids")
        self.edge_index = edge_index
        self.x = x
        self.y = y
        self.pos = None if pos is None else np.asarray(pos, dtype=np.float32)
        if self.pos is not None and len(self.pos) != len(x):
            raise ValueError("pos must have one row per node")

    @property
    def num_nodes(self) -> int:
        return len(self.x)

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node."""
        return np.bincount(self.edge_index[1], minlength=self.num_nodes)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        return np.bincount(self.edge_index[0], minlength=self.num_nodes)

    def with_self_loops(self) -> "GraphSample":
        """Return a copy with one self loop added to every node."""
        loops = np.arange(self.num_nodes, dtype=np.int64)
        edge_index = np.concatenate(
            [self.edge_index, np.stack([loops, loops])], axis=1
        )
        return GraphSample(edge_index, self.x, self.y, self.pos)

    def __repr__(self) -> str:
        return (
            f"GraphSample(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"features={self.num_features})"
        )


def undirected_edge_index(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Stack both directions of an undirected edge list into ``(2, 2E)``."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    return np.stack(
        [np.concatenate([src, dst]), np.concatenate([dst, src])]
    )


def dedupe_edges(src: np.ndarray, dst: np.ndarray, num_nodes: int):
    """Remove duplicate and self-loop undirected edges; returns (src, dst)."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keep = lo != hi
    keys = lo[keep] * num_nodes + hi[keep]
    _, unique_idx = np.unique(keys, return_index=True)
    return lo[keep][unique_idx], hi[keep][unique_idx]
