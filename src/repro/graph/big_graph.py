"""Host-resident CSR graph container for million-node graphs.

``CSRBigGraph`` stores adjacency in destination-major CSR form — the
in-neighbours of node ``v`` are ``indices[indptr[v]:indptr[v+1]]`` — plus
optional node features and labels.  Everything lives in host memory as
plain numpy; no dense ``(N, N)`` intermediate is ever built, so a
million-node graph with tens of millions of edges costs a few hundred MB.
The scale subsystem (:mod:`repro.scale`) samples, partitions and trains
from this structure; only sampled sub-batches or single partitions are
ever transferred to the simulated device.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class CSRBigGraph:
    """Destination-major CSR adjacency with optional features/labels.

    Parameters
    ----------
    indptr : (num_nodes + 1,) int64 row pointers over destination nodes.
    indices : (num_edges,) int64 source-node ids, grouped by destination.
    x : optional (num_nodes, num_features) float32 node features.
    y : optional (num_nodes,) int64 node labels.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or len(indptr) < 1:
            raise ValueError("indptr must be a 1-D array of length num_nodes + 1")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at num_edges")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("indices reference nodes outside [0, num_nodes)")
        if x is not None:
            x = np.ascontiguousarray(x, dtype=np.float32)
            if x.ndim != 2 or len(x) != n:
                raise ValueError("x must be (num_nodes, num_features)")
        if y is not None:
            y = np.ascontiguousarray(y, dtype=np.int64)
            if y.shape != (n,):
                raise ValueError("y must be (num_nodes,)")
        self.indptr = indptr
        self.indices = indices
        self.x = x
        self.y = y

    # -- construction ---------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        symmetrize: bool = True,
    ) -> "CSRBigGraph":
        """Build from a directed COO edge list via a stable counting sort.

        With ``symmetrize=True`` every edge is mirrored (and the union
        deduplicated) so message passing sees an undirected graph, which is
        what the citation-style node-classification tasks assume.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if symmetrize and len(src):
            s = np.concatenate([src, dst])
            d = np.concatenate([dst, src])
            keys = s * num_nodes + d
            keep = np.unique(keys, return_index=True)[1]
            src, dst = s[keep], d[keep]
        order = np.argsort(dst, kind="stable")
        indices = src[order]
        counts = np.bincount(dst, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, indices, x=x, y=y)

    # -- shape ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @property
    def num_features(self) -> int:
        return 0 if self.x is None else self.x.shape[1]

    # -- structure ------------------------------------------------------

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.indices, minlength=self.num_nodes)

    def in_neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def edge_index(self) -> np.ndarray:
        """Materialise the ``(2, E)`` COO edge index (src row 0, dst row 1).

        This is ``O(E)`` memory — fine for smoke-scale graphs and the
        full-graph parity baselines, but deliberately *not* used on the
        million-node path.
        """
        dst = np.repeat(np.arange(self.num_nodes, dtype=np.int64),
                        np.diff(self.indptr))
        return np.stack([self.indices, dst])

    def nbytes(self) -> int:
        """Host bytes held by structure plus features/labels."""
        total = self.indptr.nbytes + self.indices.nbytes
        if self.x is not None:
            total += self.x.nbytes
        if self.y is not None:
            total += self.y.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CSRBigGraph(num_nodes={self.num_nodes}, "
                f"num_edges={self.num_edges}, "
                f"num_features={self.num_features})")


def gather_rows(x: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Contiguous float32 feature rows for ``nodes`` (host-side gather)."""
    return np.ascontiguousarray(x[nodes], dtype=np.float32)


def compact_edges(
    src_global: np.ndarray, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Relabel ``src_global`` into positions within ``nodes``.

    ``nodes`` need not be sorted; returns the local ids plus the sorter
    used (handy when callers relabel several arrays against one node set).
    Every entry of ``src_global`` must be present in ``nodes``.
    """
    sorter = np.argsort(nodes, kind="stable")
    pos = np.searchsorted(nodes, src_global, sorter=sorter)
    return sorter[pos].astype(np.int64), sorter
