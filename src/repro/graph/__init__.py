"""Framework-neutral graph containers and random structure generators."""

from repro.graph.generators import (
    clique_motif,
    connected_chain_backbone,
    knn_edges,
    planted_partition,
    random_regularish,
    ring_motif,
    star_motif,
)
from repro.graph.graph import GraphSample, as_generator, dedupe_edges, undirected_edge_index

__all__ = [
    "GraphSample",
    "as_generator",
    "undirected_edge_index",
    "dedupe_edges",
    "planted_partition",
    "random_regularish",
    "connected_chain_backbone",
    "ring_motif",
    "clique_motif",
    "star_motif",
    "knn_edges",
]
