"""Framework-neutral graph containers and random structure generators."""

from repro.graph.big_graph import CSRBigGraph, compact_edges, gather_rows
from repro.graph.generators import (
    chung_lu_edges,
    clique_motif,
    connected_chain_backbone,
    knn_edges,
    planted_partition,
    random_regularish,
    ring_motif,
    rmat_edges,
    star_motif,
)
from repro.graph.graph import GraphSample, as_generator, dedupe_edges, undirected_edge_index
from repro.graph.sharding import check_shard, shard_order

__all__ = [
    "GraphSample",
    "CSRBigGraph",
    "as_generator",
    "check_shard",
    "shard_order",
    "undirected_edge_index",
    "dedupe_edges",
    "compact_edges",
    "gather_rows",
    "planted_partition",
    "random_regularish",
    "rmat_edges",
    "chung_lu_edges",
    "connected_chain_backbone",
    "ring_motif",
    "clique_motif",
    "star_motif",
    "knn_edges",
]
