"""Random graph structure generators used by the synthetic datasets.

Each generator returns an undirected edge list ``(src, dst)`` with
``src < dst`` per edge and no duplicates; callers expand to both directions
with :func:`repro.graph.graph.undirected_edge_index`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.graph import dedupe_edges

_EMPTY = np.empty(0, dtype=np.int64)


def planted_partition(
    labels: np.ndarray,
    n_edges: int,
    intra_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Community graph: ``intra_fraction`` of edges stay within a class.

    Used for the synthetic citation networks — real Cora/PubMed are strongly
    homophilous, which is what lets GNN message passing help classification.

    The intra-class endpoints are drawn with one grouped ``rng.choice`` per
    class over argsort-grouped slots rather than a boolean mask per class,
    which keeps the cost at ``O(n log n)`` instead of ``O(classes * n)``
    while consuming the RNG stream in exactly the same order as the
    historical per-class-mask loop (seeded outputs are identical).
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError("intra_fraction must be in [0, 1]")
    labels = np.asarray(labels)
    n = len(labels)
    if n == 0 or n_edges <= 0:
        return _EMPTY, _EMPTY
    n_intra = int(n_edges * intra_fraction)
    by_class = [np.flatnonzero(labels == c) for c in np.unique(labels)]
    class_sizes = np.array([len(ix) for ix in by_class], dtype=np.float64)
    class_prob = class_sizes / class_sizes.sum()

    # Intra-class endpoints: pick a class by size, then two members.  The
    # stable argsort groups the slots of each class contiguously in the same
    # positions the per-class masks used to address, so one vectorised
    # choice per class fills them without scanning all slots per class.
    classes = rng.choice(len(by_class), size=n_intra, p=class_prob)
    order = np.argsort(classes, kind="stable")
    counts = np.bincount(classes, minlength=len(by_class))
    starts = np.concatenate([[0], np.cumsum(counts)])
    src_sorted = np.empty(n_intra, dtype=np.int64)
    dst_sorted = np.empty(n_intra, dtype=np.int64)
    for c, members in enumerate(by_class):
        count = int(counts[c])
        if count == 0:
            continue
        lo, hi = starts[c], starts[c + 1]
        src_sorted[lo:hi] = rng.choice(members, size=count)
        dst_sorted[lo:hi] = rng.choice(members, size=count)
    src_intra = np.empty(n_intra, dtype=np.int64)
    dst_intra = np.empty(n_intra, dtype=np.int64)
    src_intra[order] = src_sorted
    dst_intra[order] = dst_sorted

    n_inter = n_edges - n_intra
    src_inter = rng.integers(0, n, size=n_inter)
    dst_inter = rng.integers(0, n, size=n_inter)

    src = np.concatenate([src_intra, src_inter])
    dst = np.concatenate([dst_intra, dst_inter])
    return dedupe_edges(src, dst, n)


def random_regularish(
    n_nodes: int, avg_degree: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Sparse Erdos-Renyi-style graph with the given average degree.

    Degenerate inputs return an explicit empty edge list: a zero (or
    negative) average degree asks for no edges, and fewer than two nodes
    cannot carry an undirected self-loop-free edge.
    """
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
    if n_nodes <= 1 or avg_degree <= 0:
        return _EMPTY, _EMPTY
    n_edges = max(1, int(round(n_nodes * avg_degree / 2.0)))
    src = rng.integers(0, n_nodes, size=2 * n_edges)
    dst = rng.integers(0, n_nodes, size=2 * n_edges)
    s, d = dedupe_edges(src, dst, n_nodes)
    return s[:n_edges], d[:n_edges]


def _first_occurrence_unique(keys: np.ndarray) -> np.ndarray:
    """Indices of the first occurrence of each key, in arrival order."""
    _, first = np.unique(keys, return_index=True)
    return np.sort(first)


def rmat_edges(
    n_nodes: int,
    n_edges: int,
    rng: np.random.Generator,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded R-MAT directed edge list (Graph500-style recursive quadrants).

    Each edge picks one quadrant per bit level with probabilities
    ``(a, b, c, d=1-a-b-c)``; the defaults are the Graph500 parameters.
    Fully vectorised per level — the working set is ``O(n_edges)`` and no
    dense adjacency is ever materialised, so million-node/edge graphs
    generate in seconds.  Self loops and duplicates are rejected and
    generation rounds repeat (deterministically, on the same ``rng``
    stream) until ``n_edges`` unique directed edges exist; the surviving
    edges are kept in first-arrival order, so a fixed seed always yields
    the same graph.

    The recursion concentrates mass near the diagonal and at low node ids,
    giving the power-law degrees and id-locality (low ids are hubs, and
    nearby ids are more likely to connect) of web/social graphs.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or a <= 0:
        raise ValueError(f"invalid R-MAT quadrant probabilities ({a}, {b}, {c})")
    if n_nodes <= 1 or n_edges <= 0:
        return _EMPTY, _EMPTY
    if n_edges > n_nodes * (n_nodes - 1):
        raise ValueError(
            f"cannot place {n_edges} unique directed edges on {n_nodes} nodes"
        )
    scale = max(int(np.ceil(np.log2(n_nodes))), 1)

    keys = _EMPTY
    # Oversample to absorb out-of-range endpoints (when n_nodes is not a
    # power of two), self loops and duplicates; a handful of rounds
    # converges for sparse graphs.
    for _ in range(200):
        need = n_edges - len(keys)
        if need <= 0:
            break
        m = int(need * 1.5) + 64
        src = np.zeros(m, dtype=np.int64)
        dst = np.zeros(m, dtype=np.int64)
        for _level in range(scale):
            u = rng.random(m)
            src_bit = u >= a + b  # quadrants c and d
            dst_bit = ((u >= a) & (u < a + b)) | (u >= a + b + c)  # b and d
            src = (src << 1) | src_bit
            dst = (dst << 1) | dst_bit
        keep = (src < n_nodes) & (dst < n_nodes) & (src != dst)
        new_keys = src[keep] * n_nodes + dst[keep]
        keys = np.concatenate([keys, new_keys])
        keys = keys[_first_occurrence_unique(keys)]
    keys = keys[:n_edges]
    return keys // n_nodes, keys % n_nodes


def chung_lu_edges(
    n_nodes: int,
    n_edges: int,
    rng: np.random.Generator,
    exponent: float = 2.5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded Chung-Lu power-law directed edge list.

    Expected node weights follow ``w_i ~ (i + 1) ** (-1 / (exponent - 1))``
    (so realised degrees follow a power law with the given ``exponent``);
    both endpoints of every edge are drawn independently proportional to
    the weights via one inverse-CDF ``searchsorted`` per round — ``O(E)``
    memory, no dense intermediates, deterministic for a fixed seed.  Low
    node ids are the hubs.  Self loops and duplicate directed edges are
    rejected and rounds repeat until ``n_edges`` unique edges exist.
    """
    if exponent <= 1.0:
        raise ValueError(f"power-law exponent must exceed 1, got {exponent}")
    if n_nodes <= 1 or n_edges <= 0:
        return _EMPTY, _EMPTY
    if n_edges > n_nodes * (n_nodes - 1):
        raise ValueError(
            f"cannot place {n_edges} unique directed edges on {n_nodes} nodes"
        )
    weights = np.power(np.arange(1, n_nodes + 1, dtype=np.float64), -1.0 / (exponent - 1.0))
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]

    keys = _EMPTY
    for _ in range(200):
        need = n_edges - len(keys)
        if need <= 0:
            break
        m = int(need * 1.5) + 64
        src = np.searchsorted(cdf, rng.random(m), side="left")
        dst = np.searchsorted(cdf, rng.random(m), side="left")
        keep = src != dst
        new_keys = src[keep].astype(np.int64) * n_nodes + dst[keep]
        keys = np.concatenate([keys, new_keys])
        keys = keys[_first_occurrence_unique(keys)]
    keys = keys[:n_edges]
    return keys // n_nodes, keys % n_nodes


def connected_chain_backbone(n_nodes: int, rng: np.random.Generator):
    """A random spanning chain guaranteeing connectivity."""
    order = rng.permutation(n_nodes)
    return order[:-1].astype(np.int64), order[1:].astype(np.int64)


def ring_motif(offset: int, size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cycle over nodes ``offset .. offset+size-1``."""
    ids = np.arange(offset, offset + size, dtype=np.int64)
    return ids, np.roll(ids, -1)


def clique_motif(offset: int, size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Complete subgraph over ``size`` nodes starting at ``offset``."""
    ids = np.arange(offset, offset + size, dtype=np.int64)
    src, dst = np.triu_indices(size, k=1)
    return ids[src], ids[dst]


def star_motif(offset: int, size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Hub-and-spoke subgraph over ``size`` nodes starting at ``offset``."""
    ids = np.arange(offset, offset + size, dtype=np.int64)
    return np.full(size - 1, ids[0], dtype=np.int64), ids[1:]


def knn_edges(points: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Undirected k-nearest-neighbour edges over 2-D ``points``."""
    n = len(points)
    if n <= 1:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    k = min(k, n - 1)
    diff = points[:, None, :] - points[None, :, :]
    dist = np.square(diff).sum(axis=-1)
    np.fill_diagonal(dist, np.inf)
    neighbours = np.argpartition(dist, k - 1, axis=1)[:, :k]
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = neighbours.reshape(-1).astype(np.int64)
    return dedupe_edges(src, dst, n)
