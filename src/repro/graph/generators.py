"""Random graph structure generators used by the synthetic datasets.

Each generator returns an undirected edge list ``(src, dst)`` with
``src < dst`` per edge and no duplicates; callers expand to both directions
with :func:`repro.graph.graph.undirected_edge_index`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.graph import dedupe_edges


def planted_partition(
    labels: np.ndarray,
    n_edges: int,
    intra_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Community graph: ``intra_fraction`` of edges stay within a class.

    Used for the synthetic citation networks — real Cora/PubMed are strongly
    homophilous, which is what lets GNN message passing help classification.
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError("intra_fraction must be in [0, 1]")
    labels = np.asarray(labels)
    n = len(labels)
    n_intra = int(n_edges * intra_fraction)
    by_class = [np.flatnonzero(labels == c) for c in np.unique(labels)]
    class_sizes = np.array([len(ix) for ix in by_class], dtype=np.float64)
    class_prob = class_sizes / class_sizes.sum()

    # Intra-class endpoints: pick a class by size, then two members.
    classes = rng.choice(len(by_class), size=n_intra, p=class_prob)
    src_intra = np.empty(n_intra, dtype=np.int64)
    dst_intra = np.empty(n_intra, dtype=np.int64)
    for c, members in enumerate(by_class):
        mask = classes == c
        count = int(mask.sum())
        if count == 0:
            continue
        src_intra[mask] = rng.choice(members, size=count)
        dst_intra[mask] = rng.choice(members, size=count)

    n_inter = n_edges - n_intra
    src_inter = rng.integers(0, n, size=n_inter)
    dst_inter = rng.integers(0, n, size=n_inter)

    src = np.concatenate([src_intra, src_inter])
    dst = np.concatenate([dst_intra, dst_inter])
    return dedupe_edges(src, dst, n)


def random_regularish(
    n_nodes: int, avg_degree: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Sparse Erdos-Renyi-style graph with the given average degree."""
    n_edges = max(1, int(round(n_nodes * avg_degree / 2.0)))
    src = rng.integers(0, n_nodes, size=2 * n_edges)
    dst = rng.integers(0, n_nodes, size=2 * n_edges)
    s, d = dedupe_edges(src, dst, n_nodes)
    return s[:n_edges], d[:n_edges]


def connected_chain_backbone(n_nodes: int, rng: np.random.Generator):
    """A random spanning chain guaranteeing connectivity."""
    order = rng.permutation(n_nodes)
    return order[:-1].astype(np.int64), order[1:].astype(np.int64)


def ring_motif(offset: int, size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cycle over nodes ``offset .. offset+size-1``."""
    ids = np.arange(offset, offset + size, dtype=np.int64)
    return ids, np.roll(ids, -1)


def clique_motif(offset: int, size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Complete subgraph over ``size`` nodes starting at ``offset``."""
    ids = np.arange(offset, offset + size, dtype=np.int64)
    src, dst = np.triu_indices(size, k=1)
    return ids[src], ids[dst]


def star_motif(offset: int, size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Hub-and-spoke subgraph over ``size`` nodes starting at ``offset``."""
    ids = np.arange(offset, offset + size, dtype=np.int64)
    return np.full(size - 1, ids[0], dtype=np.int64), ids[1:]


def knn_edges(points: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Undirected k-nearest-neighbour edges over 2-D ``points``."""
    n = len(points)
    if n <= 1:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    k = min(k, n - 1)
    diff = points[:, None, :] - points[None, :, :]
    dist = np.square(diff).sum(axis=-1)
    np.fill_diagonal(dist, np.inf)
    neighbours = np.argpartition(dist, k - 1, axis=1)[:, :k]
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = neighbours.reshape(-1).astype(np.int64)
    return dedupe_edges(src, dst, n)
