"""GraphSAGE-style fanout neighbor sampling over CSR.

Builds per-layer *blocks* (bipartite message-passing subgraphs, DGL
style) or one merged subgraph (PyG ``NeighborLoader`` style) from a
:class:`~repro.graph.big_graph.CSRBigGraph`, with a seeded RNG so every
mini-batch sequence is reproducible.  Per hop, nodes whose in-degree is
at most the fanout keep *all* their in-edges; higher-degree nodes draw
``fanout`` neighbours with replacement — both paths fully vectorised.

Sampling is host work; each call charges the
:class:`~repro.device.HostCostModel` sampling costs under the clock's
``"sampling"`` phase, so sampled-training epochs attribute sampler time
separately from data loading and compute (the breakdown the
magnifying-glass characterisation of GNN frameworks highlights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.device import current_device
from repro.graph.big_graph import CSRBigGraph
from repro.graph.graph import RngLike, as_generator


@dataclass(frozen=True)
class Block:
    """One layer's bipartite block: messages flow ``src_nodes -> dst_nodes``.

    ``src_nodes`` holds global node ids; its first ``num_dst`` entries are
    the destination nodes, so destination local ids index into
    ``src_nodes`` too (DGL's block convention).  ``src``/``dst`` are local
    edge endpoints (``dst < num_dst``).
    """

    src_nodes: np.ndarray
    num_dst: int
    src: np.ndarray
    dst: np.ndarray

    @property
    def num_src(self) -> int:
        return len(self.src_nodes)

    @property
    def num_edges(self) -> int:
        return len(self.src)

    @property
    def dst_nodes(self) -> np.ndarray:
        return self.src_nodes[: self.num_dst]


@dataclass(frozen=True)
class SampledSubgraph:
    """Merged union subgraph of all hops, seeds first (PyG convention).

    ``nodes`` are global ids; position is the local id and the first
    ``n_seeds`` entries are the seed nodes in their given order, so a
    model's output rows ``[:n_seeds]`` line up with the seed labels.
    """

    nodes: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    n_seeds: int

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.src)


def _locate(nodes: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Positions of ``queries`` within ``nodes`` (every query present)."""
    sorter = np.argsort(nodes, kind="stable")
    pos = np.searchsorted(nodes, queries, sorter=sorter)
    return sorter[pos].astype(np.int64)


def sample_in_edges(
    graph: CSRBigGraph,
    nodes: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """One hop of fanout sampling: in-edges ``(src, dst)`` in global ids.

    Nodes with in-degree ``<= fanout`` contribute every in-edge; others
    contribute ``fanout`` draws with replacement (one vectorised uniform
    block per hop, so the RNG stream depends only on the frontier and
    fanout — deterministic for a fixed seed).
    """
    if fanout < 0:
        raise ValueError(f"fanout must be non-negative, got {fanout}")
    nodes = np.asarray(nodes, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    deg = indptr[nodes + 1] - indptr[nodes]

    small_mask = deg <= fanout
    small, sdeg = nodes[small_mask], deg[small_mask]
    total = int(sdeg.sum())
    if total:
        starts = indptr[small]
        before = np.concatenate([[0], np.cumsum(sdeg)[:-1]])
        flat = np.repeat(starts - before, sdeg) + np.arange(total)
        src_small = indices[flat]
        dst_small = np.repeat(small, sdeg)
    else:
        src_small = dst_small = np.empty(0, dtype=np.int64)

    large, ldeg = nodes[~small_mask], deg[~small_mask]
    if len(large):
        draws = rng.random((len(large), fanout))
        pick = (draws * ldeg[:, None]).astype(np.int64)
        flat = (indptr[large][:, None] + pick).ravel()
        src_large = indices[flat]
        dst_large = np.repeat(large, fanout)
    else:
        src_large = dst_large = np.empty(0, dtype=np.int64)

    return (np.concatenate([src_small, src_large]),
            np.concatenate([dst_small, dst_large]))


class NeighborSampler:
    """Seeded multi-hop fanout sampler over a CSR graph.

    ``fanouts`` are per message-passing layer, *seed side first*: the
    first fanout expands the seeds (feeding the network's last conv), the
    next expands that frontier, and so on — ``len(fanouts)`` must equal
    the model depth for every layer to see sampled support.
    """

    def __init__(
        self,
        graph: CSRBigGraph,
        fanouts: Sequence[int],
        rng: RngLike = None,
    ) -> None:
        if not len(fanouts):
            raise ValueError("need at least one fanout")
        self.graph = graph
        self.fanouts = tuple(int(f) for f in fanouts)
        self.rng = as_generator(rng)

    # ------------------------------------------------------------------
    def _charge(self, n_seeds: int, n_edges: int) -> None:
        device = current_device()
        costs = device.host_costs
        with device.clock.phase("sampling"):
            device.host(
                costs.sample_base
                + costs.sample_per_seed * n_seeds
                + costs.sample_per_edge * n_edges
            )

    def _hops(self, seeds: np.ndarray) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], List[np.ndarray]]:
        """All hops' (src, dst) global edges plus the frontier per hop."""
        frontier = seeds
        hop_edges: List[Tuple[np.ndarray, np.ndarray]] = []
        frontiers: List[np.ndarray] = [frontier]
        for fanout in self.fanouts:
            src, dst = sample_in_edges(self.graph, frontier, fanout, self.rng)
            hop_edges.append((src, dst))
            frontier = np.unique(np.concatenate([frontier, src]))
            frontiers.append(frontier)
        return hop_edges, frontiers

    # ------------------------------------------------------------------
    def sample_blocks(self, seeds: np.ndarray) -> List[Block]:
        """Per-layer blocks, input layer first (DGL block convention).

        ``blocks[-1]`` has the seeds as destinations; ``blocks[0]`` spans
        the widest frontier and feeds the first conv layer.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        hop_edges, frontiers = self._hops(seeds)
        blocks: List[Block] = []
        for (src, dst), dst_nodes in zip(hop_edges, frontiers):
            extra = np.setdiff1d(src, dst_nodes)
            src_nodes = np.concatenate([dst_nodes, extra])
            blocks.append(
                Block(
                    src_nodes=src_nodes,
                    num_dst=len(dst_nodes),
                    src=_locate(src_nodes, src),
                    dst=_locate(dst_nodes, dst),
                )
            )
        blocks.reverse()
        self._charge(len(seeds), sum(b.num_edges for b in blocks))
        return blocks

    def sample(self, seeds: np.ndarray) -> SampledSubgraph:
        """Merged union subgraph of all hops, seeds first (PyG style).

        A model running ``len(fanouts)`` conv layers over the merged
        subgraph sees full sampled support for its seed-row outputs; loss
        and metrics read rows ``[:n_seeds]``.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        hop_edges, frontiers = self._hops(seeds)
        union = frontiers[-1]
        others = np.setdiff1d(union, seeds)
        nodes = np.concatenate([seeds, others])
        src = np.concatenate([s for s, _ in hop_edges])
        dst = np.concatenate([d for _, d in hop_edges])
        # The same edge can be drawn by several hops (or twice within a
        # with-replacement draw); keep one copy so message passing does
        # not double-count.
        keys = src * self.graph.num_nodes + dst
        keep = np.unique(keys, return_index=True)[1]
        src, dst = src[keep], dst[keep]
        self._charge(len(seeds), len(src))
        return SampledSubgraph(
            nodes=nodes,
            src=_locate(nodes, src),
            dst=_locate(nodes, dst),
            n_seeds=len(seeds),
        )
