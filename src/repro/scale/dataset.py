"""Seeded million-node node-classification tasks over generated graphs.

Builds a :class:`ScaleNodeDataset` — a CSR-backed graph with features,
labels and splits — from the scalable generators
(:func:`~repro.graph.generators.rmat_edges`,
:func:`~repro.graph.generators.chung_lu_edges`).  Labels are contiguous
node-id blocks (one block per class); because both generators concentrate
edge mass near the diagonal / at low ids, block labels inherit a degree of
homophily without any dense intermediate.  Features are noisy class
centroids, so the task is learnable by a shallow GNN while still
benefiting from aggregation.

Everything is a pure function of ``(generator, sizes, seed)`` — the same
arguments always produce bitwise-identical graphs, features and splits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.datasets.base import NodeClassificationDataset
from repro.graph import GraphSample
from repro.graph.big_graph import CSRBigGraph
from repro.graph.generators import chung_lu_edges, rmat_edges

GENERATORS = ("rmat", "chung_lu")


@dataclass
class ScaleNodeDataset:
    """A single large graph with per-node labels and index splits."""

    name: str
    graph: CSRBigGraph
    num_classes: int
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    @property
    def num_features(self) -> int:
        return self.graph.num_features

    def to_node_dataset(self) -> NodeClassificationDataset:
        """Materialise a COO :class:`NodeClassificationDataset`.

        Used for full-graph baselines (the sampled-vs-full accuracy parity
        check); ``O(E)`` memory, so only sensible at smoke scale.
        """
        sample = GraphSample(self.graph.edge_index(), self.graph.x, self.graph.y)
        return NodeClassificationDataset(
            name=self.name,
            graph=sample,
            num_classes=self.num_classes,
            train_idx=self.train_idx,
            val_idx=self.val_idx,
            test_idx=self.test_idx,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScaleNodeDataset({self.name!r}, nodes={self.graph.num_nodes}, "
                f"edges={self.graph.num_edges}, classes={self.num_classes})")


def make_scale_dataset(
    n_nodes: int,
    avg_degree: float = 8.0,
    n_classes: int = 8,
    n_features: int = 32,
    generator: str = "rmat",
    seed: int = 0,
    feature_signal: float = 2.0,
    train_fraction: float = 0.1,
    val_fraction: float = 0.05,
    test_fraction: float = 0.05,
    rmat_abc: Tuple[float, float, float] = (0.57, 0.19, 0.19),
    self_loops: bool = False,
) -> ScaleNodeDataset:
    """One seeded synthetic node-classification task at any scale.

    ``avg_degree`` counts *directed generated* edges per node; the CSR
    graph symmetrises them, so realised in-degrees average about twice
    that.  Splits are a seeded permutation sliced into train/val/test
    fractions.

    ``rmat_abc`` tunes the R-MAT quadrant probabilities; raising ``a``
    concentrates edges on the diagonal, which raises the homophily of the
    block labels (the knob the parity smoke graphs use so that GCN — whose
    DGL-style lowering has no self-loops — can learn from neighbours).

    ``self_loops`` appends one self-edge per node, the ``dgl.add_self_loop``
    preprocessing every DGL GCN example applies: without it the DGL-style
    ``GraphConv`` never sees a node's own features, so its accuracy rests
    entirely on neighbour homophily and diverges between the sampled and
    full-batch training regimes.
    """
    if generator not in GENERATORS:
        raise ValueError(f"unknown generator {generator!r}; options: {GENERATORS}")
    if n_classes < 1 or n_nodes < n_classes:
        raise ValueError("need at least one node per class")
    if train_fraction + val_fraction + test_fraction > 1.0:
        raise ValueError("split fractions exceed 1.0")
    rng = np.random.default_rng(seed)
    n_edges = int(round(n_nodes * avg_degree))
    if generator == "rmat":
        a, b, c = rmat_abc
        src, dst = rmat_edges(n_nodes, n_edges, rng, a=a, b=b, c=c)
    else:
        src, dst = chung_lu_edges(n_nodes, n_edges, rng)
    if self_loops:
        loops = np.arange(n_nodes, dtype=np.int64)
        src = np.concatenate([src, loops])
        dst = np.concatenate([dst, loops])

    # Contiguous id blocks as classes: both generators put correlated mass
    # near the diagonal, so block labels are homophilous without any
    # post-processing over the edge list.
    y = (np.arange(n_nodes, dtype=np.int64) * n_classes) // n_nodes
    centroids = rng.normal(0.0, 1.0, size=(n_classes, n_features))
    x = centroids[y] * feature_signal + rng.normal(0.0, 1.0, size=(n_nodes, n_features))

    graph = CSRBigGraph.from_edges(
        src, dst, n_nodes, x=x.astype(np.float32), y=y, symmetrize=True
    )

    order = rng.permutation(n_nodes)
    n_train = max(int(n_nodes * train_fraction), 1)
    n_val = max(int(n_nodes * val_fraction), 1)
    n_test = max(int(n_nodes * test_fraction), 1)
    return ScaleNodeDataset(
        name=f"{generator}-{n_nodes}",
        graph=graph,
        num_classes=n_classes,
        train_idx=np.sort(order[:n_train]),
        val_idx=np.sort(order[n_train:n_train + n_val]),
        test_idx=np.sort(order[n_train + n_val:n_train + n_val + n_test]),
    )
