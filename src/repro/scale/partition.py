"""Degree-balanced row-block graph partitioning with halo metadata.

Splits a destination-major CSR graph into ``k`` contiguous row blocks cut
at equal points of the *edge* prefix sum (the CSR ``indptr`` is exactly
that prefix sum), the same work-balancing idea as warp-balanced row
blocking in merge-path SpMV/GNN kernels: every part owns a contiguous
destination-node range carrying ~``E/k`` in-edges, regardless of how
skewed the degree distribution is.

Each part records its *halo* — the ghost source nodes outside the owned
range referenced by its in-edges — which is precisely the set of feature
rows a per-partition execution must fetch from other parts before it can
aggregate (the halo exchange of :mod:`repro.scale.halo`).  The whole
construction is a deterministic function of the graph: no RNG, so a fixed
generator seed always yields the same partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.graph.big_graph import CSRBigGraph


@dataclass(frozen=True)
class Part:
    """One partition: owned destination rows ``[lo, hi)`` plus ghosts."""

    part_id: int
    lo: int
    hi: int
    #: Sorted global ids of ghost source nodes outside ``[lo, hi)`` that
    #: the part's in-edges reference.
    halo: np.ndarray
    #: In-edges owned by this part (all edges whose destination it owns).
    num_edges: int
    #: Owned in-edges whose source lies outside the owned range.
    cut_edges: int

    @property
    def num_owned(self) -> int:
        return self.hi - self.lo

    @property
    def num_local(self) -> int:
        """Owned plus ghost nodes — the part's working-set node count."""
        return self.num_owned + len(self.halo)

    def owns(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes)
        return (nodes >= self.lo) & (nodes < self.hi)


@dataclass(frozen=True)
class PartitionStats:
    """Balance/communication summary of one partition."""

    k: int
    edge_counts: Tuple[int, ...]
    node_counts: Tuple[int, ...]
    halo_counts: Tuple[int, ...]
    cut_edges: int
    #: max / mean of per-part edge counts (1.0 = perfectly balanced).
    edge_balance: float
    #: sum of per-part (owned + halo) node counts over total nodes: how
    #: many times the average feature row is materialised.
    replication_factor: float


class Partition:
    """A k-way row-block partition of a :class:`CSRBigGraph`."""

    def __init__(self, graph: CSRBigGraph, parts: List[Part]) -> None:
        self.graph = graph
        self.parts = parts

    @property
    def k(self) -> int:
        return len(self.parts)

    def assignment(self) -> np.ndarray:
        """Owning part id per node (every node is in exactly one part)."""
        out = np.empty(self.graph.num_nodes, dtype=np.int64)
        for part in self.parts:
            out[part.lo:part.hi] = part.part_id
        return out

    def stats(self) -> PartitionStats:
        edge_counts = tuple(p.num_edges for p in self.parts)
        node_counts = tuple(p.num_owned for p in self.parts)
        halo_counts = tuple(len(p.halo) for p in self.parts)
        mean_edges = max(sum(edge_counts) / max(len(self.parts), 1), 1e-12)
        total_nodes = max(self.graph.num_nodes, 1)
        return PartitionStats(
            k=self.k,
            edge_counts=edge_counts,
            node_counts=node_counts,
            halo_counts=halo_counts,
            cut_edges=sum(p.cut_edges for p in self.parts),
            edge_balance=max(edge_counts, default=0) / mean_edges,
            replication_factor=sum(p.num_local for p in self.parts) / total_nodes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Partition(k={self.k}, num_nodes={self.graph.num_nodes})"


def _cut_points(indptr: np.ndarray, num_nodes: int, k: int) -> np.ndarray:
    """Strictly increasing row bounds ``b[0]=0 < ... < b[k]=num_nodes``.

    Interior bounds sit where the edge prefix sum crosses ``i * E / k``,
    then get nudged (at most one row at a time) so no part is empty —
    required for the every-node-in-exactly-one-part invariant even on
    pathological degree distributions.
    """
    total_edges = int(indptr[-1])
    targets = np.arange(1, k) * (total_edges / k)
    bounds = np.searchsorted(indptr, targets, side="left")
    bounds = np.concatenate([[0], bounds, [num_nodes]]).astype(np.int64)
    for i in range(1, k + 1):
        bounds[i] = max(bounds[i], bounds[i - 1] + 1)
    bounds[k] = num_nodes
    for i in range(k - 1, 0, -1):
        bounds[i] = min(bounds[i], bounds[i + 1] - 1)
    return bounds


def degree_balanced_partition(graph: CSRBigGraph, k: int) -> Partition:
    """Partition ``graph`` into ``k`` degree-balanced contiguous row blocks.

    ``k`` larger than the node count is clamped (each part then owns one
    node); ``k < 1`` is an error.  The result is deterministic — identical
    for every call on the same graph.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    n = graph.num_nodes
    if n == 0:
        return Partition(graph, [])
    k = min(k, n)
    bounds = _cut_points(graph.indptr, n, k)

    parts: List[Part] = []
    for part_id in range(k):
        lo, hi = int(bounds[part_id]), int(bounds[part_id + 1])
        e_lo, e_hi = int(graph.indptr[lo]), int(graph.indptr[hi])
        sources = graph.indices[e_lo:e_hi]
        outside = (sources < lo) | (sources >= hi)
        parts.append(
            Part(
                part_id=part_id,
                lo=lo,
                hi=hi,
                halo=np.unique(sources[outside]),
                num_edges=e_hi - e_lo,
                cut_edges=int(outside.sum()),
            )
        )
    return Partition(graph, parts)
