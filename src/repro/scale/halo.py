"""Per-partition full-graph inference with halo exchange.

Runs a node-classification model over a graph that does not fit the
simulated device by executing layer-by-layer, partition-by-partition:
for every layer, each part transfers the feature rows of its owned nodes
plus its *halo* (ghost rows owned by other parts — the halo exchange),
aggregates locally, and writes its owned output rows back to the host.
Only one part's working set is resident at a time, so peak device memory
is bounded by the largest part rather than the whole graph.

Because layers execute globally in lockstep (every part finishes layer
``l`` before any part starts ``l+1``), the halo rows each part reads are
the *exact* values computed by their owning parts — a one-hop halo is
sufficient.  The one subtlety is degree-normalised convs (GCN): a halo
source's in-degree is unknowable from the local subgraph, so the driver
hands every conv the nodes' full-graph in-degrees through the same
``full_graph_norm`` channel the sampled loaders use
(``true_in_degrees`` / ``ndata["true_in_deg"]``), under which owned rows
reduce to the exact full-graph computation.

:func:`full_graph_training_memory_floor` gives a provable lower bound on
what full-graph training would allocate — when the floor exceeds the
device capacity, partitioned (or sampled) execution is not an
optimisation but the only way to run at all.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.device import current_device
from repro.graph.big_graph import CSRBigGraph, gather_rows
from repro.models import ModelConfig
from repro.scale.partition import Part, Partition
from repro.tensor import Tensor, no_grad

FRAMEWORKS = ("pygx", "dglx")


def part_local_graph(
    graph: CSRBigGraph, part: Part
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Local subgraph for one part: ``(nodes, src, dst, num_owned)``.

    ``nodes`` holds global ids, the owned range first and the halo after
    it; ``src``/``dst`` are local endpoints of every in-edge of the owned
    nodes (a contiguous CSR slice — the payoff of row-block partitioning).
    Halo rows carry input values only; their output rows are garbage and
    must be discarded by the caller.
    """
    owned = np.arange(part.lo, part.hi, dtype=np.int64)
    lo_e, hi_e = graph.indptr[part.lo], graph.indptr[part.hi]
    src_global = graph.indices[lo_e:hi_e]
    dst_global = np.repeat(owned, np.diff(graph.indptr[part.lo:part.hi + 1]))
    nodes = np.concatenate([owned, part.halo])

    # Owned ids map to their offset in the block; halo ids via binary
    # search over the (sorted, unique) halo array.
    src_local = np.where(
        (src_global >= part.lo) & (src_global < part.hi),
        src_global - part.lo,
        len(owned) + np.searchsorted(part.halo, src_global),
    ).astype(np.int64)
    dst_local = (dst_global - part.lo).astype(np.int64)
    return nodes, src_local, dst_local, len(owned)


def partitioned_inference(
    framework: str,
    model,
    graph: CSRBigGraph,
    partition: Partition,
) -> np.ndarray:
    """Full-graph logits ``(num_nodes, out_dim)`` via per-part execution.

    Drives the model's conv layers directly (``model.conv_names``), one
    layer at a time over every part; intermediate activations live on the
    host between layers and only one part's rows are device-resident at
    any moment.  Gradient-free (``no_grad``); the caller gets the same
    logits as ``model(full_batch)`` in eval mode would produce, without
    the full graph ever fitting on the device.
    """
    if framework not in FRAMEWORKS:
        raise ValueError(f"unknown framework {framework!r}; options: {FRAMEWORKS}")
    device = current_device()
    model.eval()
    locals_cache = [part_local_graph(graph, part) for part in partition.parts]
    degrees = np.diff(graph.indptr)

    h = graph.x
    with no_grad():
        for name in model.conv_names:
            conv = getattr(model, name)
            out: np.ndarray = None
            for part, (nodes, src, dst, num_owned) in zip(
                partition.parts, locals_cache
            ):
                with device.clock.phase("data_loading"):
                    x_local = gather_rows(h, nodes)
                    # Halo exchange: owned rows come from this part's host
                    # shard, ghost rows from their owners; either way the
                    # device pays one H2D copy of the local working set.
                    device.transfer(x_local.nbytes + src.nbytes + dst.nbytes)
                    device.track(src)
                    device.track(dst)
                    true_deg = degrees[nodes]
                with device.clock.phase("forward"):
                    if framework == "pygx":
                        edge_index = np.stack([src, dst])
                        if getattr(conv, "full_graph_norm_capable", False):
                            result = conv(
                                Tensor(x_local), edge_index, len(nodes),
                                true_in_degrees=true_deg,
                            )
                        else:
                            result = conv(Tensor(x_local), edge_index, len(nodes))
                    else:
                        from repro.dglx import DGLGraph

                        g = DGLGraph(src, dst, len(nodes))
                        g.ndata["true_in_deg"] = Tensor(
                            np.maximum(true_deg, 1)
                            .astype(np.float32)
                            .reshape(-1, 1)
                        )
                        result = conv(g, Tensor(x_local))
                rows = result.data[:num_owned]
                if out is None:
                    out = np.empty((graph.num_nodes, rows.shape[1]), dtype=np.float32)
                out[part.lo:part.hi] = rows
                # D2H of the owned rows: the part's contribution to the
                # next layer's host-resident activation matrix.
                device.transfer(rows.nbytes)
            h = out
    return h


def full_graph_training_memory_floor(
    num_nodes: int, num_edges: int, config: ModelConfig
) -> int:
    """Provable lower bound (bytes) on full-graph training residency.

    Counts only what any implementation of the configured model must hold
    simultaneously during one full-graph step: every layer's activation
    matrix (kept for backward) plus one per-edge message buffer at the
    widest layer width.  Real training holds more (gradients, optimiser
    state, normalisation workspaces), so exceeding the device capacity on
    this floor proves full-graph training cannot fit.
    """
    widths = [config.in_dim] + [config.hidden] * (config.n_layers - 1) + [config.out_dim]
    activations = num_nodes * sum(widths) * 4
    messages = num_edges * max(widths) * 4
    return int(activations + messages)
