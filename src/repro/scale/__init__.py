"""Million-node scale subsystem: generators' CSR graphs, partitioning,
fanout neighbor sampling and sampled/partitioned execution.

The paper's protocol only covers graphs that fit one device; this package
adds the large-graph regime — seeded synthetic graphs
(:mod:`repro.scale.dataset` over the R-MAT / Chung-Lu generators),
degree-balanced row-block partitioning with halo metadata
(:mod:`repro.scale.partition`), GraphSAGE-style fanout sampling
(:mod:`repro.scale.sample`) and per-partition halo-exchange inference
(:mod:`repro.scale.halo`).  Sampled mini-batch training wires through the
framework packs' ``NeighborLoader``\\ s and
:class:`repro.train.SampledNodeTrainer`.
"""

from repro.scale.dataset import GENERATORS, ScaleNodeDataset, make_scale_dataset
from repro.scale.halo import (
    full_graph_training_memory_floor,
    part_local_graph,
    partitioned_inference,
)
from repro.scale.partition import (
    Part,
    Partition,
    PartitionStats,
    degree_balanced_partition,
)
from repro.scale.sample import (
    Block,
    NeighborSampler,
    SampledSubgraph,
    sample_in_edges,
)

__all__ = [
    "GENERATORS",
    "ScaleNodeDataset",
    "make_scale_dataset",
    "Part",
    "Partition",
    "PartitionStats",
    "degree_balanced_partition",
    "Block",
    "NeighborSampler",
    "SampledSubgraph",
    "sample_in_edges",
    "part_local_graph",
    "partitioned_inference",
    "full_graph_training_memory_floor",
]
