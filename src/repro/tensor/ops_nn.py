"""Neural-network specific fused kernels: batch norm and NLL loss.

PyTorch executes batch normalisation and the NLL loss each as a single cuDNN
/ ATen kernel, so we model them the same way instead of composing them from
a dozen elementwise launches — op counts are a first-class observable in
this reproduction (they drive the simulated launch overhead).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor.tensor import Tensor, launch_backward, make_op

_F32 = 4


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the first axis of a 2-D input.

    In training mode the batch statistics are used and the running buffers
    are updated in place; in eval mode the running buffers are used.
    """
    if x.ndim != 2:
        raise ValueError(f"batch_norm expects a 2-D input, got shape {x.shape}")
    n = len(x)
    if training:
        mean = x.data.mean(axis=0)
        var = x.data.var(axis=0)
        if n > 1:
            unbiased = var * n / (n - 1)
        else:
            unbiased = var
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean) * inv_std
    out = (gamma.data * x_hat + beta.data).astype(np.float32)
    flops = 8.0 * x.size
    nbytes = float(_F32 * 3 * x.size)

    def backward(grad: np.ndarray):
        launch_backward("batch_norm_backward", 10.0 * grad.size, _F32 * 4.0 * grad.size)
        g_gamma = (grad * x_hat).sum(axis=0).astype(np.float32)
        g_beta = grad.sum(axis=0).astype(np.float32)
        if training:
            gx = (
                gamma.data
                * inv_std
                / n
                * (n * grad - g_beta - x_hat * g_gamma)
            ).astype(np.float32)
        else:
            gx = (grad * gamma.data * inv_std).astype(np.float32)
        return gx, g_gamma, g_beta

    return make_op("batch_norm", out, (x, gamma, beta), backward, flops, nbytes)


def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``.

    ``log_probs`` has shape ``(N, C)`` (output of ``log_softmax``);
    ``targets`` is an ``(N,)`` integer array.
    """
    targets = np.asarray(targets)
    if log_probs.ndim != 2:
        raise ValueError("nll_loss expects (N, C) log-probabilities")
    n, c = log_probs.shape
    if targets.shape != (n,):
        raise ValueError(f"targets must have shape ({n},), got {targets.shape}")
    if reduction not in ("mean", "sum"):
        raise ValueError(f"unknown reduction {reduction!r}")
    picked = log_probs.data[np.arange(n), targets]
    value = -picked.sum()
    if reduction == "mean":
        value /= n
    out = np.float32(value)
    flops = float(n)
    nbytes = float(_F32 * 2 * n)

    def backward(grad: np.ndarray):
        launch_backward("nll_loss_backward", float(n), _F32 * 2.0 * n)
        gx = np.zeros((n, c), dtype=np.float32)
        scale = float(grad) * (1.0 / n if reduction == "mean" else 1.0)
        gx[np.arange(n), targets] = -scale
        return (gx,)

    return make_op("nll_loss", out, (log_probs,), backward, flops, nbytes)
