"""Numpy-backed autograd tensor engine (the "PyTorch" of this reproduction).

Public surface:

* :class:`Tensor` with reverse-mode :meth:`Tensor.backward`.
* :mod:`repro.tensor.ops` — dense ops (also exposed here for convenience).
* :mod:`repro.tensor.ops_scatter` — gather/scatter/segment kernels.
* :mod:`repro.tensor.ops_sparse` — fused GSpMM/GSDDMM kernels + CSR graphs.
* :func:`no_grad` / :func:`enable_grad` gradient-mode switches.
"""

from repro.tensor import ops
from repro.tensor.autograd import enable_grad, grad_enabled, no_grad
from repro.tensor.gradcheck import GradcheckError, gradcheck, gradcheck_quiet
from repro.tensor.creation import full, ones, randn, uniform, zeros
from repro.tensor.ops import (  # noqa: A004 - mirrors numpy naming
    abs,
    add,
    concat,
    div,
    dropout,
    elu,
    exp,
    leaky_relu,
    log,
    log1p,
    log_softmax,
    matmul,
    maximum,
    minimum,
    mul,
    relu,
    sigmoid,
    softmax,
    sqrt,
    stack,
    sub,
    tanh,
    transpose,
    where,
)
from repro.tensor.ops_nn import batch_norm, nll_loss
from repro.tensor.ops_scatter import (
    index_rows,
    scatter,
    scatter_max,
    scatter_mean,
    scatter_sum,
    segment_max,
    segment_mean,
    segment_reduce,
    segment_sum,
)
from repro.tensor.formats import (
    FORMATS,
    FormatDecision,
    degree_stats,
    format_index_bytes,
    select_format,
)
from repro.tensor.ops_sparse import (
    CSRGraph,
    edge_softmax,
    gsddmm,
    gsddmm_dot,
    gspmm,
)
from repro.tensor.tensor import Tensor

__all__ = [
    "Tensor",
    "ops",
    "no_grad",
    "enable_grad",
    "grad_enabled",
    "gradcheck",
    "gradcheck_quiet",
    "GradcheckError",
    "zeros",
    "ones",
    "full",
    "randn",
    "uniform",
    "abs",
    "add",
    "sub",
    "mul",
    "div",
    "matmul",
    "exp",
    "log",
    "log1p",
    "maximum",
    "minimum",
    "where",
    "sqrt",
    "relu",
    "leaky_relu",
    "elu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "concat",
    "stack",
    "transpose",
    "dropout",
    "batch_norm",
    "nll_loss",
    "index_rows",
    "scatter",
    "scatter_sum",
    "scatter_mean",
    "scatter_max",
    "segment_reduce",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "CSRGraph",
    "gspmm",
    "gsddmm",
    "gsddmm_dot",
    "edge_softmax",
    "FORMATS",
    "FormatDecision",
    "degree_stats",
    "format_index_bytes",
    "select_format",
]
