"""Dense tensor operations: arithmetic, activations, reductions, shape.

Each operation computes with numpy and reports one forward kernel (and its
backward kernels, when they run) to the simulated device.  FLOP and byte
estimates follow the usual conventions: an elementwise op touches each input
and output once; a matmul of ``(n, k) @ (k, m)`` costs ``2nkm`` FLOPs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.device import current_device
from repro.tensor.tensor import Tensor, launch_backward, make_op, unbroadcast

Axis = Union[None, int, Tuple[int, ...]]

_F32 = 4  # bytes per element


def _ew_cost(out: np.ndarray, n_inputs: int = 2) -> Tuple[float, float]:
    """(flops, bytes) for an elementwise kernel producing ``out``."""
    return float(out.size), float(_F32 * (n_inputs + 1) * out.size)


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    out = a.data + b.data
    flops, nbytes = _ew_cost(out)

    def backward(grad: np.ndarray):
        launch_backward("add_backward", *_ew_cost(grad))
        return unbroadcast(grad, a.shape), unbroadcast(grad, b.shape)

    return make_op("add", out, (a, b), backward, flops, nbytes)


def sub(a: Tensor, b: Tensor) -> Tensor:
    out = a.data - b.data
    flops, nbytes = _ew_cost(out)

    def backward(grad: np.ndarray):
        launch_backward("sub_backward", *_ew_cost(grad))
        return unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape)

    return make_op("sub", out, (a, b), backward, flops, nbytes)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out = a.data * b.data
    flops, nbytes = _ew_cost(out)

    def backward(grad: np.ndarray):
        launch_backward("mul_backward", *_ew_cost(grad))
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return make_op("mul", out, (a, b), backward, flops, nbytes)


def div(a: Tensor, b: Tensor) -> Tensor:
    out = a.data / b.data
    flops, nbytes = _ew_cost(out)

    def backward(grad: np.ndarray):
        launch_backward("div_backward", *_ew_cost(grad))
        return (
            unbroadcast(grad / b.data, a.shape),
            unbroadcast(-grad * a.data / (b.data * b.data), b.shape),
        )

    return make_op("div", out, (a, b), backward, flops, nbytes)


def neg(a: Tensor) -> Tensor:
    out = -a.data
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("neg_backward", *_ew_cost(grad, 1))
        return (-grad,)

    return make_op("neg", out, (a,), backward, flops, nbytes)


def pow_scalar(a: Tensor, exponent: float) -> Tensor:
    out = a.data**exponent
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("pow_backward", *_ew_cost(grad, 1))
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return make_op("pow", out, (a,), backward, flops, nbytes)


def exp(a: Tensor) -> Tensor:
    out = np.exp(a.data)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("exp_backward", *_ew_cost(grad, 1))
        return (grad * out,)

    return make_op("exp", out, (a,), backward, flops, nbytes)


def log(a: Tensor) -> Tensor:
    out = np.log(a.data)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("log_backward", *_ew_cost(grad, 1))
        return (grad / a.data,)

    return make_op("log", out, (a,), backward, flops, nbytes)


def sqrt(a: Tensor) -> Tensor:
    out = np.sqrt(a.data)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("sqrt_backward", *_ew_cost(grad, 1))
        return (grad * 0.5 / np.maximum(out, 1e-12),)

    return make_op("sqrt", out, (a,), backward, flops, nbytes)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"matmul expects 2-D operands, got {a.shape} @ {b.shape}")
    n, k = a.shape
    k2, m = b.shape
    if k != k2:
        raise ValueError(f"matmul shape mismatch: {a.shape} @ {b.shape}")
    out = a.data @ b.data
    flops = 2.0 * n * k * m
    nbytes = float(_F32 * (n * k + k * m + n * m))

    def backward(grad: np.ndarray):
        launch_backward("matmul_backward_a", 2.0 * n * m * k, _F32 * (n * m + k * m + n * k))
        launch_backward("matmul_backward_b", 2.0 * k * n * m, _F32 * (n * k + n * m + k * m))
        return grad @ b.data.T, a.data.T @ grad

    return make_op("matmul", out, (a, b), backward, flops, nbytes)


# ----------------------------------------------------------------------
# activations
# ----------------------------------------------------------------------
def relu(a: Tensor) -> Tensor:
    out = np.maximum(a.data, 0.0)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("relu_backward", *_ew_cost(grad, 1))
        return (grad * (a.data > 0.0),)

    return make_op("relu", out, (a,), backward, flops, nbytes)


def leaky_relu(a: Tensor, negative_slope: float = 0.01) -> Tensor:
    out = np.where(a.data > 0.0, a.data, negative_slope * a.data)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("leaky_relu_backward", *_ew_cost(grad, 1))
        return (grad * np.where(a.data > 0.0, 1.0, negative_slope).astype(np.float32),)

    return make_op("leaky_relu", out, (a,), backward, flops, nbytes)


def elu(a: Tensor, alpha: float = 1.0) -> Tensor:
    out = np.where(a.data > 0.0, a.data, alpha * (np.exp(np.minimum(a.data, 0.0)) - 1.0))
    out = out.astype(np.float32)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("elu_backward", *_ew_cost(grad, 1))
        local = np.where(a.data > 0.0, 1.0, out + alpha).astype(np.float32)
        return (grad * local,)

    return make_op("elu", out, (a,), backward, flops, nbytes)


def sigmoid(a: Tensor) -> Tensor:
    out = 1.0 / (1.0 + np.exp(-a.data))
    out = out.astype(np.float32)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("sigmoid_backward", *_ew_cost(grad, 1))
        return (grad * out * (1.0 - out),)

    return make_op("sigmoid", out, (a,), backward, flops, nbytes)


def tanh(a: Tensor) -> Tensor:
    out = np.tanh(a.data)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("tanh_backward", *_ew_cost(grad, 1))
        return (grad * (1.0 - out * out),)

    return make_op("tanh", out, (a,), backward, flops, nbytes)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = (e / e.sum(axis=axis, keepdims=True)).astype(np.float32)
    flops = 4.0 * out.size
    nbytes = float(_F32 * 2 * out.size)

    def backward(grad: np.ndarray):
        launch_backward("softmax_backward", 4.0 * grad.size, _F32 * 3 * grad.size)
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return ((grad - dot) * out,)

    return make_op("softmax", out, (a,), backward, flops, nbytes)


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = (shifted - log_sum).astype(np.float32)
    flops = 4.0 * out.size
    nbytes = float(_F32 * 2 * out.size)

    def backward(grad: np.ndarray):
        launch_backward("log_softmax_backward", 4.0 * grad.size, _F32 * 3 * grad.size)
        softmax_out = np.exp(out)
        return (grad - softmax_out * grad.sum(axis=axis, keepdims=True),)

    return make_op("log_softmax", out, (a,), backward, flops, nbytes)


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def sum(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    out = a.data.sum(axis=axis, keepdims=keepdims, dtype=np.float32)
    out = np.asarray(out, dtype=np.float32)
    flops = float(a.size)
    nbytes = float(_F32 * (a.size + out.size))

    def backward(grad: np.ndarray):
        launch_backward("sum_backward", float(a.size), _F32 * 2.0 * a.size)
        expanded = _expand_reduced_grad(grad, a.shape, axis, keepdims)
        return (expanded,)

    return make_op("sum", out, (a,), backward, flops, nbytes)


def mean(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    out = a.data.mean(axis=axis, keepdims=keepdims, dtype=np.float32)
    out = np.asarray(out, dtype=np.float32)
    count = a.size // out.size if out.size else 1  # NB: builtins.max is shadowed here
    flops = float(a.size)
    nbytes = float(_F32 * (a.size + out.size))

    def backward(grad: np.ndarray):
        launch_backward("mean_backward", float(a.size), _F32 * 2.0 * a.size)
        expanded = _expand_reduced_grad(grad, a.shape, axis, keepdims)
        return (expanded / np.float32(count),)

    return make_op("mean", out, (a,), backward, flops, nbytes)


def max(a: Tensor, axis: int, keepdims: bool = False) -> Tensor:  # noqa: A001
    out = a.data.max(axis=axis, keepdims=keepdims)
    argmax = a.data.argmax(axis=axis)
    flops = float(a.size)
    nbytes = float(_F32 * (a.size + out.size))

    def backward(grad: np.ndarray):
        launch_backward("max_backward", float(a.size), _F32 * 2.0 * a.size)
        full = np.zeros(a.shape, dtype=np.float32)
        grad_arr = grad if keepdims else np.expand_dims(grad, axis)
        np.put_along_axis(full, np.expand_dims(argmax, axis), grad_arr, axis=axis)
        return (full,)

    return make_op("max", np.asarray(out, np.float32), (a,), backward, flops, nbytes)


def _expand_reduced_grad(
    grad: np.ndarray, shape: Tuple[int, ...], axis: Axis, keepdims: bool
) -> np.ndarray:
    """Broadcast a reduction's output gradient back to the input shape."""
    if axis is None:
        return np.broadcast_to(grad, shape).astype(np.float32)
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    if not keepdims:
        for ax in sorted(ax % len(shape) for ax in axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape).astype(np.float32)


# ----------------------------------------------------------------------
# shape manipulation
# ----------------------------------------------------------------------
def reshape(a: Tensor, shape: Sequence[int]) -> Tensor:
    out = a.data.reshape(shape)
    # Views are free on real hardware; charge a minimal kernel-free host op
    # by reporting zero flops/bytes through a named launch would overstate
    # cost, so reshape does not launch at all.
    result = Tensor(out)
    tracer = current_device().tracer
    if tracer is not None:
        # No kernel, but the dataflow edge must survive into the IR.
        tracer.alias(result, a)
    if a.requires_grad:
        from repro.tensor.autograd import grad_enabled

        if grad_enabled():
            result.requires_grad = True
            result._parents = (a,)
            result._backward = lambda grad: (grad.reshape(a.shape),)
    return result


def transpose(a: Tensor, axis0: int = 0, axis1: int = 1) -> Tensor:
    out = np.swapaxes(a.data, axis0, axis1)
    flops, nbytes = 0.0, float(_F32 * 2 * out.size)

    def backward(grad: np.ndarray):
        launch_backward("transpose_backward", 0.0, _F32 * 2.0 * grad.size)
        return (np.swapaxes(grad, axis0, axis1),)

    return make_op("transpose", np.ascontiguousarray(out), (a,), backward, flops, nbytes)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    out = np.concatenate([t.data for t in tensors], axis=axis)
    flops = 0.0
    nbytes = float(_F32 * 2 * out.size)
    sizes = [t.shape[axis] for t in tensors]

    def backward(grad: np.ndarray):
        launch_backward("concat_backward", 0.0, _F32 * 2.0 * grad.size)
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.ascontiguousarray(g) for g in np.split(grad, splits, axis=axis))

    return make_op("concat", out, tuple(tensors), backward, flops, nbytes)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    if not tensors:
        raise ValueError("stack needs at least one tensor")
    out = np.stack([t.data for t in tensors], axis=axis)
    flops = 0.0
    nbytes = float(_F32 * 2 * out.size)

    def backward(grad: np.ndarray):
        launch_backward("stack_backward", 0.0, _F32 * 2.0 * grad.size)
        parts = np.split(grad, len(tensors), axis=axis)
        return tuple(np.ascontiguousarray(p.squeeze(axis)) for p in parts)

    return make_op("stack", out, tuple(tensors), backward, flops, nbytes)


def clamp_min(a: Tensor, minimum: float) -> Tensor:
    out = np.maximum(a.data, minimum)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("clamp_backward", *_ew_cost(grad, 1))
        return (grad * (a.data >= minimum),)

    return make_op("clamp_min", out, (a,), backward, flops, nbytes)


def dropout(a: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity (and no kernel) when not training or p=0."""
    if not training or p <= 0.0:
        return a
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng or np.random.default_rng()
    mask = (rng.random(a.shape) >= p).astype(np.float32) / np.float32(1.0 - p)
    out = a.data * mask
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("dropout_backward", *_ew_cost(grad, 1))
        return (grad * mask,)

    return make_op("dropout", out, (a,), backward, flops, nbytes)


def abs(a: Tensor) -> Tensor:  # noqa: A001
    out = np.abs(a.data)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("abs_backward", *_ew_cost(grad, 1))
        return (grad * np.sign(a.data),)

    return make_op("abs", out, (a,), backward, flops, nbytes)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max; exact ties send the gradient to the first operand."""
    out = np.maximum(a.data, b.data)
    flops, nbytes = _ew_cost(out)

    def backward(grad: np.ndarray):
        launch_backward("maximum_backward", *_ew_cost(grad))
        a_wins = a.data >= b.data
        return (
            unbroadcast(grad * a_wins, a.shape),
            unbroadcast(grad * ~a_wins, b.shape),
        )

    return make_op("maximum", out, (a, b), backward, flops, nbytes)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise min; exact ties send the gradient to the first operand."""
    out = np.minimum(a.data, b.data)
    flops, nbytes = _ew_cost(out)

    def backward(grad: np.ndarray):
        launch_backward("minimum_backward", *_ew_cost(grad))
        a_wins = a.data <= b.data
        return (
            unbroadcast(grad * a_wins, a.shape),
            unbroadcast(grad * ~a_wins, b.shape),
        )

    return make_op("minimum", out, (a, b), backward, flops, nbytes)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select ``a`` where ``condition`` else ``b`` (condition is data)."""
    condition = np.asarray(condition, dtype=bool)
    out = np.where(condition, a.data, b.data).astype(np.float32)
    flops, nbytes = _ew_cost(out)

    def backward(grad: np.ndarray):
        launch_backward("where_backward", *_ew_cost(grad))
        return (
            unbroadcast(grad * condition, a.shape),
            unbroadcast(grad * ~condition, b.shape),
        )

    return make_op("where", out, (a, b), backward, flops, nbytes)


def log1p(a: Tensor) -> Tensor:
    out = np.log1p(a.data)
    flops, nbytes = _ew_cost(out, 1)

    def backward(grad: np.ndarray):
        launch_backward("log1p_backward", *_ew_cost(grad, 1))
        return (grad / (1.0 + a.data),)

    return make_op("log1p", out, (a,), backward, flops, nbytes)
