"""Gradient-mode switches for the tensor engine.

Mirrors ``torch.no_grad``: evaluation passes in the trainers run under
:func:`no_grad` so no autograd graph (and none of its activation memory) is
retained, which matters for the peak-memory results of Fig. 4.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_GRAD_ENABLED: bool = True


def grad_enabled() -> bool:
    """True when operations should record an autograd graph."""
    return _GRAD_ENABLED


@contextmanager
def no_grad() -> Iterator[None]:
    """Disable autograd graph recording inside the block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


@contextmanager
def enable_grad() -> Iterator[None]:
    """Re-enable autograd graph recording inside the block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = True
    try:
        yield
    finally:
        _GRAD_ENABLED = previous
