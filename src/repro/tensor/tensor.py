"""Reverse-mode autograd tensor backed by numpy.

Plays the role PyTorch plays under both GNN frameworks in the paper.  Every
operation does two things:

1. computes the numpy result, and
2. reports a *kernel launch* (name, flop count, bytes moved) to the active
   simulated device, so the performance observables the paper measures —
   kernel time, launch overhead, GPU utilisation, memory — fall out of the
   actual sequence of operations a model executes.

Only float data lives in tensors; integer index arrays (edge indices, batch
vectors) stay plain numpy, exactly as PyG/DGL keep them in ``int64`` buffers
that never need gradients.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.device import current_device
from repro.tensor.autograd import grad_enabled

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Gradient function: maps the output gradient to per-parent gradients
#: (``None`` for parents that do not require grad).
BackwardFn = Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]


class Tensor:
    """A numpy array with a reverse-mode autograd tape."""

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward",
                 "_post_accumulate_hooks", "__weakref__")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            raise TypeError("wrap raw arrays, not Tensors")
        arr = np.asarray(data, dtype=np.float32)
        current_device().track(arr)
        self.data: np.ndarray = arr
        self.requires_grad: bool = requires_grad
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._backward: Optional[BackwardFn] = None
        self._post_accumulate_hooks: Optional[List[Callable[["Tensor"], None]]] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the autograd graph."""
        out = Tensor(self.data)
        tracer = current_device().tracer
        if tracer is not None:
            tracer.alias(out, self)
        return out

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Gradients accumulate into ``.grad`` of every reachable tensor with
        ``requires_grad=True``, as in PyTorch.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without a gradient needs a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float32)

        order = self._topological_order()
        grads: dict = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                _accumulate_leaf(node, node_grad)
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None:
                    continue
                existing = grads.get(id(parent))
                if existing is None:
                    grads[id(parent)] = pgrad
                else:
                    current_device().launch(
                        "grad_accumulate", flops=pgrad.size, bytes_moved=3 * pgrad.nbytes
                    )
                    grads[id(parent)] = existing + pgrad
            # Drop the tape reference so activations can be collected, like
            # PyTorch freeing saved buffers after use.
            node._backward = None
            node._parents = ()

    def _topological_order(self) -> List["Tensor"]:
        """Reverse topological order of the graph rooted at ``self``."""
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        self.grad = None

    def register_post_accumulate_grad_hook(
        self, hook: Callable[["Tensor"], None]
    ) -> Callable[[], None]:
        """Call ``hook(self)`` after a backward pass accumulates into ``.grad``.

        Mirrors ``torch.Tensor.register_post_accumulate_grad_hook``: the
        autograd walk merges all contributions to a leaf before touching
        ``.grad``, so the hook fires exactly once per leaf per backward —
        the point where DDP knows a gradient is final and its bucket may
        ship.  Returns a zero-argument handle that removes the hook.
        """
        if not self.requires_grad:
            raise RuntimeError(
                "post-accumulate hooks only fire on tensors that require grad"
            )
        if self._post_accumulate_hooks is None:
            self._post_accumulate_hooks = []
        hooks = self._post_accumulate_hooks
        hooks.append(hook)

        def remove() -> None:
            if hook in hooks:
                hooks.remove(hook)

        return remove

    # ------------------------------------------------------------------
    # arithmetic (thin wrappers over repro.tensor.ops)
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.add(self, _coerce(other))

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(self, _coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(_coerce(other), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(self, _coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.div(self, _coerce(other))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.div(_coerce(other), self)

    def __neg__(self) -> "Tensor":
        from repro.tensor import ops

        return ops.neg(self)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(self, other)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.tensor import ops

        return ops.pow_scalar(self, float(exponent))

    # convenience method forms
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axis0: int = 0, axis1: int = 1) -> "Tensor":
        from repro.tensor import ops

        return ops.transpose(self, axis0, axis1)

    @property
    def T(self) -> "Tensor":
        return self.transpose(0, 1)


def _coerce(value: ArrayLike) -> Tensor:
    """Wrap scalars/arrays so arithmetic accepts raw operands."""
    if isinstance(value, Tensor):
        return value
    out = Tensor(np.asarray(value, dtype=np.float32))
    tracer = current_device().tracer
    if tracer is not None and out.size == 1:
        # Scalar literals are constants of the step: constant folding may
        # bake ops over them into the compiled plan.
        tracer.mark_constant(out)
    return out


def _accumulate_leaf(tensor: Tensor, grad: np.ndarray) -> None:
    """Accumulate ``grad`` into a leaf tensor's ``.grad`` buffer."""
    if not tensor.requires_grad:
        return
    if tensor.grad is None:
        current_device().track(grad)
        tensor.grad = grad
    else:
        current_device().launch(
            "grad_accumulate", flops=grad.size, bytes_moved=3 * grad.nbytes
        )
        tensor.grad = tensor.grad + grad
        current_device().track(tensor.grad)
    if tensor._post_accumulate_hooks:
        for hook in tuple(tensor._post_accumulate_hooks):
            hook(tensor)


def make_op(
    name: str,
    out_data: np.ndarray,
    parents: Sequence[Tensor],
    backward: BackwardFn,
    flops: float,
    bytes_moved: float,
) -> Tensor:
    """Create the output tensor of an operation and register the kernel.

    ``backward`` receives the gradient w.r.t. the output and must return one
    gradient (or ``None``) per parent; it is responsible for reporting its
    own kernels to the device when it runs.
    """
    device = current_device()
    device.launch(name, flops=flops, bytes_moved=bytes_moved)
    out = Tensor(out_data)
    if grad_enabled() and any(p.requires_grad for p in parents):
        out.requires_grad = True
        out._parents = tuple(parents)
        out._backward = backward
    if device.tracer is not None:
        device.tracer.annotate_op(out, parents)
    return out


def launch_backward(name: str, flops: float = 0.0, bytes_moved: float = 0.0) -> None:
    """Report a kernel executed inside a backward function."""
    current_device().launch(name, flops=flops, bytes_moved=bytes_moved)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.astype(np.float32, copy=False)
