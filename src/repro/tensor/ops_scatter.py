"""Gather / scatter / segment operations.

These are the kernels GNN frameworks are built from.  The PyG-style framework
(:mod:`repro.pygx`) aggregates messages with *scatter* ops keyed by an index
vector (PyTorch's ``scatter``/``index_select`` family); the DGL-style
framework (:mod:`repro.dglx`) pools node features per graph with *segment*
reductions over contiguous ranges (DGL's segment-reduce operator).  The paper
explicitly contrasts these two pooling paths in Section IV-C.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor.tensor import Tensor, launch_backward, make_op

_F32 = 4


def _check_index(index: np.ndarray, length: int) -> np.ndarray:
    index = np.asarray(index)
    if index.ndim != 1 or index.shape[0] != length:
        raise ValueError(f"index must be 1-D with length {length}, got {index.shape}")
    if not np.issubdtype(index.dtype, np.integer):
        raise TypeError("index must be an integer array")
    return index


# ----------------------------------------------------------------------
# gather
# ----------------------------------------------------------------------
def index_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]`` (PyTorch ``index_select`` on dim 0).

    Used to materialise per-edge source/destination features.
    """
    index = _check_index(index, len(index))
    out = x.data[index]
    flops = 0.0
    nbytes = float(_F32 * 2 * out.size)

    def backward(grad: np.ndarray):
        launch_backward("gather_backward_scatter_add", float(grad.size), _F32 * 3.0 * grad.size)
        gx = np.zeros(x.shape, dtype=np.float32)
        np.add.at(gx, index, grad)
        return (gx,)

    return make_op("gather", out, (x,), backward, flops, nbytes)


# ----------------------------------------------------------------------
# scatter reductions (PyG style)
# ----------------------------------------------------------------------
def scatter_sum(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Sum rows of ``src`` into ``dim_size`` bins given by ``index``."""
    index = _check_index(index, len(src))
    out = np.zeros((dim_size,) + src.shape[1:], dtype=np.float32)
    np.add.at(out, index, src.data)
    flops = float(src.size)
    nbytes = float(_F32 * (src.size + out.size))

    def backward(grad: np.ndarray):
        launch_backward("scatter_sum_backward_gather", 0.0, _F32 * 2.0 * src.size)
        return (grad[index],)

    return make_op("scatter_sum", out, (src,), backward, flops, nbytes)


def scatter_mean(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Mean-reduce rows of ``src`` into bins; empty bins yield zero."""
    index = _check_index(index, len(src))
    out = np.zeros((dim_size,) + src.shape[1:], dtype=np.float32)
    np.add.at(out, index, src.data)
    count = np.bincount(index, minlength=dim_size).astype(np.float32)
    safe = np.maximum(count, 1.0)
    out = out / safe.reshape((dim_size,) + (1,) * (src.ndim - 1))
    flops = float(src.size + out.size)
    nbytes = float(_F32 * (src.size + out.size))

    def backward(grad: np.ndarray):
        launch_backward("scatter_mean_backward", float(grad.size), _F32 * 2.0 * src.size)
        scale = (1.0 / safe)[index].reshape((len(index),) + (1,) * (src.ndim - 1))
        return (grad[index] * scale,)

    return make_op("scatter_mean", out, (src,), backward, flops, nbytes)


def scatter_max(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Max-reduce rows of ``src`` into bins; empty bins yield zero.

    The backward pass routes the gradient to the maximal entries; exact ties
    share the gradient equally (a valid subgradient).
    """
    index = _check_index(index, len(src))
    out = np.full((dim_size,) + src.shape[1:], -np.inf, dtype=np.float32)
    np.maximum.at(out, index, src.data)
    empty = ~np.isfinite(out)
    out = np.where(empty, 0.0, out).astype(np.float32)
    flops = float(src.size)
    nbytes = float(_F32 * (src.size + out.size))

    gathered_max = out[index]
    winners = (src.data == gathered_max) & ~empty[index]
    tie_count = np.zeros((dim_size,) + src.shape[1:], dtype=np.float32)
    np.add.at(tie_count, index, winners.astype(np.float32))
    tie_count = np.maximum(tie_count, 1.0)

    def backward(grad: np.ndarray):
        launch_backward("scatter_max_backward", float(src.size), _F32 * 3.0 * src.size)
        return (winners * grad[index] / tie_count[index],)

    return make_op("scatter_max", out, (src,), backward, flops, nbytes)


def scatter(src: Tensor, index: np.ndarray, dim_size: int, reduce: str = "sum") -> Tensor:
    """Dispatch to a scatter reduction by name (``sum``/``mean``/``max``)."""
    if reduce == "sum":
        return scatter_sum(src, index, dim_size)
    if reduce == "mean":
        return scatter_mean(src, index, dim_size)
    if reduce == "max":
        return scatter_max(src, index, dim_size)
    raise ValueError(f"unknown scatter reduction {reduce!r}")


# ----------------------------------------------------------------------
# segment reductions (DGL style)
# ----------------------------------------------------------------------
def _check_offsets(offsets: np.ndarray, length: int) -> np.ndarray:
    offsets = np.asarray(offsets)
    if offsets.ndim != 1 or offsets[0] != 0 or offsets[-1] != length:
        raise ValueError("offsets must start at 0 and end at the input length")
    if np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be non-decreasing")
    return offsets


def segment_sum(src: Tensor, offsets: np.ndarray) -> Tensor:
    """Sum contiguous row segments ``src[offsets[i]:offsets[i+1]]``."""
    offsets = _check_offsets(offsets, len(src))
    lengths = np.diff(offsets)
    # Exclusive prefix sums make every segment (including empty ones) exact.
    csum = np.zeros((len(src) + 1,) + src.shape[1:], dtype=np.float64)
    np.cumsum(src.data, axis=0, dtype=np.float64, out=csum[1:])
    out = (csum[offsets[1:]] - csum[offsets[:-1]]).astype(np.float32)
    flops = float(src.size)
    nbytes = float(_F32 * (src.size + out.size))

    def backward(grad: np.ndarray):
        launch_backward("segment_sum_backward", 0.0, _F32 * 2.0 * src.size)
        return (np.repeat(grad, lengths, axis=0).astype(np.float32),)

    return make_op("segment_reduce_sum", out, (src,), backward, flops, nbytes)


def segment_mean(src: Tensor, offsets: np.ndarray) -> Tensor:
    """Mean over contiguous row segments; empty segments yield zero."""
    offsets = _check_offsets(offsets, len(src))
    lengths = np.diff(offsets).astype(np.float32)
    safe = np.maximum(lengths, 1.0).reshape((-1,) + (1,) * (src.ndim - 1))
    summed = segment_sum(src, offsets)
    n_segments = len(offsets) - 1
    out = summed.data / safe
    flops = float(out.size)
    nbytes = float(_F32 * 2 * out.size)

    def backward(grad: np.ndarray):
        launch_backward("segment_mean_backward", float(grad.size), _F32 * 2.0 * grad.size)
        return (grad / safe,)

    # Chain through segment_sum's autograd by dividing the Tensor directly.
    result = make_op("segment_reduce_mean_div", out, (summed,), backward, flops, nbytes)
    return result


def segment_max(src: Tensor, offsets: np.ndarray) -> Tensor:
    """Max over contiguous row segments; empty segments yield zero."""
    offsets = _check_offsets(offsets, len(src))
    n_segments = len(offsets) - 1
    lengths = np.diff(offsets)
    index = np.repeat(np.arange(n_segments), lengths)
    out = np.full((n_segments,) + src.shape[1:], -np.inf, dtype=np.float32)
    if src.size:
        np.maximum.at(out, index, src.data)
    empty = ~np.isfinite(out)
    out = np.where(empty, 0.0, out).astype(np.float32)
    flops = float(src.size)
    nbytes = float(_F32 * (src.size + out.size))

    winners = (src.data == out[index]) & ~empty[index] if src.size else np.zeros_like(src.data, bool)
    tie_count = np.zeros((n_segments,) + src.shape[1:], dtype=np.float32)
    if src.size:
        np.add.at(tie_count, index, winners.astype(np.float32))
    tie_count = np.maximum(tie_count, 1.0)

    def backward(grad: np.ndarray):
        launch_backward("segment_max_backward", float(src.size), _F32 * 3.0 * src.size)
        return (winners * grad[index] / tie_count[index],)

    return make_op("segment_reduce_max", out, (src,), backward, flops, nbytes)


def segment_reduce(src: Tensor, offsets: np.ndarray, reduce: str = "sum") -> Tensor:
    """Dispatch to a segment reduction by name (``sum``/``mean``/``max``)."""
    if reduce == "sum":
        return segment_sum(src, offsets)
    if reduce == "mean":
        return segment_mean(src, offsets)
    if reduce == "max":
        return segment_max(src, offsets)
    raise ValueError(f"unknown segment reduction {reduce!r}")
