"""Numerical gradient checking (public counterpart of torch.autograd.gradcheck).

Compares reverse-mode gradients against central differences.  Inputs are
float32, so tolerances are looser than double-precision gradcheck; the
utility is meant for validating new ops and model layers, and is what the
engine's own test suite uses.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class GradcheckError(AssertionError):
    """Raised when an analytic gradient disagrees with central differences."""


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-2,
    atol: float = 2e-2,
    rtol: float = 2e-2,
    max_coords: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """Check ``d(sum fn(*inputs)) / d(inputs)`` against central differences.

    ``fn`` maps Tensors to one Tensor; ``inputs`` are numpy arrays (float32
    recommended).  At most ``max_coords`` randomly chosen coordinates per
    input are perturbed.  Returns True on success, raises
    :class:`GradcheckError` with coordinates and values on failure.
    """
    rng = rng or np.random.default_rng(0)
    arrays = [np.asarray(a, dtype=np.float32) for a in inputs]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = fn(*tensors)
    out.sum().backward()

    def evaluate(candidate: Sequence[np.ndarray]) -> float:
        return fn(*[Tensor(a) for a in candidate]).sum().item()

    for which, (tensor, base) in enumerate(zip(tensors, arrays)):
        if tensor.grad is None:
            raise GradcheckError(f"input {which} received no gradient")
        flat = base.reshape(-1)
        n_coords = min(max_coords, flat.size)
        coords = rng.choice(flat.size, size=n_coords, replace=False)
        for idx in coords:
            plus = [a.copy() for a in arrays]
            minus = [a.copy() for a in arrays]
            plus[which].reshape(-1)[idx] += eps
            minus[which].reshape(-1)[idx] -= eps
            numeric = (evaluate(plus) - evaluate(minus)) / (2.0 * eps)
            analytic = float(tensor.grad.reshape(-1)[idx])
            if not np.isclose(analytic, numeric, atol=atol, rtol=rtol):
                raise GradcheckError(
                    f"input {which} coord {idx}: analytic {analytic:.6f} "
                    f"vs numeric {numeric:.6f}"
                )
    return True


def gradcheck_quiet(
    fn: Callable[..., Tensor], inputs: Sequence[np.ndarray], **kwargs
) -> Tuple[bool, str]:
    """Like :func:`gradcheck` but returns ``(ok, message)`` instead of raising."""
    try:
        gradcheck(fn, inputs, **kwargs)
        return True, ""
    except GradcheckError as exc:
        return False, str(exc)
