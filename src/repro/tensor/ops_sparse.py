"""Fused sparse-dense kernels (GSpMM / GSDDMM).

The paper observes that DGL lowers its message passing to GSpMM —
"Generalized Sparse-Matrix Dense-Matrix Multiplication" — which *fuses* two
steps into one kernel: computing messages from source-node (and optionally
edge) features, and aggregating them on destination nodes (Section IV-C).

:func:`gspmm` is that fused kernel: a single launch per call, in contrast to
the PyG-style gather + scatter pair.  :func:`gsddmm` is its generalized
companion — "Sampled Dense-Dense Matrix Multiplication" — producing per-edge
values from node/edge operands (attention logits, gated edge features) in a
single fused launch; :func:`gsddmm_dot` is the legacy dot-product entry
point, now a thin wrapper.

Both kernels honour the graph's sparse-format choice (``CSRGraph.fmt``, see
:mod:`repro.tensor.formats`): when a format has been selected the kernel name
carries an ``@fmt`` suffix and the device cost model charges the format's
index traffic and efficiency.  The kernel contract is documented in
``docs/kernels.md``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.device import current_device
from repro.tensor.tensor import Tensor, launch_backward, make_op, unbroadcast

_F32 = 4


def _segment_sum_csr(values: np.ndarray, indptr: np.ndarray, num_segments: int) -> np.ndarray:
    """Per-segment sum over CSR-contiguous ``values`` (vectorised).

    ``values[indptr[i]:indptr[i+1]]`` belongs to segment ``i``.  Uses
    ``np.add.reduceat`` over the non-empty segment starts — empty segments
    contribute zero-width spans between consecutive non-empty starts, so
    they stay at their zero initial value without a python loop.
    """
    out = np.zeros((num_segments,) + values.shape[1:], dtype=np.float32)
    if len(values):
        nonempty = np.diff(indptr) > 0
        if nonempty.any():
            out[nonempty] = np.add.reduceat(values, indptr[:-1][nonempty], axis=0)
    return out


def _segment_max_csr(
    values: np.ndarray, indptr: np.ndarray, num_segments: int, fill: float = -np.inf
) -> np.ndarray:
    """Per-segment max over CSR-contiguous ``values`` (vectorised).

    Empty segments yield ``fill``.  Exact regardless of reduction order, so
    this is bitwise-identical to the ``np.maximum.at`` loop it replaces.
    """
    out = np.full((num_segments,) + values.shape[1:], fill, dtype=np.float32)
    if len(values):
        nonempty = np.diff(indptr) > 0
        if nonempty.any():
            out[nonempty] = np.maximum.reduceat(values, indptr[:-1][nonempty], axis=0)
    return out


class CSRGraph:
    """Compressed sparse row adjacency used by the DGL-style framework.

    Rows are destination nodes; ``indices`` hold the source node of each
    incoming edge, so ``A @ X`` aggregates source features onto destinations.
    ``edge_ids`` maps each CSR position back to the original edge ordering
    so per-edge tensors (weights, gates) line up.
    """

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, edge_ids: np.ndarray, num_src: int
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.edge_ids = np.asarray(edge_ids, dtype=np.int64)
        self.num_dst = len(self.indptr) - 1
        self.num_src = int(num_src)
        if len(self.indices) != len(self.edge_ids):
            raise ValueError("indices and edge_ids must have equal length")
        # Destination node of each CSR slot (row expansion), used by backward.
        self.rows = np.repeat(np.arange(self.num_dst), np.diff(self.indptr))
        # Sparse-format choice for the cost model (None = format-agnostic
        # legacy charging).  Set via set_format()/autotune_format().
        self.fmt: Optional[str] = None
        self._format_decision = None
        # Sparse formats live in device memory (DGL keeps COO + CSR copies).
        device = current_device()
        for array in (self.indptr, self.indices, self.edge_ids, self.rows):
            device.track(array)

    @classmethod
    def from_edge_index(
        cls, src: np.ndarray, dst: np.ndarray, num_src: int, num_dst: int
    ) -> "CSRGraph":
        """Build CSR (by destination) from COO ``src -> dst`` edge lists."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ValueError("src and dst must have equal length")
        if len(dst) and (dst.min() < 0 or dst.max() >= num_dst):
            raise ValueError("dst index out of range")
        if len(src) and (src.min() < 0 or src.max() >= num_src):
            raise ValueError("src index out of range")
        order = np.argsort(dst, kind="stable")
        sorted_dst = dst[order]
        indptr = np.zeros(num_dst + 1, dtype=np.int64)
        np.add.at(indptr, sorted_dst + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, src[order], order, num_src)

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def in_degrees(self) -> np.ndarray:
        """In-degree of each destination node."""
        return np.diff(self.indptr)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of each source node."""
        return np.bincount(self.indices, minlength=self.num_src)

    def _matrix(self, weights: Optional[np.ndarray] = None) -> sp.csr_matrix:
        data = np.ones(self.num_edges, np.float32) if weights is None else weights
        return sp.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.num_dst, self.num_src)
        )

    def set_format(self, fmt: Optional[str]) -> "CSRGraph":
        """Pin the sparse format the cost model charges for this graph."""
        from repro.tensor.formats import FORMATS

        if fmt is not None and fmt not in FORMATS:
            raise ValueError(f"unknown sparse format {fmt!r}, expected one of {FORMATS}")
        self.fmt = fmt
        return self

    def autotune_format(self) -> str:
        """Select and cache the sparse format from this graph's degree stats.

        Idempotent: the decision is computed once per graph and cached
        (see :func:`repro.tensor.formats.select_format` for the rules).
        """
        from repro.tensor.formats import select_format

        if self._format_decision is None:
            self._format_decision = select_format(self)
        self.fmt = self._format_decision.fmt
        return self.fmt


def _sparse_kernel_name(graph: CSRGraph, base: str) -> str:
    """Kernel name for a sparse launch, carrying the format suffix."""
    return base if graph.fmt is None else f"{base}@{graph.fmt}"


def _sparse_index_bytes(graph: CSRGraph) -> float:
    """Extra index traffic the selected format moves (0 when format-agnostic)."""
    if graph.fmt is None:
        return 0.0
    from repro.tensor.formats import format_index_bytes

    return format_index_bytes(graph, graph.fmt)


def _as_scalar_weight(w: np.ndarray) -> Optional[np.ndarray]:
    """Return a flat ``(E,)`` view of a scalar per-edge weight, else None."""
    if w.ndim == 1:
        return w
    if w.ndim == 2 and w.shape[1] == 1:
        return w[:, 0]
    return None


def gspmm(
    graph: CSRGraph,
    x: Tensor,
    edge_weight: Optional[Tensor] = None,
    reduce: str = "sum",
) -> Tensor:
    """Fused message + aggregate: ``out[d] = reduce_{(s,d)} w_e * x[s]``.

    One kernel launch regardless of the message/reduce combination — this is
    the fusion the paper credits GSpMM for.  ``edge_weight`` is per-edge in
    the *original* edge order; its trailing shape must broadcast against
    ``x``'s trailing shape (e.g. ``(E,)``, ``(E, 1)``, ``(E, H, 1)`` against
    node features ``(N, H, D)``).
    """
    if reduce == "max":
        return _gspmm_max(graph, x, edge_weight)
    if reduce not in ("sum", "mean"):
        raise ValueError(f"gspmm supports sum/mean/max, got {reduce!r}")
    if len(x) != graph.num_src:
        raise ValueError(f"x has {len(x)} rows, graph expects {graph.num_src}")
    e = graph.num_edges
    feat_dim = int(np.prod(x.shape[1:], dtype=np.int64)) if x.ndim > 1 else 1
    degrees = np.maximum(graph.in_degrees(), 1).astype(np.float32)

    w_csr_scalar: Optional[np.ndarray] = None
    w_sorted: Optional[np.ndarray] = None
    if edge_weight is not None:
        if len(edge_weight) != e:
            raise ValueError("edge_weight must have one row per edge")
        scalar = _as_scalar_weight(edge_weight.data)
        if scalar is not None:
            w_csr_scalar = scalar[graph.edge_ids]
        else:
            w_sorted = edge_weight.data[graph.edge_ids]

    if edge_weight is None or w_csr_scalar is not None:
        x2 = x.data.reshape(len(x), feat_dim)
        out = np.asarray(graph._matrix(w_csr_scalar) @ x2, dtype=np.float32)
        out = out.reshape((graph.num_dst,) + x.shape[1:])
    else:
        msgs = (w_sorted * x.data[graph.indices]).astype(np.float32)
        out = _segment_sum_csr(msgs, graph.indptr, graph.num_dst)
    if reduce == "mean":
        out = out / degrees.reshape((-1,) + (1,) * (out.ndim - 1))

    flops = 2.0 * e * feat_dim
    # The kernel reads one source row per edge (random access), the weight
    # per edge, and writes the output — plus the selected format's index
    # arrays when the graph has been format-tuned.
    nbytes = float(_F32 * (e * feat_dim + e + x.size + out.size)) + _sparse_index_bytes(graph)
    parents: Tuple[Tensor, ...] = (x,) if edge_weight is None else (x, edge_weight)

    # DGL's GSpMM materialises a message-frame workspace of one value per
    # edge per feature (plus CSR-ordered weight copies); it stays allocated
    # while the autograd graph holds this kernel's backward closure, which
    # is what pushes DGL's peak memory above PyG's in Fig. 4.
    device = current_device()
    workspace = np.empty((2, e, feat_dim), dtype=np.float32)
    device.track(workspace)
    if w_csr_scalar is not None:
        device.track(w_csr_scalar)
    if w_sorted is not None:
        device.track(w_sorted)

    def backward(grad: np.ndarray):
        _ = workspace  # saved-for-backward workspace, freed after this runs
        g = grad.astype(np.float32, copy=False)
        if reduce == "mean":
            g = g / degrees.reshape((-1,) + (1,) * (g.ndim - 1))
        launch_backward("gspmm_backward_x", 2.0 * e * feat_dim, _F32 * (e * feat_dim + g.size + x.size))
        if edge_weight is None or w_csr_scalar is not None:
            g2 = g.reshape(graph.num_dst, feat_dim)
            gx = np.asarray(graph._matrix(w_csr_scalar).T @ g2, np.float32).reshape(x.shape)
        else:
            per_edge = (w_sorted * g[graph.rows]).astype(np.float32)
            per_edge = unbroadcast(per_edge, (e,) + x.shape[1:])
            gx = np.zeros(x.shape, dtype=np.float32)
            np.add.at(gx, graph.indices, per_edge)
        if edge_weight is None:
            return (gx,)
        launch_backward("gspmm_backward_w", 2.0 * e * feat_dim, _F32 * (2 * e * feat_dim + e))
        prod = (g[graph.rows] * x.data[graph.indices]).astype(np.float32)
        # Reduce the per-edge product back to the edge-weight shape: sum out
        # trailing feature axes the weight does not carry, then unbroadcast
        # any remaining size-1 axes.
        target_shape = (e,) + edge_weight.shape[1:]
        extra = prod.ndim - len(target_shape)
        if extra > 0:
            prod = prod.sum(axis=tuple(range(prod.ndim - extra, prod.ndim)))
        gw_sorted = unbroadcast(prod, target_shape)
        gw = np.zeros(edge_weight.shape, dtype=np.float32)
        gw[graph.edge_ids] = gw_sorted
        return (gx, gw)

    return make_op(_sparse_kernel_name(graph, "gspmm"), out, parents, backward, flops, nbytes)


#: Binary combinators the generalized GSDDMM kernel supports.  ``copy_lhs``
#: takes a single operand (``rhs=None``) and is the degenerate
#: gather-to-edges kernel.
GSDDMM_OPS = ("add", "sub", "mul", "div", "dot", "copy_lhs")

#: Operand targets: ``u`` = source node, ``v`` = destination node,
#: ``e`` = per-edge (original edge order).
GSDDMM_TARGETS = ("u", "v", "e")


def _gsddmm_rows(graph: CSRGraph, target: str) -> int:
    return {"u": graph.num_src, "v": graph.num_dst, "e": graph.num_edges}[target]


def _gsddmm_gather(graph: CSRGraph, data: np.ndarray, target: str) -> np.ndarray:
    """Operand rows in CSR (destination-sorted) order for a target."""
    if target == "u":
        return data[graph.indices]
    if target == "v":
        return data[graph.rows]
    return data[graph.edge_ids]


def _gsddmm_scatter_grad(
    graph: CSRGraph, g_sorted: np.ndarray, operand: Tensor, target: str
) -> np.ndarray:
    """Reduce a CSR-ordered per-edge gradient back onto an operand."""
    g_part = unbroadcast(g_sorted, (graph.num_edges,) + operand.shape[1:])
    g_part = g_part.astype(np.float32, copy=False)
    if target == "u":
        gx = np.zeros(operand.shape, dtype=np.float32)
        np.add.at(gx, graph.indices, g_part)
        return gx
    if target == "v":
        # CSR order is destination-contiguous: a vectorised segment sum.
        return _segment_sum_csr(g_part, graph.indptr, graph.num_dst)
    gx = np.zeros(operand.shape, dtype=np.float32)
    gx[graph.edge_ids] = g_part
    return gx


def gsddmm(
    graph: CSRGraph,
    op: str,
    lhs: Tensor,
    rhs: Optional[Tensor] = None,
    lhs_target: str = "u",
    rhs_target: str = "v",
) -> Tensor:
    """Generalized SDDMM: combine two operands on edges in one fused launch.

    ``out[e] = op(lhs[lhs_target(e)], rhs[rhs_target(e)])`` for every edge,
    in the *original* edge order.  Operands live on source nodes (``u``),
    destination nodes (``v``) or edges (``e``); trailing shapes broadcast
    (e.g. ``(N, H, D)`` against ``(N, H, 1)``).  ``op="dot"`` contracts the
    last axis — features ``(N, H, D)`` yield logits ``(E, H)``; the
    elementwise ops keep the broadcast trailing shape.  ``op="copy_lhs"``
    gathers a single operand to edges (``rhs`` must be omitted).

    This is the DGL-style pairing of :func:`gspmm`: one launch forward, one
    per operand backward, versus the unfused gather + gather + combine chain
    (see ``docs/kernels.md`` for the op/target tables and charging rules).
    """
    if op not in GSDDMM_OPS:
        raise ValueError(f"gsddmm supports {GSDDMM_OPS}, got {op!r}")
    if lhs_target not in GSDDMM_TARGETS or rhs_target not in GSDDMM_TARGETS:
        raise ValueError(f"gsddmm targets must be one of {GSDDMM_TARGETS}")
    if op == "copy_lhs":
        if rhs is not None:
            raise ValueError("gsddmm op 'copy_lhs' takes no rhs operand")
    elif rhs is None:
        raise ValueError(f"gsddmm op {op!r} needs an rhs operand")
    if len(lhs) != _gsddmm_rows(graph, lhs_target):
        raise ValueError(
            f"lhs has {len(lhs)} rows, target {lhs_target!r} expects "
            f"{_gsddmm_rows(graph, lhs_target)}"
        )
    if rhs is not None and len(rhs) != _gsddmm_rows(graph, rhs_target):
        raise ValueError(
            f"rhs has {len(rhs)} rows, target {rhs_target!r} expects "
            f"{_gsddmm_rows(graph, rhs_target)}"
        )

    e = graph.num_edges
    l_sorted = _gsddmm_gather(graph, lhs.data, lhs_target)
    r_sorted = _gsddmm_gather(graph, rhs.data, rhs_target) if rhs is not None else None

    if op == "add":
        sorted_out = l_sorted + r_sorted
    elif op == "sub":
        sorted_out = l_sorted - r_sorted
    elif op == "mul":
        sorted_out = l_sorted * r_sorted
    elif op == "div":
        sorted_out = l_sorted / r_sorted
    elif op == "dot":
        if lhs.shape[-1] != rhs.shape[-1]:
            raise ValueError("gsddmm 'dot' needs matching last-axis sizes")
        sorted_out = (l_sorted * r_sorted).sum(axis=-1)
    else:  # copy_lhs
        sorted_out = l_sorted
    out = np.empty((e,) + sorted_out.shape[1:], dtype=np.float32)
    out[graph.edge_ids] = sorted_out

    if op == "dot":
        feat_dim = int(lhs.shape[-1])
        flops = 2.0 * e * feat_dim
        nbytes = float(_F32 * (2 * e * feat_dim + out.size))
        bw_flops, bw_bytes = 2.0 * e * feat_dim, _F32 * 3.0 * e * feat_dim
    elif op == "copy_lhs":
        flops = 0.0
        nbytes = float(_F32 * (lhs.size + out.size))
        bw_flops, bw_bytes = 0.0, _F32 * 2.0 * out.size
    else:
        flops = float(out.size)
        nbytes = float(_F32 * (lhs.size + rhs.size + out.size))
        bw_flops, bw_bytes = float(out.size), _F32 * 3.0 * out.size
    nbytes += _sparse_index_bytes(graph)
    parents: Tuple[Tensor, ...] = (lhs,) if rhs is None else (lhs, rhs)

    def backward(grad: np.ndarray):
        launch_backward(f"gsddmm_{op}_backward", bw_flops, bw_bytes)
        g_sorted = grad[graph.edge_ids].astype(np.float32, copy=False)
        if op == "dot":
            g_sorted = np.expand_dims(g_sorted, -1)
        if op in ("add", "sub", "copy_lhs"):
            gl_sorted = g_sorted
        elif op == "div":
            gl_sorted = (g_sorted / r_sorted).astype(np.float32)
        else:  # mul, dot
            gl_sorted = (g_sorted * r_sorted).astype(np.float32)
        gl = _gsddmm_scatter_grad(graph, gl_sorted, lhs, lhs_target)
        if rhs is None:
            return (gl,)
        if op == "add":
            gr_sorted = g_sorted
        elif op == "sub":
            gr_sorted = -g_sorted
        elif op == "div":
            gr_sorted = (-g_sorted * l_sorted / (r_sorted * r_sorted)).astype(np.float32)
        else:  # mul, dot
            gr_sorted = (g_sorted * l_sorted).astype(np.float32)
        gr = _gsddmm_scatter_grad(graph, gr_sorted, rhs, rhs_target)
        return gl, gr

    name = _sparse_kernel_name(graph, f"gsddmm_{op}")
    return make_op(name, out, parents, backward, flops, nbytes)


def gsddmm_dot(graph: CSRGraph, src_feat: Tensor, dst_feat: Tensor) -> Tensor:
    """Per-edge dot product over the last axis (``gsddmm(graph, "dot", ...)``).

    ``out[e] = sum_d src_feat[src(e), ..., d] * dst_feat[dst(e), ..., d]``,
    keeping any middle axes (e.g. attention heads): features ``(N, H, D)``
    yield logits ``(E, H)``.
    """
    return gsddmm(graph, "dot", src_feat, dst_feat)


def edge_softmax(graph: CSRGraph, logits: Tensor) -> Tensor:
    """Fused edge softmax over the incoming edges of each destination.

    ``logits`` has shape ``(E, ...)`` in original edge order.  Forward is two
    kernels (segment max-subtract-exp, segment sum-divide); backward is two
    more — the fusion the paper contrasts with PyG's six-launch scatter
    composition.  Segment reductions run vectorised over the CSR-contiguous
    row order (``np.{add,maximum}.reduceat``).
    """
    rows = graph.rows
    sorted_logits = logits.data[graph.edge_ids]
    trailing = sorted_logits.shape[1:]

    maxes = _segment_max_csr(sorted_logits, graph.indptr, graph.num_dst)
    maxes = np.where(np.isfinite(maxes), maxes, 0.0).astype(np.float32)
    exp = np.exp(sorted_logits - maxes[rows])
    denom = _segment_sum_csr(exp, graph.indptr, graph.num_dst)
    denom = np.maximum(denom, 1e-16)
    sorted_out = (exp / denom[rows]).astype(np.float32)
    out = np.empty_like(sorted_out)
    out[graph.edge_ids] = sorted_out
    # The CSR-ordered softmax output is saved for backward (device memory).
    current_device().track(sorted_out)

    flops = 4.0 * out.size
    nbytes = float(_F32 * 3 * out.size)
    # Charge the second fused kernel explicitly (make_op charges the first).
    current_device().launch("edge_softmax_norm", 2.0 * out.size, _F32 * 2.0 * out.size)

    def backward(grad: np.ndarray):
        launch_backward("edge_softmax_backward_accum", 2.0 * grad.size, _F32 * 3.0 * grad.size)
        launch_backward("edge_softmax_backward_norm", 2.0 * grad.size, _F32 * 2.0 * grad.size)
        g_sorted = grad[graph.edge_ids]
        weighted = (g_sorted * sorted_out).astype(np.float32)
        dot = _segment_sum_csr(weighted, graph.indptr, graph.num_dst)
        g_logits_sorted = sorted_out * (g_sorted - dot[rows])
        g_logits = np.empty_like(g_logits_sorted)
        g_logits[graph.edge_ids] = g_logits_sorted
        return (g_logits.astype(np.float32),)

    return make_op("edge_softmax", out, (logits,), backward, flops, nbytes)


def _gspmm_max(graph: CSRGraph, x: Tensor, edge_weight: Optional[Tensor]) -> Tensor:
    """Fused max-aggregation GSpMM; empty destinations yield zero.

    Ties share the gradient equally (a valid subgradient), matching the
    scatter-based max reductions.
    """
    e = graph.num_edges
    feat_dim = int(np.prod(x.shape[1:], dtype=np.int64)) if x.ndim > 1 else 1
    if edge_weight is not None:
        w_sorted = edge_weight.data[graph.edge_ids]
        msgs = (w_sorted * x.data[graph.indices]).astype(np.float32)
    else:
        w_sorted = None
        msgs = x.data[graph.indices]
    out = _segment_max_csr(msgs, graph.indptr, graph.num_dst)
    empty = ~np.isfinite(out)
    out = np.where(empty, 0.0, out).astype(np.float32)

    winners = (msgs == out[graph.rows]) & ~empty[graph.rows] if e else np.zeros_like(msgs, bool)
    # Sum of 0/1 indicators: exact in fp32 whatever the reduction order.
    tie_count = _segment_sum_csr(winners.astype(np.float32), graph.indptr, graph.num_dst)
    tie_count = np.maximum(tie_count, 1.0)

    flops = float(e * feat_dim)
    nbytes = float(_F32 * (e * feat_dim + out.size)) + _sparse_index_bytes(graph)
    parents: Tuple[Tensor, ...] = (x,) if edge_weight is None else (x, edge_weight)
    device = current_device()
    device.track(msgs)

    def backward(grad: np.ndarray):
        launch_backward("gspmm_max_backward", float(e * feat_dim), _F32 * 3.0 * e * feat_dim)
        g_edges = (winners * grad[graph.rows] / tie_count[graph.rows]).astype(np.float32)
        if edge_weight is not None:
            gx_edges = (w_sorted * g_edges).astype(np.float32)
        else:
            gx_edges = g_edges
        gx_edges = unbroadcast(gx_edges, (e,) + x.shape[1:])
        gx = np.zeros(x.shape, dtype=np.float32)
        np.add.at(gx, graph.indices, gx_edges)
        if edge_weight is None:
            return (gx,)
        prod = (g_edges * x.data[graph.indices]).astype(np.float32)
        target_shape = (e,) + edge_weight.shape[1:]
        extra = prod.ndim - len(target_shape)
        if extra > 0:
            prod = prod.sum(axis=tuple(range(prod.ndim - extra, prod.ndim)))
        gw = np.zeros(edge_weight.shape, dtype=np.float32)
        gw[graph.edge_ids] = unbroadcast(prod, target_shape)
        return (gx, gw)

    return make_op(_sparse_kernel_name(graph, "gspmm_max"), out, parents, backward, flops, nbytes)
