"""Fused sparse-dense kernels (GSpMM / GSDDMM).

The paper observes that DGL lowers its message passing to GSpMM —
"Generalized Sparse-Matrix Dense-Matrix Multiplication" — which *fuses* two
steps into one kernel: computing messages from source-node (and optionally
edge) features, and aggregating them on destination nodes (Section IV-C).

:func:`gspmm` is that fused kernel: a single launch per call, in contrast to
the PyG-style gather + scatter pair.  :func:`gsddmm_dot` is its companion
that produces per-edge values from node features (used for attention
logits).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.device import current_device
from repro.tensor.tensor import Tensor, launch_backward, make_op, unbroadcast

_F32 = 4


class CSRGraph:
    """Compressed sparse row adjacency used by the DGL-style framework.

    Rows are destination nodes; ``indices`` hold the source node of each
    incoming edge, so ``A @ X`` aggregates source features onto destinations.
    ``edge_ids`` maps each CSR position back to the original edge ordering
    so per-edge tensors (weights, gates) line up.
    """

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, edge_ids: np.ndarray, num_src: int
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.edge_ids = np.asarray(edge_ids, dtype=np.int64)
        self.num_dst = len(self.indptr) - 1
        self.num_src = int(num_src)
        if len(self.indices) != len(self.edge_ids):
            raise ValueError("indices and edge_ids must have equal length")
        # Destination node of each CSR slot (row expansion), used by backward.
        self.rows = np.repeat(np.arange(self.num_dst), np.diff(self.indptr))
        # Sparse formats live in device memory (DGL keeps COO + CSR copies).
        device = current_device()
        for array in (self.indptr, self.indices, self.edge_ids, self.rows):
            device.track(array)

    @classmethod
    def from_edge_index(
        cls, src: np.ndarray, dst: np.ndarray, num_src: int, num_dst: int
    ) -> "CSRGraph":
        """Build CSR (by destination) from COO ``src -> dst`` edge lists."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ValueError("src and dst must have equal length")
        if len(dst) and (dst.min() < 0 or dst.max() >= num_dst):
            raise ValueError("dst index out of range")
        if len(src) and (src.min() < 0 or src.max() >= num_src):
            raise ValueError("src index out of range")
        order = np.argsort(dst, kind="stable")
        sorted_dst = dst[order]
        indptr = np.zeros(num_dst + 1, dtype=np.int64)
        np.add.at(indptr, sorted_dst + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, src[order], order, num_src)

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def in_degrees(self) -> np.ndarray:
        """In-degree of each destination node."""
        return np.diff(self.indptr)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of each source node."""
        return np.bincount(self.indices, minlength=self.num_src)

    def _matrix(self, weights: Optional[np.ndarray] = None) -> sp.csr_matrix:
        data = np.ones(self.num_edges, np.float32) if weights is None else weights
        return sp.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.num_dst, self.num_src)
        )


def _as_scalar_weight(w: np.ndarray) -> Optional[np.ndarray]:
    """Return a flat ``(E,)`` view of a scalar per-edge weight, else None."""
    if w.ndim == 1:
        return w
    if w.ndim == 2 and w.shape[1] == 1:
        return w[:, 0]
    return None


def gspmm(
    graph: CSRGraph,
    x: Tensor,
    edge_weight: Optional[Tensor] = None,
    reduce: str = "sum",
) -> Tensor:
    """Fused message + aggregate: ``out[d] = reduce_{(s,d)} w_e * x[s]``.

    One kernel launch regardless of the message/reduce combination — this is
    the fusion the paper credits GSpMM for.  ``edge_weight`` is per-edge in
    the *original* edge order; its trailing shape must broadcast against
    ``x``'s trailing shape (e.g. ``(E,)``, ``(E, 1)``, ``(E, H, 1)`` against
    node features ``(N, H, D)``).
    """
    if reduce == "max":
        return _gspmm_max(graph, x, edge_weight)
    if reduce not in ("sum", "mean"):
        raise ValueError(f"gspmm supports sum/mean/max, got {reduce!r}")
    if len(x) != graph.num_src:
        raise ValueError(f"x has {len(x)} rows, graph expects {graph.num_src}")
    e = graph.num_edges
    feat_dim = int(np.prod(x.shape[1:], dtype=np.int64)) if x.ndim > 1 else 1
    degrees = np.maximum(graph.in_degrees(), 1).astype(np.float32)

    w_csr_scalar: Optional[np.ndarray] = None
    w_sorted: Optional[np.ndarray] = None
    if edge_weight is not None:
        if len(edge_weight) != e:
            raise ValueError("edge_weight must have one row per edge")
        scalar = _as_scalar_weight(edge_weight.data)
        if scalar is not None:
            w_csr_scalar = scalar[graph.edge_ids]
        else:
            w_sorted = edge_weight.data[graph.edge_ids]

    if edge_weight is None or w_csr_scalar is not None:
        x2 = x.data.reshape(len(x), feat_dim)
        out = np.asarray(graph._matrix(w_csr_scalar) @ x2, dtype=np.float32)
        out = out.reshape((graph.num_dst,) + x.shape[1:])
    else:
        msgs = (w_sorted * x.data[graph.indices]).astype(np.float32)
        out = np.zeros((graph.num_dst,) + msgs.shape[1:], dtype=np.float32)
        np.add.at(out, graph.rows, msgs)
    if reduce == "mean":
        out = out / degrees.reshape((-1,) + (1,) * (out.ndim - 1))

    flops = 2.0 * e * feat_dim
    # The kernel reads one source row per edge (random access), the weight
    # per edge, and writes the output.
    nbytes = float(_F32 * (e * feat_dim + e + x.size + out.size))
    parents: Tuple[Tensor, ...] = (x,) if edge_weight is None else (x, edge_weight)

    # DGL's GSpMM materialises a message-frame workspace of one value per
    # edge per feature (plus CSR-ordered weight copies); it stays allocated
    # while the autograd graph holds this kernel's backward closure, which
    # is what pushes DGL's peak memory above PyG's in Fig. 4.
    device = current_device()
    workspace = np.empty((2, e, feat_dim), dtype=np.float32)
    device.track(workspace)
    if w_csr_scalar is not None:
        device.track(w_csr_scalar)
    if w_sorted is not None:
        device.track(w_sorted)

    def backward(grad: np.ndarray):
        _ = workspace  # saved-for-backward workspace, freed after this runs
        g = grad.astype(np.float32, copy=False)
        if reduce == "mean":
            g = g / degrees.reshape((-1,) + (1,) * (g.ndim - 1))
        launch_backward("gspmm_backward_x", 2.0 * e * feat_dim, _F32 * (e * feat_dim + g.size + x.size))
        if edge_weight is None or w_csr_scalar is not None:
            g2 = g.reshape(graph.num_dst, feat_dim)
            gx = np.asarray(graph._matrix(w_csr_scalar).T @ g2, np.float32).reshape(x.shape)
        else:
            per_edge = (w_sorted * g[graph.rows]).astype(np.float32)
            per_edge = unbroadcast(per_edge, (e,) + x.shape[1:])
            gx = np.zeros(x.shape, dtype=np.float32)
            np.add.at(gx, graph.indices, per_edge)
        if edge_weight is None:
            return (gx,)
        launch_backward("gspmm_backward_w", 2.0 * e * feat_dim, _F32 * (2 * e * feat_dim + e))
        prod = (g[graph.rows] * x.data[graph.indices]).astype(np.float32)
        # Reduce the per-edge product back to the edge-weight shape: sum out
        # trailing feature axes the weight does not carry, then unbroadcast
        # any remaining size-1 axes.
        target_shape = (e,) + edge_weight.shape[1:]
        extra = prod.ndim - len(target_shape)
        if extra > 0:
            prod = prod.sum(axis=tuple(range(prod.ndim - extra, prod.ndim)))
        gw_sorted = unbroadcast(prod, target_shape)
        gw = np.zeros(edge_weight.shape, dtype=np.float32)
        gw[graph.edge_ids] = gw_sorted
        return (gx, gw)

    return make_op("gspmm", out, parents, backward, flops, nbytes)


def gsddmm_dot(graph: CSRGraph, src_feat: Tensor, dst_feat: Tensor) -> Tensor:
    """Per-edge dot product over the last axis.

    ``out[e] = sum_d src_feat[src(e), ..., d] * dst_feat[dst(e), ..., d]``,
    keeping any middle axes (e.g. attention heads): features ``(N, H, D)``
    yield logits ``(E, H)``.  This is DGL's sampled dense-dense matmul
    (GSDDMM), one fused kernel.
    """
    if len(src_feat) != graph.num_src or len(dst_feat) != graph.num_dst:
        raise ValueError("feature row counts must match the graph")
    e = graph.num_edges
    feat_dim = src_feat.shape[-1]
    src_idx = graph.indices
    dst_idx = graph.rows
    prod = src_feat.data[src_idx] * dst_feat.data[dst_idx]
    out_sorted = prod.sum(axis=-1)
    out = np.zeros((e,) + out_sorted.shape[1:], dtype=np.float32)
    out[graph.edge_ids] = out_sorted
    flops = 2.0 * e * feat_dim
    nbytes = float(_F32 * (2 * e * feat_dim + out.size))

    def backward(grad: np.ndarray):
        launch_backward("gsddmm_backward", 2.0 * e * feat_dim, _F32 * 3.0 * e * feat_dim)
        g_sorted = np.expand_dims(grad[graph.edge_ids], -1).astype(np.float32)
        gs = np.zeros(src_feat.shape, dtype=np.float32)
        np.add.at(gs, src_idx, g_sorted * dst_feat.data[dst_idx])
        gd = np.zeros(dst_feat.shape, dtype=np.float32)
        np.add.at(gd, dst_idx, g_sorted * src_feat.data[src_idx])
        return gs, gd

    return make_op("gsddmm_dot", out, (src_feat, dst_feat), backward, flops, nbytes)


def _gspmm_max(graph: CSRGraph, x: Tensor, edge_weight: Optional[Tensor]) -> Tensor:
    """Fused max-aggregation GSpMM; empty destinations yield zero.

    Ties share the gradient equally (a valid subgradient), matching the
    scatter-based max reductions.
    """
    e = graph.num_edges
    feat_dim = int(np.prod(x.shape[1:], dtype=np.int64)) if x.ndim > 1 else 1
    if edge_weight is not None:
        w_sorted = edge_weight.data[graph.edge_ids]
        msgs = (w_sorted * x.data[graph.indices]).astype(np.float32)
    else:
        w_sorted = None
        msgs = x.data[graph.indices]
    out = np.full((graph.num_dst,) + msgs.shape[1:], -np.inf, dtype=np.float32)
    if e:
        np.maximum.at(out, graph.rows, msgs)
    empty = ~np.isfinite(out)
    out = np.where(empty, 0.0, out).astype(np.float32)

    winners = (msgs == out[graph.rows]) & ~empty[graph.rows] if e else np.zeros_like(msgs, bool)
    tie_count = np.zeros_like(out)
    if e:
        np.add.at(tie_count, graph.rows, winners.astype(np.float32))
    tie_count = np.maximum(tie_count, 1.0)

    flops = float(e * feat_dim)
    nbytes = float(_F32 * (e * feat_dim + out.size))
    parents: Tuple[Tensor, ...] = (x,) if edge_weight is None else (x, edge_weight)
    device = current_device()
    device.track(msgs)

    def backward(grad: np.ndarray):
        launch_backward("gspmm_max_backward", float(e * feat_dim), _F32 * 3.0 * e * feat_dim)
        g_edges = (winners * grad[graph.rows] / tie_count[graph.rows]).astype(np.float32)
        if edge_weight is not None:
            gx_edges = (w_sorted * g_edges).astype(np.float32)
        else:
            gx_edges = g_edges
        gx_edges = unbroadcast(gx_edges, (e,) + x.shape[1:])
        gx = np.zeros(x.shape, dtype=np.float32)
        np.add.at(gx, graph.indices, gx_edges)
        if edge_weight is None:
            return (gx,)
        prod = (g_edges * x.data[graph.indices]).astype(np.float32)
        target_shape = (e,) + edge_weight.shape[1:]
        extra = prod.ndim - len(target_shape)
        if extra > 0:
            prod = prod.sum(axis=tuple(range(prod.ndim - extra, prod.ndim)))
        gw = np.zeros(edge_weight.shape, dtype=np.float32)
        gw[graph.edge_ids] = unbroadcast(prod, target_shape)
        return (gx, gw)

    return make_op("gspmm_max", out, parents, backward, flops, nbytes)
