"""Per-graph sparse-format selection (COO vs CSR vs blocked-CSR).

Real GNN kernels pick a sparse layout per graph: row-parallel CSR is the
default, edge-parallel COO load-balances skewed (power-law) degree
distributions, and blocked CSR exploits dense row neighbourhoods with
vectorised block loads.  This module chooses a format from two cheap degree
statistics — mean in-degree and its coefficient of variation — and the
device cost model charges the choice two ways:

* **Efficiency**: format-tuned kernels launch under an ``@fmt``-suffixed
  name and :func:`repro.device.gpu.kernel_efficiency` scales the achieved
  roofline fraction by :data:`FORMAT_EFFICIENCY`.
* **Index traffic**: :func:`format_index_bytes` adds the bytes of the
  format's index arrays to the kernel's memory leg.

Selection is deterministic (pure arithmetic on the degree array) and cached
per :class:`~repro.tensor.ops_sparse.CSRGraph` via ``autotune_format()``.
The rules are documented in ``docs/kernels.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.device.gpu import FORMAT_EFFICIENCY  # noqa: F401  (re-export)

#: Supported sparse formats, in documentation order.
FORMATS = ("coo", "csr", "bcsr")

#: Row-block edge length for the blocked-CSR layout.
BCSR_BLOCK = 32

#: Skewness threshold: above this degree coefficient-of-variation the
#: row-parallel formats suffer straggler rows and edge-parallel COO wins.
SKEW_CV = 1.0

#: Blocked-CSR needs both dense rows (mean degree at or above this) ...
BCSR_MIN_DEGREE = 8.0

#: ... and a regular degree distribution (CV at or below this) so blocks
#: stay well filled.
BCSR_MAX_CV = 0.5

#: The per-format kernel-efficiency scaling (FORMAT_EFFICIENCY) is owned by
#: the device cost model in :mod:`repro.device.gpu` and re-exported above.

_INDEX_BYTES = 8  # int64 indices, matching CSRGraph's arrays


@dataclass(frozen=True)
class FormatDecision:
    """The cached outcome of :func:`select_format` for one graph."""

    fmt: str
    mean_degree: float
    cv_degree: float
    reason: str


def degree_stats(graph) -> Tuple[float, float]:
    """Return ``(mean, coefficient_of_variation)`` of the in-degrees."""
    degrees = graph.in_degrees().astype(np.float64)
    if len(degrees) == 0:
        return 0.0, 0.0
    mean = float(degrees.mean())
    if mean <= 0.0:
        return mean, 0.0
    return mean, float(degrees.std() / mean)


def select_format(graph) -> FormatDecision:
    """Choose a sparse format from the graph's degree statistics.

    Rules (first match wins):

    1. ``cv > SKEW_CV`` — skewed/power-law degrees: **coo** (edge-parallel,
       load-balanced; pays two indices per edge).
    2. ``mean >= BCSR_MIN_DEGREE and cv <= BCSR_MAX_CV`` — dense, regular
       rows: **bcsr** (block loads amortise index traffic).
    3. otherwise — **csr** (the row-parallel default).

    Pure arithmetic on the degree array, so the same graph always yields
    the same decision.
    """
    mean, cv = degree_stats(graph)
    if cv > SKEW_CV:
        fmt, reason = "coo", f"skewed degrees (cv={cv:.2f} > {SKEW_CV})"
    elif mean >= BCSR_MIN_DEGREE and cv <= BCSR_MAX_CV:
        fmt, reason = "bcsr", (
            f"dense regular rows (mean={mean:.1f} >= {BCSR_MIN_DEGREE}, "
            f"cv={cv:.2f} <= {BCSR_MAX_CV})"
        )
    else:
        fmt, reason = "csr", f"default (mean={mean:.1f}, cv={cv:.2f})"
    return FormatDecision(fmt=fmt, mean_degree=mean, cv_degree=cv, reason=reason)


def format_index_bytes(graph, fmt: str) -> float:
    """Bytes of index metadata a sparse kernel streams for ``fmt``.

    * ``coo``: two indices per edge (source + destination).
    * ``csr``: one column index per edge plus the row-pointer array.
    * ``bcsr``: one block-column index per :data:`BCSR_BLOCK`-edge block
      plus a blocked row-pointer array — the traffic blocking saves.
    """
    e = graph.num_edges
    n_dst = graph.num_dst
    if fmt == "coo":
        return float(_INDEX_BYTES * 2 * e)
    if fmt == "csr":
        return float(_INDEX_BYTES * (e + n_dst + 1))
    if fmt == "bcsr":
        blocks = -(-e // BCSR_BLOCK) if e else 0
        block_rows = -(-n_dst // BCSR_BLOCK) if n_dst else 0
        return float(_INDEX_BYTES * (blocks + block_rows + 1))
    raise ValueError(f"unknown sparse format {fmt!r}, expected one of {FORMATS}")
