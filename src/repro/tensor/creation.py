"""Tensor creation helpers (zeros, ones, random) with explicit RNG control.

All random creation takes a ``numpy.random.Generator`` so experiments are
reproducible seed-for-seed; the trainers create one generator per run.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.tensor.tensor import Tensor

Shape = Union[int, Sequence[int]]


def _shape(shape: Shape) -> tuple:
    if isinstance(shape, int):
        return (shape,)
    return tuple(shape)


def zeros(shape: Shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(_shape(shape), dtype=np.float32), requires_grad=requires_grad)


def ones(shape: Shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(_shape(shape), dtype=np.float32), requires_grad=requires_grad)


def full(shape: Shape, value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(
        np.full(_shape(shape), value, dtype=np.float32), requires_grad=requires_grad
    )


def randn(
    shape: Shape,
    rng: Optional[np.random.Generator] = None,
    std: float = 1.0,
    requires_grad: bool = False,
) -> Tensor:
    rng = rng or np.random.default_rng()
    data = rng.normal(0.0, std, size=_shape(shape)).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)


def uniform(
    shape: Shape,
    low: float,
    high: float,
    rng: Optional[np.random.Generator] = None,
    requires_grad: bool = False,
) -> Tensor:
    rng = rng or np.random.default_rng()
    data = rng.uniform(low, high, size=_shape(shape)).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)
