"""Adam optimizer (the paper uses Adam in every experiment, Section III-C)."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.device import current_device
from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction, matching PyTorch defaults."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        device = current_device()
        self._m = []
        self._v = []
        for p in self.params:
            m = np.zeros_like(p.data)
            v = np.zeros_like(p.data)
            device.track(m)
            device.track(v)
            self._m.append(m)
            self._v.append(v)

    def _step(self) -> None:
        device = current_device()
        self.t += 1
        bias1 = 1.0 - self.beta1**self.t
        bias2 = 1.0 - self.beta2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            # A fused Adam would be one kernel; PyTorch's default eager Adam
            # launches several per parameter, which we mirror.
            n = grad.size
            device.launch("adam_exp_avg", 2.0 * n, 12.0 * n)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            device.launch("adam_exp_avg_sq", 3.0 * n, 12.0 * n)
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            device.launch("adam_update", 5.0 * n, 16.0 * n)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        state["t"] = np.int64(self.t)
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m/{i}"] = m
            state[f"v/{i}"] = v
        return state

    def _load_state(self, state: Dict[str, np.ndarray]) -> None:
        self.t = int(state["t"])
        # Copy in place: the moment buffers are already tracked against
        # device memory, so rebinding would double-count them.
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            m[...] = state[f"m/{i}"]
            v[...] = state[f"v/{i}"]
