"""Learning-rate schedules.

The graph-classification experiments (Section IV-B) reduce the LR by half
when the validation loss has not improved for 25 epochs and stop training
once it decays below 1e-6.  :class:`ReduceLROnPlateau` implements exactly
that protocol.
"""

from __future__ import annotations

from repro.optim.optimizer import Optimizer


class ReduceLROnPlateau:
    """Halve (by ``factor``) the LR when a monitored value plateaus."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 25,
        min_lr: float = 0.0,
    ) -> None:
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        if patience < 0:
            raise ValueError("patience must be non-negative")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.best = float("inf")
        self.num_bad_epochs = 0

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    def step(self, metric: float) -> None:
        """Record one epoch's monitored value (lower is better)."""
        if metric < self.best:
            self.best = metric
            self.num_bad_epochs = 0
            return
        self.num_bad_epochs += 1
        if self.num_bad_epochs > self.patience:
            self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
            self.num_bad_epochs = 0

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The schedule's mutable state (the LR itself lives on the optimizer)."""
        return {"best": self.best, "num_bad_epochs": self.num_bad_epochs}

    def load_state_dict(self, state: dict) -> None:
        self.best = float(state["best"])
        self.num_bad_epochs = int(state["num_bad_epochs"])
