"""Plain SGD with optional momentum (baseline optimizer)."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.device import current_device
from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _step(self) -> None:
        device = current_device()
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            n = grad.size
            device.launch("sgd_update", 2.0 * n, 12.0 * n)
            if self.momentum:
                vel *= self.momentum
                vel += grad
                p.data -= self.lr * vel
            else:
                p.data -= self.lr * grad

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        for i, vel in enumerate(self._velocity):
            state[f"velocity/{i}"] = vel
        return state

    def _load_state(self, state: Dict[str, np.ndarray]) -> None:
        for i, vel in enumerate(self._velocity):
            vel[...] = state[f"velocity/{i}"]
