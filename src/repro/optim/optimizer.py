"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.device import current_device
from repro.nn.module import Parameter


class Optimizer:
    """Holds a parameter list and the common step/zero_grad plumbing."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        device = current_device()
        device.host(device.host_costs.optimizer_step_base)
        self._step()

    def _step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # state (checkpoint/resume support; values are numpy arrays so a state
    # dict can ride in the same ``.npz`` archive as the model's)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """All mutable optimizer state, keyed by stable names."""
        return {"lr": np.float64(self.lr)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict` (strict keys)."""
        expected = sorted(self.state_dict())
        got = sorted(state)
        if expected != got:
            raise KeyError(
                f"optimizer state mismatch: expected keys {expected}, got {got}"
            )
        self.lr = float(state["lr"])
        self._load_state(state)

    def _load_state(self, state: Dict[str, np.ndarray]) -> None:
        """Subclass hook; base class has no extra state."""
