"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from repro.device import current_device
from repro.nn.module import Parameter


class Optimizer:
    """Holds a parameter list and the common step/zero_grad plumbing."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        device = current_device()
        device.host(device.host_costs.optimizer_step_base)
        self._step()

    def _step(self) -> None:
        raise NotImplementedError
