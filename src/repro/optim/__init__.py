"""Optimizers and LR schedules."""

from repro.optim.adam import Adam
from repro.optim.lr_scheduler import ReduceLROnPlateau
from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD

__all__ = ["Optimizer", "Adam", "SGD", "ReduceLROnPlateau"]
