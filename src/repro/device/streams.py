"""Streams and events on the simulated clock.

The paper's Section IV-D diagnosis is that GNN training leaves the GPU idle
because CPU work (batching, framework dispatch) is *not* overlapped with
kernel execution.  Real stacks hide that work behind CUDA streams: each
stream is an ordered work queue with its own completion timeline, the host
only blocks when it explicitly synchronises, and events carry ordering
across streams.  This module is the simulated equivalent.

A :class:`Stream` does not execute anything — it is pure *time accounting*.
Work enqueued on a stream starts when (a) the host has issued it, (b) all
previously enqueued work on the stream has finished, and (c) any explicit
``after`` dependency has passed; the stream's :attr:`~Stream.ready`
timestamp is the simulated time at which its queue drains.  The wall clock
(:class:`~repro.device.clock.SimClock`) only advances past ``ready`` when
someone synchronises — that is what makes overlap *real* in the simulation
instead of a projected bound: hidden work never shows up in ``elapsed``,
un-hidden work does, and the critical path emerges from the max/wait
arithmetic rather than from an analytic formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.device.clock import SimClock

#: Stream id of the default (serial) stream.
DEFAULT_STREAM_ID = 0


@dataclass(frozen=True)
class Event:
    """A point on a stream's timeline, CUDA-event style.

    ``timestamp`` is the simulated time at which everything enqueued on the
    recording stream *before* the record call completes.  Events are
    immutable: re-recording returns a fresh event.
    """

    timestamp: float
    #: Id of the stream the event was recorded on (informational).
    stream_id: int = DEFAULT_STREAM_ID

    def query(self, clock: SimClock) -> bool:
        """True if the event has completed at the clock's current time."""
        return self.timestamp <= clock.elapsed


class Stream:
    """An ordered work queue with its own completion timeline.

    Attributes:
        id: Small integer identifying the stream (``0`` is the default
            stream); used as the Chrome-trace track id.
        name: Human-readable label (``"default"``, ``"prefetch"``, ...).
        ready: Simulated timestamp at which all enqueued work completes.
        busy: Total seconds of work executed on this stream so far.
    """

    def __init__(self, stream_id: int, name: str, clock: SimClock) -> None:
        self.id = stream_id
        self.name = name
        self._clock = clock
        self.ready: float = 0.0
        self.busy: float = 0.0

    # ------------------------------------------------------------------
    def enqueue(self, seconds: float, after: Optional[float] = None) -> float:
        """Enqueue ``seconds`` of work; returns its completion timestamp.

        The work starts at ``max(stream.ready, now, after)``: a stream
        executes in issue order, cannot run before the host issued the
        work, and honours an explicit cross-stream dependency timestamp
        (the mechanism behind :meth:`wait_event`).
        """
        if seconds < 0:
            raise ValueError(f"cannot enqueue {seconds!r}s of work")
        start = max(self.ready, self._clock.elapsed, after or 0.0)
        self.ready = start + seconds
        self.busy += seconds
        return self.ready

    # ------------------------------------------------------------------
    def record(self) -> Event:
        """Record an event capturing the stream's current completion time."""
        return Event(timestamp=max(self.ready, self._clock.elapsed), stream_id=self.id)

    def wait_event(self, event: Event) -> None:
        """Make all *subsequently* enqueued work wait for ``event``.

        The CUDA analogue is ``cudaStreamWaitEvent``: it costs the host
        nothing; it only pushes this stream's earliest start time forward.
        """
        self.ready = max(self.ready, event.timestamp)

    def query(self) -> bool:
        """True if the stream has drained at the clock's current time."""
        return self.ready <= self._clock.elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stream(id={self.id}, name={self.name!r}, ready={self.ready:.6f}s, "
            f"busy={self.busy:.6f}s)"
        )
