"""A pipelined, prefetching wrapper around any batch loader.

The paper's Section IV-D observes that serial CPU-side batching leaves the
GPU idle and that "further improvement can be achieved by overlapping CPU
runtime or data communication with GPU execution".  :class:`PrefetchLoader`
is that overlap, executed on the simulated clock rather than projected:

* collation for batch *i+1* runs on a host **worker stream**
  (``device.offload``), so its cost lands on the worker's timeline while
  the main thread trains on batch *i*;
* the H2D copy of each collated batch is enqueued on a **copy stream**,
  sequenced after the collation that produced it — the classic
  double-buffered ``pin_memory`` + ``cudaMemcpyAsync`` pattern;
* the consumer blocks on a per-batch ready :class:`~repro.device.streams.Event`
  under the ``data_loading`` phase, so only the *un-hidden* residue of
  loading shows up in the Fig. 1/2 breakdown.

The wrapper is framework-agnostic: both the ``pygx`` and ``dglx`` loaders
charge their collation and transfer costs through ``device.host`` /
``device.transfer``, which is exactly what ``offload`` redirects.  Batches
themselves are ordinary Python objects, so numerics are bitwise-identical
to iterating the inner loader directly — only the time accounting changes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Tuple

from repro.device.core import Device, current_device
from repro.device.streams import Event

#: Stream names used by every prefetching loader on a device.  Reusing
#: fixed names keeps one worker/copy timeline per device (get-or-create in
#: :meth:`Device.stream`), matching a real DataLoader's persistent workers.
WORKER_STREAM = "prefetch"
COPY_STREAM = "h2d"


class PrefetchLoader:
    """Iterate ``inner`` with ``depth`` batches collated ahead of use.

    ``depth=2`` is double buffering: while the consumer trains on batch
    *i*, batch *i+1* is already collated and its H2D copy in flight, and
    batch *i+2* starts collating the moment *i* is dequeued.
    """

    def __init__(self, inner: Any, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth!r}")
        self.inner = inner
        self.depth = depth

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self) -> Iterator[Any]:
        device = current_device()
        worker = device.stream(WORKER_STREAM)
        copy = device.stream(COPY_STREAM)
        source = iter(self.inner)
        queue: deque = deque()

        def pump() -> bool:
            """Collate one batch on the worker; False when exhausted."""
            with device.offload(worker, copy_stream=copy):
                try:
                    item = next(source)
                except StopIteration:
                    return False
            # The batch is usable once both its collation and its H2D
            # copy have landed.
            ready = Event(timestamp=max(worker.ready, copy.ready))
            queue.append((item, ready))
            return True

        for _ in range(self.depth):
            if not pump():
                break
        while queue:
            item, ready = queue.popleft()
            pump()  # refill the freed buffer before blocking
            with device.clock.phase("data_loading"):
                device.wait_event(ready)
            yield item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.inner!r}, depth={self.depth})"


def prefetch_streams(device: Device) -> Tuple[object, object]:
    """The (worker, copy) stream pair prefetching loaders use on ``device``."""
    return device.stream(WORKER_STREAM), device.stream(COPY_STREAM)
