"""Cost model for host (CPU) side work.

The paper attributes most of the PyG/DGL performance gap to *data
processing*: batching many small graphs into one big disconnected graph is
CPU work, and DGL's implementation is slower because (a) it treats every
graph as a heterograph with typed node/edge frames even when there is a
single type, and (b) its data path is backend-agnostic so it cannot use the
vectorised tensor ops of the backend (Section IV-C).

The constants below are per-operation CPU costs, calibrated so simulated
epoch times land in the same order of magnitude as the paper's Table IV/V
measurements on a 2080Ti host.  The *structure* of the model (what is charged
per graph, per node, per type) encodes the architectural differences; the
constants only set the scale.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostCostModel:
    """Per-operation CPU costs, in seconds."""

    #: Fixed cost of assembling one mini-batch with PyG-style vectorised
    #: concatenation ("advanced mini-batching" with no computational
    #: overhead beyond the concats themselves).
    pyg_batch_base: float = 80e-6
    #: Per-graph cost under PyG-style batching (slicing + offset arithmetic).
    pyg_batch_per_graph: float = 85e-6
    #: Per-byte cost of concatenating feature arrays (both frameworks).
    batch_per_byte: float = 1.0 / 4e9

    #: Fixed cost of assembling one mini-batch under DGL-style batching
    #: (heterograph construction, per-type frame setup, CSR build).
    dgl_batch_base: float = 250e-6
    #: Per-graph cost under DGL-style batching: per-type bookkeeping plus a
    #: non-vectorised (backend-agnostic) data path.
    dgl_batch_per_graph: float = 170e-6
    #: Extra per-graph cost for every additional node/edge *type* a
    #: heterograph carries (homogeneous graphs still pay for one of each).
    dgl_batch_per_type: float = 25e-6

    #: Python-level cost of fetching one sample from a dataset (indexing,
    #: collate bookkeeping); identical for both frameworks.
    fetch_per_graph: float = 3e-6

    #: Python-side scheduler cost of one DGL ``update_all`` call: message
    #: function pattern matching, heterograph dispatch, frame bookkeeping.
    #: DGL 0.5's message-passing scheduler ran in Python and is a large part
    #: of why its conv layers are "more time-consuming" (Fig. 3).
    dgl_update_all_overhead: float = 500e-6
    #: Scheduler cost of one DGL ``apply_edges`` call.
    dgl_apply_edges_overhead: float = 200e-6
    #: Cost of setting one ndata/edata frame column.
    dgl_frame_set_overhead: float = 15e-6

    #: Host work per optimiser step outside kernels (loop over param groups).
    optimizer_step_base: float = 30e-6

    #: Fixed CPU cost of one fanout neighbor-sampling call (frontier set
    #: bookkeeping, RNG setup).  Sampling is host work — the magnifying-
    #: glass characterisation (arXiv:2211.03021) finds it dominating
    #: large-graph mini-batch epochs, which is why it gets its own phase.
    sample_base: float = 60e-6
    #: Per-seed cost of fanout sampling (degree lookup, per-hop slicing).
    sample_per_seed: float = 0.4e-6
    #: Per-sampled-edge cost (neighbour gather + relabelling).
    sample_per_edge: float = 0.05e-6

    #: CPU-side cost of an accuracy/metric computation per evaluated sample.
    metric_per_sample: float = 0.1e-6


#: Default host cost model used by both framework implementations.
DEFAULT_HOST_COSTS = HostCostModel()
