"""DataParallel simulation for the multi-GPU experiment (Fig. 6).

Both frameworks in the paper parallelise over GPUs with PyTorch's
``DataParallel``: every iteration the module's parameters are broadcast from
GPU 0 to all replicas, the input mini-batch is scattered, replicas run
forward/backward in parallel, outputs are gathered and gradients reduced back
to GPU 0.

We simulate one iteration as::

    t = broadcast(params, n) + scatter(inputs, n)
        + compute(batch / n)          # replicas run in parallel
        + gather(outputs, n) + reduce(grads, n)

``compute(batch / n)`` is obtained by *actually running* the model on one
representative sub-batch (replicas are symmetric, so wall time equals the
slowest — here, the measured — replica).  Transfer terms use the PCIe model;
DataParallel's sequential scatter/gather loop over replicas makes the
overhead grow with ``n``, which is what flattens and then reverses the
scaling between 4 and 8 GPUs in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.core import Device


@dataclass(frozen=True)
class DataParallelPlan:
    """Communication plan for one DataParallel iteration."""

    n_gpus: int
    param_bytes: int
    input_bytes: int
    output_bytes: int

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")


def charge_iteration_overhead(device: Device, plan: DataParallelPlan) -> float:
    """Charge the communication cost of one DataParallel iteration.

    Returns the seconds charged.  With one GPU there is no communication,
    matching ``DataParallel``'s single-device fast path.
    """
    if plan.n_gpus == 1:
        return 0.0
    n = plan.n_gpus
    spec = device.spec
    seconds = 0.0
    # Broadcast parameters to each non-root replica (sequential copies).
    seconds += (n - 1) * spec.transfer_time(plan.param_bytes)
    # Scatter: each replica receives 1/n of the batch.
    seconds += n * spec.transfer_time(plan.input_bytes / n)
    # Gather outputs back to the root.
    seconds += n * spec.transfer_time(plan.output_bytes / n)
    # Reduce gradients (same size as parameters) from each replica.
    seconds += (n - 1) * spec.transfer_time(plan.param_bytes)
    device.host(seconds)
    return seconds
