"""Roofline queries: classify kernels as launch-, bandwidth- or compute-bound.

The source paper attributes framework performance gaps to individual
operations, and the op-level benchmarking literature (Magnifying Glass,
arXiv 2211.03021; Operation-Level Performance Benchmarking, arXiv
2207.09955) makes that systematic: place every kernel on the device's
roofline and name the resource that bounds it.  This module provides that
classification for the simulated device:

* **launch-bound** — the host-side dispatch cost is at least as large as
  the device-side body; making the kernel itself faster cannot help
  (the regime the paper measures for GNN training on small graph
  batches, and the one ``repro.compile`` fusion attacks).
* **bandwidth-bound** — the memory-traffic leg of the roofline dominates:
  arithmetic intensity sits left of the ridge point.
* **compute-bound** — the FLOP leg dominates: intensity at or right of
  the ridge point (ties go to compute, so an op *exactly at* the ridge
  classifies deterministically).

All inputs are the same FLOP / byte counts the cost model already charges
per launch, so classification is exact and deterministic — CI gates on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.device.gpu import GPUSpec, kernel_efficiency
from repro.device.kernel import KernelRecord

#: The three bound classes, in "how to fix it" order.
BOUND_CLASSES = ("launch", "bandwidth", "compute")


def classify_kernel(
    spec: GPUSpec, flops: float, bytes_moved: float, efficiency: float = 1.0
) -> str:
    """Classify one kernel launch against the roofline of ``spec``.

    The device-side body is ``max(compute_leg, memory_leg,
    min_kernel_time)`` — exactly :meth:`GPUSpec.kernel_time`.  When that
    body does not exceed the host launch overhead the launch is
    *launch-bound* regardless of its intensity: a zero-FLOP, zero-byte
    kernel lands here via the ``min_kernel_time`` floor.  Otherwise the
    longer roofline leg names the bound, with ties going to ``compute``.
    """
    compute_leg, memory_leg = spec.roofline_times(flops, bytes_moved, efficiency)
    body = max(compute_leg, memory_leg, spec.min_kernel_time)
    if body <= spec.launch_overhead:
        return "launch"
    return "compute" if compute_leg >= memory_leg else "bandwidth"


def classify_transfer(spec: GPUSpec, nbytes: float) -> str:
    """Classify a PCIe copy: latency- (``launch``) or bandwidth-bound.

    Copies do no arithmetic, so ``compute`` is impossible; a transfer is
    launch-bound while the fixed per-transfer latency is at least the
    wire time (tiny H2D copies), bandwidth-bound beyond that.
    """
    wire = nbytes / spec.pcie_bandwidth
    return "launch" if wire <= spec.pcie_latency else "bandwidth"


def classify_records(spec: GPUSpec, records: Sequence[KernelRecord]) -> str:
    """Classify an *operation* — a short sequence of launches — as a whole.

    The cell-level generalisation of :func:`classify_kernel`: if the host
    spent at least as long dispatching the launches as the device spent
    executing their bodies, the op is launch-bound (faster kernels will
    not move it).  Otherwise the dominant roofline leg, summed per launch
    at each kernel's achieved efficiency, names the bound.  ``memcpy_*``
    records are placed on the PCIe roofline instead (wire time as the
    memory leg, per-transfer latency as the dispatch cost), keeping this
    consistent with both :func:`classify_kernel` and
    :func:`classify_transfer` for a single record.
    """
    if not records:
        raise ValueError("cannot classify an empty record sequence")
    dispatch = 0.0
    body = 0.0
    compute_t = 0.0
    memory_t = 0.0
    for r in records:
        if r.name.startswith("memcpy"):
            wire = r.bytes_moved / spec.pcie_bandwidth
            dispatch += spec.pcie_latency
            body += wire
            memory_t += wire
            continue
        dispatch += spec.launch_overhead
        body += max(r.duration, spec.min_kernel_time)
        c, m = spec.roofline_times(r.flops, r.bytes_moved, kernel_efficiency(r.name))
        compute_t += c
        memory_t += m
    if dispatch >= body:
        return "launch"
    return "compute" if compute_t >= memory_t else "bandwidth"


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel family placed on the roofline.

    ``achieved_*`` rates divide the charged FLOPs / bytes by the *wall*
    time including the host launch overhead per launch, so a launch-bound
    kernel shows the small achieved fraction the paper's profiles show;
    ``frac_peak_*`` normalise by the device peaks.
    """

    name: str
    launches: int
    flops: float
    bytes_moved: float
    device_time: float
    bound: str

    #: FLOPs per byte of the kernel's aggregate work (0 for pure copies).
    intensity: float
    achieved_flops: float
    achieved_bandwidth: float
    frac_peak_flops: float
    frac_peak_bandwidth: float


def roofline_attribution(
    spec: GPUSpec, records: Sequence[KernelRecord]
) -> List[RooflinePoint]:
    """Aggregate records per kernel name into roofline points.

    Sorted by total wall time (device body + launch overhead) descending,
    the order a bottleneck report wants.
    """
    grouped: Dict[str, List[KernelRecord]] = {}
    for r in records:
        grouped.setdefault(r.name, []).append(r)
    points = []
    for name, group in grouped.items():
        launches = len(group)
        flops = sum(r.flops for r in group)
        nbytes = sum(r.bytes_moved for r in group)
        device_time = sum(r.duration for r in group)
        wall = device_time + launches * spec.launch_overhead
        points.append(
            RooflinePoint(
                name=name,
                launches=launches,
                flops=flops,
                bytes_moved=nbytes,
                device_time=device_time,
                bound=classify_records(spec, group),
                intensity=flops / nbytes if nbytes else 0.0,
                achieved_flops=flops / wall,
                achieved_bandwidth=nbytes / wall,
                frac_peak_flops=(flops / wall) / spec.peak_flops,
                frac_peak_bandwidth=(nbytes / wall) / spec.mem_bandwidth,
            )
        )
    points.sort(
        key=lambda p: p.device_time + p.launches * spec.launch_overhead, reverse=True
    )
    return points


def bound_histogram(points: Sequence[RooflinePoint]) -> Dict[str, int]:
    """Count roofline points per bound class (all three keys present)."""
    out = {cls: 0 for cls in BOUND_CLASSES}
    for p in points:
        out[p.bound] += 1
    return out
