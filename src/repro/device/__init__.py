"""Simulated hardware substrate: GPU spec, clock, memory, profiler.

The paper measures real 2080Ti GPUs with nvprof/Nsight/nvidia-smi.  This
package provides the simulated equivalents; see DESIGN.md section 2 for the
substitution rationale.
"""

from repro.device.clock import ClockSnapshot, SimClock
from repro.device.core import (
    Device,
    PRECISION_BYTE_SCALE,
    current_device,
    set_device,
    use_device,
)
from repro.device.fabric import (
    Fabric,
    FabricStats,
    Link,
    LinkSpec,
    LinkTransfer,
    NVLINK,
    PCIE_P2P,
)
from repro.device.gpu import FORMAT_EFFICIENCY, GPUSpec, RTX_2080TI, TOY_GPU, kernel_efficiency
from repro.device.host import DEFAULT_HOST_COSTS, HostCostModel
from repro.device.kernel import KernelRecord, Profiler
from repro.device.memory import MemoryPool, OutOfMemoryError
from repro.device.multigpu import DataParallelPlan, charge_iteration_overhead
from repro.device.prefetch import PrefetchLoader, prefetch_streams
from repro.device.roofline import (
    BOUND_CLASSES,
    RooflinePoint,
    bound_histogram,
    classify_kernel,
    classify_records,
    classify_transfer,
    roofline_attribution,
)
from repro.device.streams import DEFAULT_STREAM_ID, Event, Stream
from repro.device.timeline import to_chrome_trace, write_chrome_trace
from repro.device.trace_analysis import (
    KernelStats,
    duration_percentiles,
    kernel_stats,
    launch_bound_fraction,
    overlap_bound,
    top_kernels,
)

__all__ = [
    "ClockSnapshot",
    "SimClock",
    "Device",
    "PRECISION_BYTE_SCALE",
    "current_device",
    "set_device",
    "use_device",
    "Fabric",
    "FabricStats",
    "Link",
    "LinkSpec",
    "LinkTransfer",
    "NVLINK",
    "PCIE_P2P",
    "GPUSpec",
    "RTX_2080TI",
    "TOY_GPU",
    "FORMAT_EFFICIENCY",
    "kernel_efficiency",
    "HostCostModel",
    "DEFAULT_HOST_COSTS",
    "KernelRecord",
    "Profiler",
    "MemoryPool",
    "OutOfMemoryError",
    "DataParallelPlan",
    "charge_iteration_overhead",
    "Stream",
    "Event",
    "DEFAULT_STREAM_ID",
    "PrefetchLoader",
    "prefetch_streams",
    "to_chrome_trace",
    "write_chrome_trace",
    "KernelStats",
    "kernel_stats",
    "top_kernels",
    "launch_bound_fraction",
    "duration_percentiles",
    "overlap_bound",
    "BOUND_CLASSES",
    "RooflinePoint",
    "bound_histogram",
    "classify_kernel",
    "classify_records",
    "classify_transfer",
    "roofline_attribution",
]
