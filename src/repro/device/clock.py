"""Simulated wall clock for the device model.

The clock tracks two quantities:

* ``elapsed`` — total simulated wall time.  Host work and kernel launch
  overhead advance it, and so do kernel durations (the execution model is
  serial: GNN training in both frameworks studied by the paper is effectively
  synchronous, which is exactly why the paper observes low GPU utilisation).
* ``gpu_busy`` — the portion of elapsed time during which the GPU executed a
  kernel.  The paper's Eq. (5) defines GPU utilisation as
  ``gpu_busy / elapsed``; :meth:`SimClock.utilization` implements it.

The clock also attributes elapsed time to a stack of *phases* ("data_loading",
"forward", ...) so trainers can regenerate the execution-time breakdown of
Fig. 1 and Fig. 2 without any extra bookkeeping in model code.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class SimClock:
    """Accumulates simulated host and GPU time, attributed to phases."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.gpu_busy: float = 0.0
        self.idle: float = 0.0
        self.wait: float = 0.0
        self._phase_stack: List[str] = []
        self.phase_elapsed: Dict[str, float] = {}
        self.phase_gpu_busy: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # time advancement
    # ------------------------------------------------------------------
    def advance_host(self, seconds: float) -> None:
        """Advance wall time by host-side work (CPU, no GPU activity)."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds!r}s")
        self.elapsed += seconds
        phase = self.current_phase
        if phase is not None:
            self.phase_elapsed[phase] = self.phase_elapsed.get(phase, 0.0) + seconds

    def advance_idle(self, seconds: float) -> None:
        """Advance wall time with *no* work at all (server waiting for load).

        Open-loop serving (``repro.serve``) fast-forwards over quiet periods
        between request arrivals; the time still passes (so throughput and
        utilisation stay honest) but it is tracked separately from host work
        so busy fraction = ``(elapsed - idle) / elapsed`` is recoverable.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds!r}s")
        self.elapsed += seconds
        self.idle += seconds
        phase = self.current_phase
        if phase is not None:
            self.phase_elapsed[phase] = self.phase_elapsed.get(phase, 0.0) + seconds

    def advance_gpu(self, seconds: float) -> None:
        """Advance wall time by a kernel execution (GPU busy)."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds!r}s")
        self.elapsed += seconds
        self.gpu_busy += seconds
        phase = self.current_phase
        if phase is not None:
            self.phase_elapsed[phase] = self.phase_elapsed.get(phase, 0.0) + seconds
            self.phase_gpu_busy[phase] = self.phase_gpu_busy.get(phase, 0.0) + seconds

    def account_gpu_async(self, seconds: float) -> None:
        """Account a kernel executing on a non-default stream.

        The work is real GPU busy time (Eq. 5's numerator grows) but it does
        *not* advance wall time — the host keeps running and only pays when
        it synchronises with the stream (:meth:`advance_wait`).  This split
        is what lets overlapped execution raise utilisation.
        """
        if seconds < 0:
            raise ValueError(f"cannot account {seconds!r}s of GPU work")
        self.gpu_busy += seconds
        phase = self.current_phase
        if phase is not None:
            self.phase_gpu_busy[phase] = self.phase_gpu_busy.get(phase, 0.0) + seconds

    def advance_wait(self, seconds: float) -> None:
        """Advance wall time by a host-side synchronisation wait.

        The host blocks until in-flight stream work (a prefetch collation,
        an async kernel) completes.  Tracked separately from host work and
        from idle time: a waiting host is not doing work itself, but the
        machine is — ``busy_fraction`` therefore counts waits as busy.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds!r}s")
        self.elapsed += seconds
        self.wait += seconds
        phase = self.current_phase
        if phase is not None:
            self.phase_elapsed[phase] = self.phase_elapsed.get(phase, 0.0) + seconds

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> Optional[str]:
        """The innermost active phase, or ``None`` outside any phase."""
        return self._phase_stack[-1] if self._phase_stack else None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all time advanced inside the block to ``name``."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            popped = self._phase_stack.pop()
            assert popped == name

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """GPU compute utilisation per the paper's Eq. (5), in [0, 1]."""
        if self.elapsed == 0.0:
            return 0.0
        return self.gpu_busy / self.elapsed

    def busy_fraction(self) -> float:
        """Fraction of elapsed time spent doing any work (host or GPU)."""
        if self.elapsed == 0.0:
            return 0.0
        return (self.elapsed - self.idle) / self.elapsed

    def snapshot(self) -> "ClockSnapshot":
        """Capture the current counters for later differencing."""
        return ClockSnapshot(
            elapsed=self.elapsed,
            gpu_busy=self.gpu_busy,
            phase_elapsed=dict(self.phase_elapsed),
        )

    def reset(self) -> None:
        """Zero all counters.  Phase stack must be empty."""
        if self._phase_stack:
            raise RuntimeError("cannot reset the clock inside an active phase")
        self.elapsed = 0.0
        self.gpu_busy = 0.0
        self.idle = 0.0
        self.wait = 0.0
        self.phase_elapsed.clear()
        self.phase_gpu_busy.clear()


class ClockSnapshot:
    """Immutable capture of a :class:`SimClock`, supporting differencing."""

    def __init__(self, elapsed: float, gpu_busy: float, phase_elapsed: Dict[str, float]):
        self.elapsed = elapsed
        self.gpu_busy = gpu_busy
        self.phase_elapsed = phase_elapsed

    def delta(self, clock: SimClock) -> "ClockSnapshot":
        """Return counters accumulated on ``clock`` since this snapshot."""
        phases = {
            name: clock.phase_elapsed.get(name, 0.0) - self.phase_elapsed.get(name, 0.0)
            for name in set(self.phase_elapsed) | set(clock.phase_elapsed)
        }
        return ClockSnapshot(
            elapsed=clock.elapsed - self.elapsed,
            gpu_busy=clock.gpu_busy - self.gpu_busy,
            phase_elapsed=phases,
        )
