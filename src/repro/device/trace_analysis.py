"""Analysis over profiled kernel records.

Post-processing the profiler's kernel stream the way one works with an
nvprof export: top kernels by time, launch statistics, and an Amdahl-style
bound on what overlapping host work with device work could achieve — the
quantitative backing for the paper's Section IV-D optimisation advice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.device.kernel import KernelRecord


@dataclass(frozen=True)
class KernelStats:
    """Aggregate statistics for one kernel name."""

    name: str
    launches: int
    total_time: float
    mean_time: float
    total_flops: float
    total_bytes: float

    @property
    def mean_bandwidth(self) -> float:
        """Achieved bytes/s across all launches (0 when no bytes recorded)."""
        if self.total_time == 0.0:
            return 0.0
        return self.total_bytes / self.total_time


def kernel_stats(records: Sequence[KernelRecord]) -> List[KernelStats]:
    """Per-kernel-name aggregates, sorted by total time descending."""
    buckets: Dict[str, List[KernelRecord]] = {}
    for record in records:
        buckets.setdefault(record.name, []).append(record)
    stats = [
        KernelStats(
            name=name,
            launches=len(group),
            total_time=sum(r.duration for r in group),
            mean_time=sum(r.duration for r in group) / len(group),
            total_flops=sum(r.flops for r in group),
            total_bytes=sum(r.bytes_moved for r in group),
        )
        for name, group in buckets.items()
    ]
    return sorted(stats, key=lambda s: s.total_time, reverse=True)


def top_kernels(records: Sequence[KernelRecord], k: int = 10) -> List[KernelStats]:
    """The ``k`` most expensive kernels by total device time."""
    return kernel_stats(records)[:k]


def launch_bound_fraction(
    records: Sequence[KernelRecord], launch_overhead: float
) -> float:
    """Fraction of (kernel + launch) time spent in launch overhead.

    Near 1.0 means the workload is launch-bound — the regime that makes
    ENZYMES epochs shrink with batch size (Fig. 1); near 0.0 means
    bandwidth/compute-bound (DD, Fig. 2).
    """
    if not records:
        return 0.0
    kernel_time = sum(r.duration for r in records)
    launch_time = launch_overhead * len(records)
    return launch_time / (kernel_time + launch_time)


def duration_percentiles(
    records: Sequence[KernelRecord], percentiles: Sequence[float] = (50, 90, 99)
) -> Dict[float, float]:
    """Kernel-duration percentiles in seconds."""
    if not records:
        return {p: 0.0 for p in percentiles}
    durations = np.array([r.duration for r in records])
    return {p: float(np.percentile(durations, p)) for p in percentiles}


def overlap_bound(gpu_busy: float, elapsed: float) -> Tuple[float, float]:
    """(ideal overlapped time, max speedup) for a measured interval.

    With perfect overlap of host and device work the interval cannot run
    faster than ``max(gpu_busy, host_time)``; returns that bound and the
    implied speedup over the serial elapsed time.
    """
    if elapsed <= 0.0:
        return 0.0, 1.0
    host_time = max(elapsed - gpu_busy, 0.0)
    ideal = max(gpu_busy, host_time)
    return ideal, elapsed / ideal if ideal > 0 else 1.0
