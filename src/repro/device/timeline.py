"""Chrome-trace timeline export of profiled kernels.

The paper reads kernel timelines out of nvprof; the equivalent artefact
here is a ``chrome://tracing`` / Perfetto JSON built from the profiler's
kernel records.  Each kernel becomes a complete event on the "GPU" track,
named and bucketed by its innermost scope.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.device.kernel import KernelRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.device.fabric import Fabric

FABRIC_PID = 1


def to_chrome_trace(
    records: List[KernelRecord],
    stream_names: Optional[Dict[int, str]] = None,
    fabric: Optional["Fabric"] = None,
) -> str:
    """Render kernel records as a Chrome trace JSON string.

    Timestamps/durations are microseconds, as the trace format requires.
    ``timestamp`` marks each kernel's *end* on the simulated clock, so the
    start is ``end - duration``.

    Each stream becomes its own track (``tid`` = stream id), so overlapped
    prefetch/compute execution renders as parallel rows exactly like a
    multi-stream nvprof timeline.  Pass ``stream_names`` (e.g. from
    :meth:`~repro.device.Device.stream_names`) to label the tracks;
    unnamed streams fall back to ``stream <id>``.

    Alongside the kernel tracks, a counter track ("Device memory") samples
    the simulated memory in use at each kernel's retirement — the Perfetto
    equivalent of watching ``nvidia-smi`` during the step.

    Pass a recording :class:`~repro.device.fabric.Fabric`
    (``Fabric(..., record=True)``) to add an "interconnect" process whose
    tracks are the directed fabric links; every recorded transfer renders
    as a complete event on its link's row, so collective schedules show up
    exactly like NCCL's per-channel rows in an nvprof timeline.
    """
    events = []
    names = dict(stream_names or {})
    used = {r.stream for r in records} | set(names)
    # Label the tracks only when the trace is genuinely multi-stream (or
    # names were given): single-stream traces keep their legacy shape.
    if names or len(used) > 1:
        for stream_id in sorted(used):
            label = names.get(stream_id, f"stream {stream_id}")
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": stream_id,
                    "args": {"name": f"{label} (stream {stream_id})"},
                }
            )
    for record in records:
        end_us = record.timestamp * 1e6
        dur_us = record.duration * 1e6
        events.append(
            {
                "name": record.name,
                "cat": "/".join(record.scope) or "unscoped",
                "ph": "X",
                "ts": end_us - dur_us,
                "dur": dur_us,
                "pid": 0,
                "tid": record.stream,
                "args": {
                    "flops": record.flops,
                    "bytes": record.bytes_moved,
                    "scope": list(record.scope),
                    "phase": record.phase,
                },
            }
        )
        events.append(
            {
                "name": "Device memory",
                "ph": "C",
                "ts": end_us,
                "pid": 0,
                "args": {"used_mb": record.memory / 1e6},
            }
        )
    if fabric is not None and fabric.transfers:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": FABRIC_PID,
                "args": {"name": f"interconnect ({fabric.spec.name})"},
            }
        )
        link_tids = {
            pair: tid
            for tid, pair in enumerate(
                sorted({(t.src, t.dst) for t in fabric.transfers})
            )
        }
        for (src, dst), tid in link_tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": FABRIC_PID,
                    "tid": tid,
                    "args": {"name": f"link {src}->{dst}"},
                }
            )
        for transfer in fabric.transfers:
            events.append(
                {
                    "name": transfer.label or "transfer",
                    "cat": "fabric",
                    "ph": "X",
                    "ts": transfer.start * 1e6,
                    "dur": (transfer.end - transfer.start) * 1e6,
                    "pid": FABRIC_PID,
                    "tid": link_tids[(transfer.src, transfer.dst)],
                    "args": {
                        "bytes": transfer.nbytes,
                        "src": transfer.src,
                        "dst": transfer.dst,
                    },
                }
            )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def write_chrome_trace(
    records: List[KernelRecord],
    path,
    stream_names: Optional[Dict[int, str]] = None,
    fabric: Optional["Fabric"] = None,
) -> None:
    """Write the trace JSON to ``path``."""
    with open(path, "w") as fh:
        fh.write(to_chrome_trace(records, stream_names=stream_names,
                                 fabric=fabric))
