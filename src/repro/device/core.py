"""The simulated device: clock + memory + profiler behind one handle.

Every tensor operation in :mod:`repro.tensor` reports itself here via
:meth:`Device.launch`; data loaders report CPU work via :meth:`Device.host`.
A module-level *current device* (settable with :func:`use_device`) plays the
role of the CUDA current-device context.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.device.clock import SimClock
from repro.device.gpu import GPUSpec, RTX_2080TI, kernel_efficiency
from repro.device.host import DEFAULT_HOST_COSTS, HostCostModel
from repro.device.kernel import KernelRecord, Profiler
from repro.device.memory import MemoryPool
from repro.device.streams import Event, Stream


#: Precisions the device models and the tensor-byte scale each implies.
#: fp16 halves every tensor byte: 2x effective bandwidth on the memory leg,
#: half the footprint against peak memory, half the PCIe traffic.  Numerics
#: are untouched (master weights and arithmetic stay fp32), so results are
#: bitwise-identical across precisions — the policy docs/kernels.md states.
PRECISION_BYTE_SCALE = {"fp32": 1.0, "fp16": 0.5}


class Device:
    """A simulated GPU plus its host, observed through one clock.

    ``precision`` selects the roofline mode: ``"fp16"`` halves all tensor
    bytes (see :data:`PRECISION_BYTE_SCALE`), which doubles effective
    bandwidth and memory capacity for bandwidth-bound kernels while leaving
    FLOPs, launch overhead and numerics unchanged.
    """

    def __init__(
        self,
        spec: GPUSpec = RTX_2080TI,
        host_costs: HostCostModel = DEFAULT_HOST_COSTS,
        precision: str = "fp32",
    ) -> None:
        if precision not in PRECISION_BYTE_SCALE:
            raise ValueError(
                f"unknown precision {precision!r}, expected one of "
                f"{tuple(PRECISION_BYTE_SCALE)}"
            )
        self.spec = spec
        self.host_costs = host_costs
        self.precision = precision
        self._byte_scale = PRECISION_BYTE_SCALE[precision]
        self.clock = SimClock()
        self.memory = MemoryPool(spec.memory_bytes)
        self.profiler = Profiler()
        self._scope_stack: List[str] = []
        #: Wall time (host + GPU) attributed to each active scope stack —
        #: the layer-execution-time observable of the paper's Fig. 3.
        self.scope_elapsed: dict = {}
        #: Active graph-capture tracer (``repro.compile``), if any.
        self._tracer = None
        #: Active compiled-replay session (``repro.compile``), if any.
        self._replay = None
        #: Active fault injector (``repro.faults``), if any.
        self._faults = None
        #: Named streams; id 0 is the default (serial) stream.
        self.default_stream = Stream(0, "default", self.clock)
        self._streams: Dict[str, Stream] = {"default": self.default_stream}
        #: Stream that launches inside a :meth:`on` block run on (``None``
        #: outside any block — the serial default-stream semantics).
        self._current_stream: Optional[Stream] = None
        #: Streams receiving redirected host/transfer charges inside an
        #: :meth:`offload` block (``None`` outside).
        self._offload: Optional[Stream] = None
        self._offload_copy: Optional[Stream] = None

    # ------------------------------------------------------------------
    # kernel and host work
    # ------------------------------------------------------------------
    def launch(
        self,
        name: str,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        stream: Optional[Stream] = None,
    ) -> float:
        """Simulate one kernel launch; returns the kernel duration.

        The host pays the launch overhead (driver + framework dispatch).
        On the default stream (``stream=None`` outside any :meth:`on`
        block) the host then also waits out the kernel's roofline duration
        — the serial launch-then-wait model matching the low-utilisation
        regime the paper measures for GNN training.  On an explicit stream
        the kernel is *enqueued* instead: the host returns after the launch
        overhead, the stream's timeline carries the duration, and wall time
        only meets it at a synchronisation point.

        Under compiled replay the launch is routed through the active
        :class:`~repro.compile.plan.ReplaySession`, which charges the fused
        schedule instead; under capture the launch additionally streams into
        the active tracer.

        With a fault injector installed (:meth:`injecting`), the injector
        is consulted *before* routing: it may charge a host stall or raise
        a :class:`~repro.faults.KernelFault`.  The hook sits above the
        capture/replay dispatch so eager and compiled execution see the
        same fault-decision stream.
        """
        if stream is None:
            stream = self._current_stream
        # Precision scaling applies at the entry point so eager, captured
        # and replayed launches all see the same (scaled) byte counts.
        bytes_moved = bytes_moved * self._byte_scale
        if self._faults is not None:
            self._faults.on_launch(self, name)
        if self._replay is not None:
            return self._replay.on_launch(self, name, flops, bytes_moved, stream)
        duration = self._launch_eager(name, flops, bytes_moved, stream)
        if self._tracer is not None:
            self._tracer.on_launch(name, flops, bytes_moved, self.current_scope)
        return duration

    def _launch_eager(
        self,
        name: str,
        flops: float,
        bytes_moved: float,
        stream: Optional[Stream] = None,
    ) -> float:
        """Charge one kernel launch at its eager cost."""
        offloaded = self._offload is not None and stream is not None and stream is not self.default_stream
        if offloaded:
            # A host *worker* (an offloaded replica/loader process) issues
            # the launch: the overhead lands on the worker's timeline, not
            # the shared frontend clock, and the kernel cannot start before
            # the worker has issued it.
            self._offload.enqueue(self.spec.launch_overhead)
        else:
            self.clock.advance_host(self.spec.launch_overhead)
        duration = self.spec.kernel_time(flops, bytes_moved, kernel_efficiency(name))
        if stream is None or stream is self.default_stream:
            self.clock.advance_gpu(duration)
            self._attribute_scope(self.spec.launch_overhead + duration)
            timestamp = self.clock.elapsed
            stream_id = self.default_stream.id
            self.default_stream.busy += duration
            self.default_stream.ready = timestamp
        else:
            # Async: the stream carries the duration; the host only paid
            # the launch overhead, so only that much wall time is
            # attributable to the enclosing scope.
            timestamp = stream.enqueue(
                duration, after=self._offload.ready if offloaded else None
            )
            self.clock.account_gpu_async(duration)
            if not offloaded:
                self._attribute_scope(self.spec.launch_overhead)
            stream_id = stream.id
        self.profiler.record(
            KernelRecord(
                name=name,
                scope=tuple(self._scope_stack),
                duration=duration,
                flops=flops,
                bytes_moved=bytes_moved,
                timestamp=timestamp,
                memory=self.memory.current,
                stream=stream_id,
                phase=self.clock.current_phase or "",
            )
        )
        return duration

    # ------------------------------------------------------------------
    # streams and events
    # ------------------------------------------------------------------
    def stream(self, name: str) -> Stream:
        """Return the named stream, creating it on first use.

        Get-or-create semantics let long-lived components (a prefetching
        loader, a serving simulator) reattach to the same timeline across
        epochs without threading stream handles everywhere.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        created = Stream(len(self._streams), name, self.clock)
        self._streams[name] = created
        return created

    @property
    def streams(self) -> List[Stream]:
        """All streams created on this device, default stream first."""
        return sorted(self._streams.values(), key=lambda s: s.id)

    def stream_names(self) -> Dict[int, str]:
        """Mapping of stream id to name (for the Chrome-trace tracks)."""
        return {s.id: s.name for s in self._streams.values()}

    @property
    def current_stream(self) -> Stream:
        """The stream launches currently target (default outside :meth:`on`)."""
        return self._current_stream or self.default_stream

    @contextmanager
    def on(self, stream: Stream) -> Iterator[Stream]:
        """Launch every kernel in the block asynchronously on ``stream``.

        The CUDA analogue of setting the current stream: host launch
        overhead stays serial, kernel durations land on the stream's
        timeline, and the host meets them again at :meth:`synchronize` /
        :meth:`wait_event`.
        """
        previous = self._current_stream
        self._current_stream = None if stream is self.default_stream else stream
        try:
            yield stream
        finally:
            self._current_stream = previous

    @contextmanager
    def offload(self, stream: Stream, copy_stream: Optional[Stream] = None) -> Iterator[Stream]:
        """Charge host work in the block to ``stream`` instead of the clock.

        Models a host *worker* (a prefetching DataLoader process): the work
        still costs what it costs, but on the worker's timeline, so the
        main host thread keeps running.  ``copy_stream`` receives
        :meth:`transfer` charges issued inside the block (the H2D copy of
        a collated batch), sequenced after the producing work on
        ``stream`` — a transfer cannot start before the buffer it copies
        exists.  Without a ``copy_stream``, transfers stay on ``stream``.
        """
        if self._offload is not None:
            raise RuntimeError("device already has an active offload stream")
        # A worker cannot have started before the host asked it to.
        stream.ready = max(stream.ready, self.clock.elapsed)
        self._offload = stream
        self._offload_copy = copy_stream or stream
        try:
            yield stream
        finally:
            self._offload = None
            self._offload_copy = None

    def record_event(self, stream: Optional[Stream] = None) -> Event:
        """Record an event on ``stream`` (default stream if omitted)."""
        return (stream or self.default_stream).record()

    def wait_event(self, event: Event) -> None:
        """Block the host until ``event`` completes (cudaEventSynchronize).

        Advances wall time to the event's timestamp when it lies in the
        future; free when the event already completed.
        """
        gap = event.timestamp - self.clock.elapsed
        if gap > 0:
            self.clock.advance_wait(gap)

    def synchronize(self, target: Union[Stream, Event, None] = None) -> None:
        """Block the host until ``target`` (or every stream) has drained."""
        if isinstance(target, Event):
            timestamp = target.timestamp
        elif isinstance(target, Stream):
            timestamp = target.ready
        else:
            timestamp = max(s.ready for s in self._streams.values())
        gap = timestamp - self.clock.elapsed
        if gap > 0:
            self.clock.advance_wait(gap)

    # ------------------------------------------------------------------
    # graph capture / compiled replay (repro.compile)
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The active capture tracer, or ``None`` outside capture."""
        return self._tracer

    @property
    def capturing_or_replaying(self) -> bool:
        return self._tracer is not None or self._replay is not None

    @contextmanager
    def capturing(self, tracer) -> Iterator[None]:
        """Stream every launch in the block into ``tracer``."""
        if self.capturing_or_replaying:
            raise RuntimeError("device is already capturing or replaying")
        self._tracer = tracer
        try:
            yield
        finally:
            self._tracer = None

    @contextmanager
    def replaying(self, session) -> Iterator[None]:
        """Route every launch in the block through a replay ``session``."""
        if self.capturing_or_replaying:
            raise RuntimeError("device is already capturing or replaying")
        self._replay = session
        try:
            yield
        finally:
            self._replay = None
            session.finish(self)

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------
    @property
    def faults(self):
        """The active :class:`~repro.faults.FaultInjector`, or ``None``."""
        return self._faults

    @contextmanager
    def injecting(self, plan) -> Iterator[object]:
        """Inject faults from ``plan`` into every launch/alloc in the block.

        ``plan`` is a :class:`~repro.faults.FaultPlan` (a fresh injector is
        started from it) or an already-started
        :class:`~repro.faults.FaultInjector` (so a caller can keep one
        decision stream across several blocks, e.g. restart attempts of a
        fault-tolerant training run).  Yields the active injector.
        """
        if self._faults is not None:
            raise RuntimeError("device already has an active fault injector")
        injector = plan.start() if hasattr(plan, "start") else plan
        self._faults = injector
        self.memory.injector = injector
        try:
            yield injector
        finally:
            self._faults = None
            self.memory.injector = None

    def host(self, seconds: float) -> None:
        """Charge host-side (CPU) work to the clock.

        Inside an :meth:`offload` block the charge lands on the worker
        stream's timeline instead: the main host thread keeps running and
        only meets the work again at a synchronisation point.
        """
        if self._offload is not None:
            self._offload.enqueue(seconds)
            return
        self.clock.advance_host(seconds)
        self._attribute_scope(seconds)

    def _attribute_scope(self, seconds: float) -> None:
        if self._scope_stack:
            key = tuple(self._scope_stack)
            self.scope_elapsed[key] = self.scope_elapsed.get(key, 0.0) + seconds

    def scope_component_time(self, component: str, since: Optional[dict] = None) -> float:
        """Elapsed time spent in scopes containing ``component``.

        ``since`` is an earlier copy of :attr:`scope_elapsed` to difference
        against (pass ``dict(device.scope_elapsed)`` taken before the
        region of interest).
        """
        total = 0.0
        for key, value in self.scope_elapsed.items():
            if component in key:
                total += value - (since or {}).get(key, 0.0)
        return total

    def transfer(self, nbytes: float) -> None:
        """Charge a PCIe transfer (host<->device or peer-to-peer).

        Inside an :meth:`offload` block the copy is enqueued on the block's
        copy stream, sequenced after the worker stream's pending work — the
        double-buffered H2D pattern of a prefetching loader.

        Copies are recorded in the profiler as ``memcpy_h2d`` with
        ``flops=0`` and ``bytes_moved=nbytes`` so operation-level
        attribution (:mod:`repro.device.roofline`) sees transfer traffic —
        nvprof reports ``[CUDA memcpy HtoD]`` rows the same way.
        """
        nbytes = nbytes * self._byte_scale
        duration = self.spec.transfer_time(nbytes)
        if self._offload is not None:
            copy = self._offload_copy or self._offload
            timestamp = copy.enqueue(duration, after=self._offload.ready)
            self._record_transfer(nbytes, duration, timestamp, copy.id)
            return
        self.clock.advance_host(duration)
        self._record_transfer(nbytes, duration, self.clock.elapsed, self.default_stream.id)

    def _record_transfer(
        self, nbytes: float, duration: float, timestamp: float, stream_id: int
    ) -> None:
        self.profiler.record(
            KernelRecord(
                name="memcpy_h2d",
                scope=tuple(self._scope_stack),
                duration=duration,
                flops=0.0,
                bytes_moved=float(nbytes),
                timestamp=timestamp,
                memory=self.memory.current,
                stream=stream_id,
                phase=self.clock.current_phase or "",
            )
        )

    # ------------------------------------------------------------------
    # scopes (used by nn.Module for Fig. 3 layer-wise attribution)
    # ------------------------------------------------------------------
    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Tag kernels launched inside the block with ``name``."""
        self._scope_stack.append(name)
        try:
            yield
        finally:
            self._scope_stack.pop()

    @property
    def current_scope(self) -> Tuple[str, ...]:
        return tuple(self._scope_stack)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def track(self, array) -> None:
        """Account a numpy buffer against device memory (freed on GC).

        Under fp16 precision the charge is half the array's fp32 bytes —
        tensors ship at half width, so peak memory effectively doubles.
        """
        self.memory.track(array, scale=self._byte_scale)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset clock, profiler records and the memory high-water mark."""
        self.clock.reset()
        self.profiler.clear()
        self.memory.reset_peak()
        self.scope_elapsed.clear()
        for stream in self._streams.values():
            stream.ready = 0.0
            stream.busy = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.spec.name!r}, elapsed={self.clock.elapsed:.6f}s)"


_CURRENT: Device = Device()


def current_device() -> Device:
    """Return the active simulated device."""
    return _CURRENT


def set_device(device: Device) -> None:
    """Replace the active simulated device."""
    global _CURRENT
    _CURRENT = device


@contextmanager
def use_device(device: Device) -> Iterator[Device]:
    """Temporarily make ``device`` the active device."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = device
    try:
        yield device
    finally:
        _CURRENT = previous
