"""The simulated device: clock + memory + profiler behind one handle.

Every tensor operation in :mod:`repro.tensor` reports itself here via
:meth:`Device.launch`; data loaders report CPU work via :meth:`Device.host`.
A module-level *current device* (settable with :func:`use_device`) plays the
role of the CUDA current-device context.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

from repro.device.clock import SimClock
from repro.device.gpu import GPUSpec, RTX_2080TI, kernel_efficiency
from repro.device.host import DEFAULT_HOST_COSTS, HostCostModel
from repro.device.kernel import KernelRecord, Profiler
from repro.device.memory import MemoryPool


class Device:
    """A simulated GPU plus its host, observed through one clock."""

    def __init__(
        self,
        spec: GPUSpec = RTX_2080TI,
        host_costs: HostCostModel = DEFAULT_HOST_COSTS,
    ) -> None:
        self.spec = spec
        self.host_costs = host_costs
        self.clock = SimClock()
        self.memory = MemoryPool(spec.memory_bytes)
        self.profiler = Profiler()
        self._scope_stack: List[str] = []
        #: Wall time (host + GPU) attributed to each active scope stack —
        #: the layer-execution-time observable of the paper's Fig. 3.
        self.scope_elapsed: dict = {}
        #: Active graph-capture tracer (``repro.compile``), if any.
        self._tracer = None
        #: Active compiled-replay session (``repro.compile``), if any.
        self._replay = None
        #: Active fault injector (``repro.faults``), if any.
        self._faults = None

    # ------------------------------------------------------------------
    # kernel and host work
    # ------------------------------------------------------------------
    def launch(self, name: str, flops: float = 0.0, bytes_moved: float = 0.0) -> float:
        """Simulate one kernel launch; returns the kernel duration.

        The host pays the launch overhead (driver + framework dispatch) and
        the GPU is then busy for the roofline duration.  The serial model —
        launch, then wait — matches the low-utilisation regime the paper
        measures for GNN training.

        Under compiled replay the launch is routed through the active
        :class:`~repro.compile.plan.ReplaySession`, which charges the fused
        schedule instead; under capture the launch additionally streams into
        the active tracer.

        With a fault injector installed (:meth:`injecting`), the injector
        is consulted *before* routing: it may charge a host stall or raise
        a :class:`~repro.faults.KernelFault`.  The hook sits above the
        capture/replay dispatch so eager and compiled execution see the
        same fault-decision stream.
        """
        if self._faults is not None:
            self._faults.on_launch(self, name)
        if self._replay is not None:
            return self._replay.on_launch(self, name, flops, bytes_moved)
        duration = self._launch_eager(name, flops, bytes_moved)
        if self._tracer is not None:
            self._tracer.on_launch(name, flops, bytes_moved, self.current_scope)
        return duration

    def _launch_eager(self, name: str, flops: float, bytes_moved: float) -> float:
        """Charge one kernel launch at its eager cost."""
        self.clock.advance_host(self.spec.launch_overhead)
        duration = self.spec.kernel_time(flops, bytes_moved, kernel_efficiency(name))
        self.clock.advance_gpu(duration)
        self._attribute_scope(self.spec.launch_overhead + duration)
        self.profiler.record(
            KernelRecord(
                name=name,
                scope=tuple(self._scope_stack),
                duration=duration,
                flops=flops,
                bytes_moved=bytes_moved,
                timestamp=self.clock.elapsed,
                memory=self.memory.current,
            )
        )
        return duration

    # ------------------------------------------------------------------
    # graph capture / compiled replay (repro.compile)
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The active capture tracer, or ``None`` outside capture."""
        return self._tracer

    @property
    def capturing_or_replaying(self) -> bool:
        return self._tracer is not None or self._replay is not None

    @contextmanager
    def capturing(self, tracer) -> Iterator[None]:
        """Stream every launch in the block into ``tracer``."""
        if self.capturing_or_replaying:
            raise RuntimeError("device is already capturing or replaying")
        self._tracer = tracer
        try:
            yield
        finally:
            self._tracer = None

    @contextmanager
    def replaying(self, session) -> Iterator[None]:
        """Route every launch in the block through a replay ``session``."""
        if self.capturing_or_replaying:
            raise RuntimeError("device is already capturing or replaying")
        self._replay = session
        try:
            yield
        finally:
            self._replay = None
            session.finish(self)

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------
    @property
    def faults(self):
        """The active :class:`~repro.faults.FaultInjector`, or ``None``."""
        return self._faults

    @contextmanager
    def injecting(self, plan) -> Iterator[object]:
        """Inject faults from ``plan`` into every launch/alloc in the block.

        ``plan`` is a :class:`~repro.faults.FaultPlan` (a fresh injector is
        started from it) or an already-started
        :class:`~repro.faults.FaultInjector` (so a caller can keep one
        decision stream across several blocks, e.g. restart attempts of a
        fault-tolerant training run).  Yields the active injector.
        """
        if self._faults is not None:
            raise RuntimeError("device already has an active fault injector")
        injector = plan.start() if hasattr(plan, "start") else plan
        self._faults = injector
        self.memory.injector = injector
        try:
            yield injector
        finally:
            self._faults = None
            self.memory.injector = None

    def host(self, seconds: float) -> None:
        """Charge host-side (CPU) work to the clock."""
        self.clock.advance_host(seconds)
        self._attribute_scope(seconds)

    def _attribute_scope(self, seconds: float) -> None:
        if self._scope_stack:
            key = tuple(self._scope_stack)
            self.scope_elapsed[key] = self.scope_elapsed.get(key, 0.0) + seconds

    def scope_component_time(self, component: str, since: Optional[dict] = None) -> float:
        """Elapsed time spent in scopes containing ``component``.

        ``since`` is an earlier copy of :attr:`scope_elapsed` to difference
        against (pass ``dict(device.scope_elapsed)`` taken before the
        region of interest).
        """
        total = 0.0
        for key, value in self.scope_elapsed.items():
            if component in key:
                total += value - (since or {}).get(key, 0.0)
        return total

    def transfer(self, nbytes: float) -> None:
        """Charge a PCIe transfer (host<->device or peer-to-peer)."""
        self.clock.advance_host(self.spec.transfer_time(nbytes))

    # ------------------------------------------------------------------
    # scopes (used by nn.Module for Fig. 3 layer-wise attribution)
    # ------------------------------------------------------------------
    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Tag kernels launched inside the block with ``name``."""
        self._scope_stack.append(name)
        try:
            yield
        finally:
            self._scope_stack.pop()

    @property
    def current_scope(self) -> Tuple[str, ...]:
        return tuple(self._scope_stack)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def track(self, array) -> None:
        """Account a numpy buffer against device memory (freed on GC)."""
        self.memory.track(array)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset clock, profiler records and the memory high-water mark."""
        self.clock.reset()
        self.profiler.clear()
        self.memory.reset_peak()
        self.scope_elapsed.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.spec.name!r}, elapsed={self.clock.elapsed:.6f}s)"


_CURRENT: Device = Device()


def current_device() -> Device:
    """Return the active simulated device."""
    return _CURRENT


def set_device(device: Device) -> None:
    """Replace the active simulated device."""
    global _CURRENT
    _CURRENT = device


@contextmanager
def use_device(device: Device) -> Iterator[Device]:
    """Temporarily make ``device`` the active device."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = device
    try:
        yield device
    finally:
        _CURRENT = previous
