"""Hardware specifications for the simulated GPU.

The paper runs every experiment on NVIDIA GeForce RTX 2080 Ti cards.  We model
a GPU with a small set of parameters that feed a roofline kernel cost model:
peak fp32 throughput, memory bandwidth, a fixed host-side launch overhead and
a minimum kernel duration (even a tiny kernel occupies the device for a couple
of microseconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU used by the cost model.

    Attributes:
        name: Human readable device name.
        peak_flops: Peak fp32 throughput in FLOP/s.
        mem_bandwidth: Device memory bandwidth in bytes/s.
        memory_bytes: Device memory capacity in bytes.
        launch_overhead: Host-side time to launch one kernel, in seconds.
            This models CUDA driver plus Python framework dispatch cost and
            is the dominant term for the tiny kernels GNNs issue on small
            graph batches.
        min_kernel_time: Minimum duration a kernel occupies the device, in
            seconds.
        pcie_bandwidth: Host<->device / peer-to-peer transfer bandwidth in
            bytes/s (PCIe 3.0 x16).
        pcie_latency: Fixed latency per transfer, in seconds.
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    memory_bytes: int
    launch_overhead: float = 35e-6
    min_kernel_time: float = 3e-6
    pcie_bandwidth: float = 12e9
    pcie_latency: float = 10e-6

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (FLOP/byte) where the roofline legs meet.

        Independent of the per-kernel ``efficiency`` factor because that
        factor derates both legs equally; below this intensity a kernel is
        bandwidth-limited, above it compute-limited.
        """
        return self.peak_flops / self.mem_bandwidth

    def roofline_times(
        self, flops: float, bytes_moved: float, efficiency: float = 1.0
    ) -> "Tuple[float, float]":
        """Return the ``(compute, memory)`` legs of the roofline, in seconds.

        The raw per-leg durations *before* the ``min_kernel_time`` floor;
        :meth:`kernel_time` takes their max, and the roofline classifier
        (:mod:`repro.device.roofline`) compares them to name the bound.
        """
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        compute_leg = flops / (self.peak_flops * efficiency)
        memory_leg = bytes_moved / (self.mem_bandwidth * efficiency)
        return compute_leg, memory_leg

    def kernel_time(self, flops: float, bytes_moved: float, efficiency: float = 1.0) -> float:
        """Return the device-side duration of a kernel via a roofline model.

        The kernel is limited either by arithmetic throughput or by memory
        bandwidth, whichever bound is higher, and never finishes faster than
        ``min_kernel_time``.  ``efficiency`` scales the achievable peak:
        dense BLAS kernels run near the roofline, sparse/indirect kernels
        (scatter, GSpMM) achieve a fraction of it.
        """
        compute_bound, memory_bound = self.roofline_times(flops, bytes_moved, efficiency)
        return max(compute_bound, memory_bound, self.min_kernel_time)

    def transfer_time(self, nbytes: float) -> float:
        """Return the time to move ``nbytes`` across PCIe."""
        return self.pcie_latency + nbytes / self.pcie_bandwidth


#: Achieved fraction of the roofline per kernel family.  Sparse/indirect
#: kernels (GSpMM, scatter) reach a fraction of peak bandwidth because of
#: random access; dense BLAS/elementwise kernels run near it.  Matched by
#: kernel-name prefix, first hit wins.
KERNEL_EFFICIENCY = (
    ("gspmm", 0.2),
    ("gsddmm", 0.2),
    ("edge_softmax", 0.2),
    ("coo_to_csr", 0.2),
    ("segment_reduce", 0.45),
    ("segment_sum", 0.45),
    ("segment_mean", 0.45),
    ("segment_max", 0.45),
    ("scatter", 0.5),
    ("gather", 0.5),
    ("grad_accumulate", 0.85),
)


#: Relative efficiency of each sparse format versus plain CSR, applied when
#: a kernel name carries an ``@fmt`` suffix (a format-tuned graph, see
#: :mod:`repro.tensor.formats`).  Blocked CSR streams contiguous blocks
#: (fewer, wider loads); COO trades extra index traffic for perfect
#: edge-level load balance on skewed graphs.
FORMAT_EFFICIENCY = {"coo": 1.15, "csr": 1.0, "bcsr": 1.75}

#: Format scaling never pushes a sparse kernel past this achieved fraction.
_FORMAT_EFFICIENCY_CAP = 0.95


def kernel_efficiency(name: str) -> float:
    """Look up the roofline efficiency for a kernel by name prefix.

    A ``base@fmt`` name (format-tuned sparse kernel) resolves the base
    prefix first, then scales by :data:`FORMAT_EFFICIENCY`, capped below
    peak — a blocked-CSR GSpMM achieves a higher fraction of the roofline
    than the same kernel on unblocked CSR, never more than a dense kernel.
    """
    base, _, fmt = name.partition("@")
    eff = 0.85
    for prefix, prefix_eff in KERNEL_EFFICIENCY:
        if base.startswith(prefix):
            eff = prefix_eff
            break
    if fmt:
        eff = min(_FORMAT_EFFICIENCY_CAP, eff * FORMAT_EFFICIENCY.get(fmt, 1.0))
    return eff


#: The card used throughout the paper's evaluation (Section IV).
RTX_2080TI = GPUSpec(
    name="NVIDIA GeForce RTX 2080 Ti",
    peak_flops=13.45e12,
    mem_bandwidth=616e9,
    memory_bytes=11 * 1024**3,
)

#: A deliberately slow/small device, handy for OOM and sensitivity tests.
TOY_GPU = GPUSpec(
    name="toy-gpu",
    peak_flops=1e12,
    mem_bandwidth=100e9,
    memory_bytes=64 * 1024**2,
)
