"""Kernel launch records and the scoped profiler.

The paper collects per-kernel timings with nvprof / Nsight Compute and
aggregates them per conv layer (Fig. 3).  We reproduce that observable by
recording every simulated kernel launch together with the *scope stack*
active at launch time.  Model layers push their name onto the scope stack in
``Module.__call__``, so a record's scope looks like
``("GCNNet", "layers.0", "linear")`` and Fig. 3 is a group-by over prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class KernelRecord:
    """One simulated kernel launch."""

    name: str
    scope: Tuple[str, ...]
    duration: float
    flops: float
    bytes_moved: float
    timestamp: float
    #: Simulated device memory in use when the kernel retired, in bytes.
    #: Defaults to 0.0 so records built by older call sites stay valid.
    memory: float = 0.0
    #: Id of the stream the kernel executed on (0 = default stream), so
    #: the Chrome trace can render one track per stream.
    stream: int = 0
    #: Training-loop phase active at launch ("sampling", "data_loading",
    #: "forward", "comm", ...; empty outside any phase).  Lets sampled-
    #: training profiles attribute sampler time separately from data
    #: loading and compute, and distributed profiles attribute collective
    #: ("nccl:*") kernels to "comm".  Defaults to "" so records built by
    #: older call sites stay valid.
    phase: str = ""

    def in_scope(self, prefix: Sequence[str]) -> bool:
        """True if this kernel ran under the given scope prefix."""
        prefix = tuple(prefix)
        return self.scope[: len(prefix)] == prefix


class Profiler:
    """Collects :class:`KernelRecord` objects when enabled.

    Recording is off by default so long training runs do not accumulate
    unbounded lists; benches enable it around the single step they want to
    dissect (mirroring how the paper profiles one training batch).
    """

    def __init__(self) -> None:
        self.enabled: bool = False
        self.records: List[KernelRecord] = []

    def record(self, record: KernelRecord) -> None:
        if self.enabled:
            self.records.append(record)

    def clear(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------------
    # aggregation helpers used by the Fig. 3 bench
    # ------------------------------------------------------------------
    def total_time(self, prefix: Optional[Sequence[str]] = None) -> float:
        """Sum of kernel durations, optionally restricted to a scope prefix."""
        if prefix is None:
            return sum(r.duration for r in self.records)
        return sum(r.duration for r in self.records if r.in_scope(prefix))

    def time_by_top_scope(self, depth: int = 1) -> Dict[Tuple[str, ...], float]:
        """Aggregate kernel time by the first ``depth`` scope components."""
        out: Dict[Tuple[str, ...], float] = {}
        for r in self.records:
            key = r.scope[:depth]
            out[key] = out.get(key, 0.0) + r.duration
        return out

    def time_by_kernel(self) -> Dict[str, float]:
        """Aggregate kernel time by kernel name (e.g. ``gspmm``)."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0.0) + r.duration
        return out

    def time_by_scope_component(self, component: str) -> float:
        """Kernel time for records whose scope contains ``component``."""
        return sum(r.duration for r in self.records if component in r.scope)

    def time_by_stream(self) -> Dict[int, float]:
        """Aggregate kernel time by stream id (0 = default stream)."""
        out: Dict[int, float] = {}
        for r in self.records:
            out[r.stream] = out.get(r.stream, 0.0) + r.duration
        return out

    def time_by_phase(self) -> Dict[str, float]:
        """Aggregate kernel time by training-loop phase.

        Records launched outside any clock phase land under ``"other"``.
        Sampled-training profiles use this to separate "sampling" cost
        from "data_loading" and the compute phases; DDP training adds a
        "comm" phase carrying the collective (``nccl:*``) kernels.
        """
        out: Dict[str, float] = {}
        for r in self.records:
            key = r.phase or "other"
            out[key] = out.get(key, 0.0) + r.duration
        return out
