"""Simulated device memory pool with peak tracking.

Every tensor (and gradient buffer) that the engine materialises "on the GPU"
registers its byte size here.  Buffers are released when the owning numpy
array is garbage collected, which mirrors the lifetime behaviour of a real
caching allocator closely enough for the paper's purposes: activations stay
alive through the backward pass because the autograd graph references them,
so the peak naturally lands at the end of the forward pass, exactly where
PyTorch's peak sits.

The paper reads peak usage off ``nvidia-smi``; benchmarks here read it off
:meth:`MemoryPool.peak`.
"""

from __future__ import annotations

import weakref
from typing import Any


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation would exceed the device capacity."""


class MemoryPool:
    """Tracks current and peak simulated memory usage of one device."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("device capacity must be positive")
        self.capacity = capacity_bytes
        self.current: int = 0
        self._peak: int = 0
        #: Active :class:`~repro.faults.FaultInjector`, installed by
        #: :meth:`Device.injecting`; consulted on every :meth:`alloc`.
        self.injector = None
        # numpy arrays are unhashable, so track identities; the finalizer
        # removes the id at the same moment the bytes are freed, which makes
        # CPython id reuse safe.
        self._tracked: set = set()

    # ------------------------------------------------------------------
    def alloc(self, nbytes: int) -> None:
        """Reserve ``nbytes``; raises :class:`OutOfMemoryError` on overflow."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.injector is not None:
            self.injector.on_alloc(self, nbytes)
        if self.current + nbytes > self.capacity:
            raise OutOfMemoryError(
                f"device out of memory: requested {nbytes} bytes "
                f"with {self.current} in use of {self.capacity} capacity "
                f"({self.capacity - self.current} free)"
            )
        self.current += nbytes
        if self.current > self._peak:
            self._peak = self.current

    def free(self, nbytes: int) -> None:
        """Release ``nbytes`` previously reserved with :meth:`alloc`."""
        self.current = max(0, self.current - nbytes)

    def track(self, array: Any, scale: float = 1.0) -> None:
        """Account ``array`` (a numpy ndarray) against this pool.

        The bytes are freed automatically when the array is garbage
        collected.  Tracking the same array twice is a no-op, so wrapping an
        already-tracked buffer in a second view or Tensor is safe.
        ``scale`` adjusts the charged size (0.5 under the device's fp16
        precision mode: tensors ship at half width).
        """
        key = id(array)
        if key in self._tracked:
            return
        nbytes = int(array.nbytes * scale)
        self.alloc(nbytes)
        self._tracked.add(key)
        weakref.finalize(array, self._release, key, nbytes)

    def _release(self, key: int, nbytes: int) -> None:
        self._tracked.discard(key)
        self.free(nbytes)

    # ------------------------------------------------------------------
    @property
    def peak(self) -> int:
        """High-water mark of simulated usage, in bytes."""
        return self._peak

    def reset_peak(self) -> None:
        """Reset the high-water mark to the current usage."""
        self._peak = self.current
