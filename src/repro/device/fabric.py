"""Modelled interconnect fabric between replica devices.

The paper's multi-GPU study (Fig. 6) runs on a single host whose GPUs talk
over PCIe; modern DDP training instead moves gradients over NVLink-class
links with NCCL collectives.  This module models that substrate: a
:class:`Fabric` is a set of directed point-to-point :class:`Link` objects
between ``world_size`` replicas, each link a private timeline on the
simulated clock (timestamps are :class:`~repro.device.SimClock` seconds).

Like :class:`~repro.device.Stream`, a link executes nothing — it is pure
time accounting.  A transfer occupies its link for ``latency +
nbytes / bandwidth`` seconds starting no earlier than both the caller's
``earliest`` timestamp and the link's previous transfer draining; that
``max`` is the contention model.  Two collectives racing over the same link
(two gradient buckets in flight, say) serialise exactly where real NCCL
channels would.

Profiles:

* :data:`NVLINK` — one NVLink 2.0 brick per direction (25 GB/s, ~1.5 us),
  the 2080 Ti-era peer link.
* :data:`PCIE_P2P` — peer-to-peer over the PCIe 3.0 x16 switch, matching
  the :class:`~repro.device.GPUSpec` host-transfer numbers (12 GB/s, 10 us).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class LinkSpec:
    """Static description of one interconnect link class."""

    name: str
    #: Sustained bandwidth per direction, bytes/s.
    bandwidth: float
    #: Fixed per-transfer latency, seconds.
    latency: float

    def transfer_time(self, nbytes: float) -> float:
        """Seconds one ``nbytes`` transfer occupies a link of this class."""
        if nbytes < 0:
            raise ValueError(f"cannot transfer {nbytes!r} bytes")
        return self.latency + nbytes / self.bandwidth


#: NVLink 2.0, one brick per direction (the 2080 Ti generation's peer link).
NVLINK = LinkSpec(name="nvlink", bandwidth=25e9, latency=1.5e-6)

#: PCIe 3.0 x16 peer-to-peer through the host switch.
PCIE_P2P = LinkSpec(name="pcie-p2p", bandwidth=12e9, latency=10e-6)


@dataclass(frozen=True)
class LinkTransfer:
    """One completed transfer over a link (for the fabric trace track)."""

    src: int
    dst: int
    start: float
    end: float
    nbytes: int
    #: Collective / bucket label the transfer belonged to.
    label: str


class Link:
    """A directed point-to-point link with its own occupancy timeline.

    Attributes:
        src, dst: Replica ids of the endpoints.
        spec: The :class:`LinkSpec` timing profile.
        free_at: Simulated time at which the link's last transfer drains.
        busy: Total seconds the link has been occupied.
        bytes_moved: Total bytes carried.
        n_transfers: Number of transfers carried.
    """

    def __init__(self, src: int, dst: int, spec: LinkSpec) -> None:
        self.src = src
        self.dst = dst
        self.spec = spec
        self.free_at: float = 0.0
        self.busy: float = 0.0
        self.bytes_moved: int = 0
        self.n_transfers: int = 0

    @property
    def name(self) -> str:
        return f"gpu{self.src}->gpu{self.dst}"

    def occupy(self, nbytes: int, earliest: float) -> Tuple[float, float]:
        """Occupy the link with one transfer; returns ``(start, end)``.

        The transfer starts at ``max(earliest, free_at)`` — the contention
        rule — and holds the link for the spec's transfer time.
        """
        duration = self.spec.transfer_time(nbytes)
        start = max(earliest, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy += duration
        self.bytes_moved += int(nbytes)
        self.n_transfers += 1
        return start, end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.spec.name}, busy={self.busy:.6f}s)"


@dataclass
class FabricStats:
    """Aggregate fabric counters (for BENCH_scaling.json cells)."""

    bytes_moved: int = 0
    transfers: int = 0
    busy_seconds: float = 0.0
    links_used: int = 0
    contention_seconds: float = field(default=0.0)


class Fabric:
    """All links between ``world_size`` replicas, created on first use.

    ``record=True`` keeps one :class:`LinkTransfer` per transfer for the
    Chrome-trace fabric track (off by default so long runs stay bounded,
    mirroring :class:`~repro.device.Profiler`).
    """

    def __init__(self, world_size: int, spec: LinkSpec = NVLINK, record: bool = False) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.spec = spec
        self.record = record
        self._links: Dict[Tuple[int, int], Link] = {}
        self.transfers: List[LinkTransfer] = []
        #: Seconds transfers spent queued behind earlier transfers on the
        #: same link (the contention observable).
        self.contention_seconds: float = 0.0

    # ------------------------------------------------------------------
    def link(self, src: int, dst: int) -> Link:
        """The directed link ``src -> dst``, created on first use."""
        for end, role in ((src, "src"), (dst, "dst")):
            if not 0 <= end < self.world_size:
                raise ValueError(
                    f"{role}={end} outside fabric of world_size={self.world_size}"
                )
        if src == dst:
            raise ValueError("a replica does not need a link to itself")
        key = (src, dst)
        existing = self._links.get(key)
        if existing is None:
            existing = self._links[key] = Link(src, dst, self.spec)
        return existing

    @property
    def links(self) -> List[Link]:
        """All links created so far, in (src, dst) order."""
        return [self._links[k] for k in sorted(self._links)]

    # ------------------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int, earliest: float,
                 label: str = "transfer") -> Tuple[float, float]:
        """Carry ``nbytes`` from ``src`` to ``dst``; returns ``(start, end)``.

        ``earliest`` is the simulated time the payload exists at the sender
        (its stream's completion of the producing work); queueing behind an
        occupied link past that point is accounted as contention.
        """
        link = self.link(src, dst)
        start, end = link.occupy(nbytes, earliest)
        if start > earliest:
            self.contention_seconds += start - earliest
        if self.record:
            self.transfers.append(
                LinkTransfer(src=src, dst=dst, start=start, end=end,
                             nbytes=int(nbytes), label=label)
            )
        return start, end

    # ------------------------------------------------------------------
    def stats(self) -> FabricStats:
        links = self.links
        return FabricStats(
            bytes_moved=sum(l.bytes_moved for l in links),
            transfers=sum(l.n_transfers for l in links),
            busy_seconds=sum(l.busy for l in links),
            links_used=len(links),
            contention_seconds=self.contention_seconds,
        )

    def reset(self) -> None:
        """Clear all link timelines and recorded transfers."""
        self._links.clear()
        self.transfers.clear()
        self.contention_seconds = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fabric(world_size={self.world_size}, spec={self.spec.name!r}, "
            f"links={len(self._links)})"
        )
