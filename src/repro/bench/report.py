"""Command-line experiment runner.

Regenerates any of the paper's experiments from a shell, without pytest::

    python -m repro.bench.report table1
    python -m repro.bench.report table4 --models gcn gat --datasets cora --epochs 30
    python -m repro.bench.report fig1 --batch-sizes 64 128 --models gcn
    python -m repro.bench.report fig6 --num-graphs 500
    python -m repro.bench.report fig3 --json out.json
    python -m repro.bench.report serve --requests 500 --rate 1500 --json serving.json
    python -m repro.bench.report compile --models gcn gin --json BENCH_compile.json
    python -m repro.bench.report kernels --models gcn --compiled --top 12
    python -m repro.bench.report faults --fault-rates 0 0.002 0.01 --json BENCH_faults.json
    python -m repro.bench.report overlap --models gcn gin --json BENCH_overlap.json
    python -m repro.bench.report ops --json BENCH_ops.json
    python -m repro.bench.report fleet --json BENCH_fleet.json

Every subcommand prints the paper-style table (and, where it helps, an
ASCII chart); ``--json``/``--csv`` write machine-readable copies.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import (
    FAULTS_COLUMNS,
    OVERLAP_COLUMNS,
    PHASE_ORDER,
    SERVING_COLUMNS,
    breakdown_row,
    breakdown_sweep,
    compile_cell,
    faults_cell,
    faults_row,
    format_seconds,
    format_table,
    layerwise_profile,
    multigpu_series,
    overlap_cell,
    overlap_row,
    serving_cell,
    serving_row,
    step_kernel_records,
    table4_cell,
    table5_cell,
)
from repro.bench.charts import stacked_bars
from repro.bench.serialize import (
    experiments_to_csv,
    experiments_to_json,
    servings_to_json,
)
from repro.datasets import FULL_MNIST_SIZE, compute_statistics, load_dataset
from repro.models import MODEL_NAMES

EXPERIMENTS = (
    "table1", "table4", "table5", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
    "serve", "compile", "kernels", "faults", "overlap", "ops", "fleet",
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.report",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--models", nargs="+", default=list(MODEL_NAMES))
    parser.add_argument("--frameworks", nargs="+", default=["pygx", "dglx"])
    parser.add_argument("--datasets", nargs="+", default=None)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--batch-sizes", nargs="+", type=int, default=[64, 128, 256])
    parser.add_argument("--num-graphs", type=int, default=0)
    parser.add_argument("--folds", type=int, default=1)
    parser.add_argument("--json", default=None, help="write experiment JSON here")
    parser.add_argument("--csv", default=None, help="write summary CSV here")
    parser.add_argument("--requests", type=int, default=500, help="serve: trace length")
    parser.add_argument("--rate", type=float, default=1500.0, help="serve: arrivals/s")
    parser.add_argument("--queue-capacity", type=int, default=128)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument(
        "--compiled", action="store_true", help="kernels: profile the compiled step"
    )
    parser.add_argument("--top", type=int, default=15, help="kernels: rows to show")
    parser.add_argument(
        "--batch-size", type=int, default=128, help="compile/kernels: one-batch size"
    )
    parser.add_argument(
        "--fault-rates", nargs="+", type=float, default=[0.0, 0.002, 0.01],
        help="faults: per-event OOM/kernel-fault probabilities to sweep",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, help="faults: FaultPlan seed"
    )
    return parser


def _write_outputs(args, results: List) -> None:
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(experiments_to_json(results, include_runs=True))
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(experiments_to_csv(results))


def _run_table1(args) -> None:
    rows = []
    for name in args.datasets or ["cora", "pubmed", "enzymes", "mnist", "dd"]:
        num_graphs = args.num_graphs or (1500 if name == "mnist" else 0)
        ds = load_dataset(name, num_graphs=num_graphs)
        reported = FULL_MNIST_SIZE if name == "mnist" else 0
        rows.append(compute_statistics(ds, reported_num_graphs=reported).row())
    print(
        format_table(
            ["Dataset", "#Graph", "#Nodes(Avg)", "#Edges(Avg)", "#Feature", "#Classes"],
            rows,
            title="Table I: dataset statistics",
        )
    )


def _run_table4(args) -> None:
    results = []
    for dataset in args.datasets or ["cora", "pubmed"]:
        for model in args.models:
            for framework in args.frameworks:
                results.append(
                    table4_cell(framework, model, dataset, max_epochs=args.epochs, seeds=(0,))
                )
    rows = [
        [r.dataset, r.model, r.framework, f"{r.epoch_time * 1e3:.2f}ms",
         format_seconds(r.total_time), f"{r.acc_mean * 100:.1f}"]
        for r in results
    ]
    print(format_table(["dataset", "model", "fw", "epoch", "total", "acc"], rows,
                       title=f"Table IV ({args.epochs} epochs)"))
    _write_outputs(args, results)


def _run_table5(args) -> None:
    results = []
    for dataset in args.datasets or ["enzymes"]:
        for model in args.models:
            for framework in args.frameworks:
                results.append(
                    table5_cell(
                        framework,
                        model,
                        dataset,
                        num_graphs=args.num_graphs,
                        max_epochs=args.epochs,
                        max_folds=args.folds,
                    )
                )
    rows = [
        [r.dataset, r.model, r.framework, f"{r.epoch_time * 1e3:.0f}ms",
         format_seconds(r.total_time), f"{r.acc_mean * 100:.1f}+-{r.acc_std * 100:.1f}"]
        for r in results
    ]
    print(format_table(["dataset", "model", "fw", "epoch", "total", "acc"], rows,
                       title=f"Table V ({args.folds} folds, {args.epochs} epoch cap)"))
    _write_outputs(args, results)


def _run_breakdown(args, dataset: str) -> None:
    grid = breakdown_sweep(
        dataset,
        args.batch_sizes,
        models=args.models,
        frameworks=args.frameworks,
        num_graphs=args.num_graphs,
        n_epochs=1,
    )
    bars = {}
    for (framework, model, batch_size), run in sorted(grid.items()):
        row = breakdown_row(run)
        bars[f"{model}/{framework}/b{batch_size}"] = {k: v * 1e3 for k, v in row.items()}
    print(
        stacked_bars(
            bars,
            segments=list(PHASE_ORDER),
            unit="ms",
            title=f"Execution-time breakdown per epoch, {dataset}",
        )
    )


def _run_resource(args, observable: str) -> None:
    """Fig. 4 (memory) / Fig. 5 (utilisation) over the ENZYMES grid."""
    grid = breakdown_sweep(
        "enzymes",
        args.batch_sizes,
        models=args.models,
        frameworks=args.frameworks,
        num_graphs=args.num_graphs,
        n_epochs=1,
    )
    rows = []
    for (framework, model, batch_size), run in sorted(grid.items()):
        value = (
            f"{run.peak_memory / 1e6:.0f}MB"
            if observable == "memory"
            else f"{run.gpu_utilization * 100:.1f}%"
        )
        rows.append([model, framework, str(batch_size), value])
    title = "Fig. 4: peak memory" if observable == "memory" else "Fig. 5: GPU utilisation"
    print(format_table(["model", "fw", "batch", observable], rows, title=title))


def _run_fig3(args) -> None:
    scopes = ["conv1", "conv2", "conv3", "conv4", "pooling", "classifier", "other"]
    rows = []
    for model in args.models:
        for framework in args.frameworks:
            profile = layerwise_profile(
                framework, model, "enzymes", batch_size=128, num_graphs=args.num_graphs
            )
            rows.append([model, framework] + [f"{profile[s] * 1e6:.0f}" for s in scopes])
    print(format_table(["model", "fw"] + [f"{s}(us)" for s in scopes], rows,
                       title="Fig. 3: layer execution time, one ENZYMES batch"))


def _run_fig6(args) -> None:
    series = multigpu_series(
        models=[m for m in args.models if m in ("gcn", "gat")] or ["gcn", "gat"],
        frameworks=args.frameworks,
        batch_sizes=args.batch_sizes if args.batch_sizes != [64, 128, 256] else [128, 256, 512],
        num_graphs=args.num_graphs or 1000,
        max_batches=2,
    )
    rows = []
    keys = sorted({(m, f, b) for (f, m, b, _) in series})
    for model, framework, batch in keys:
        times = [series[(framework, model, batch, n)] for n in (1, 2, 4, 8)]
        rows.append([model, framework, str(batch)] + [f"{t * 1e3:.0f}" for t in times])
    print(format_table(["model", "fw", "batch", "1gpu", "2gpu", "4gpu", "8gpu"], rows,
                       title="Fig. 6: epoch time (ms) vs GPU count, MNIST"))


def _run_serve(args) -> None:
    from repro.serve import poisson_trace

    results = []
    rows = []
    for dataset in args.datasets or ["enzymes"]:
        for model in args.models if args.models != list(MODEL_NAMES) else ["gcn"]:
            for framework in args.frameworks:
                trace = poisson_trace(args.requests, rate=args.rate, rng=0)
                for max_batch in (1, args.max_batch_size):
                    result = serving_cell(
                        framework,
                        model,
                        dataset,
                        tuple(trace),
                        max_batch_size=max_batch,
                        queue_capacity=args.queue_capacity,
                        num_graphs=args.num_graphs,
                    )
                    results.append(result)
                    rows.append([f"b{max_batch}"] + serving_row(result))
    print(
        format_table(
            ["policy"] + SERVING_COLUMNS,
            rows,
            title=(
                f"Serving: {args.requests}-request Poisson trace @ {args.rate:.0f}/s "
                "(b1 = no batching)"
            ),
        )
    )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(servings_to_json(results))


def _run_compile(args) -> int:
    """Eager vs compiled training: launches, epoch time, numerical parity."""
    import json

    cells = []
    for dataset in args.datasets or ["enzymes"]:
        for model in args.models if args.models != list(MODEL_NAMES) else ["gcn", "gin"]:
            for framework in args.frameworks:
                cells.append(
                    compile_cell(
                        framework,
                        model,
                        dataset,
                        batch_size=args.batch_size,
                        num_graphs=args.num_graphs,
                        n_epochs=2,
                    )
                )
    rows = [
        [
            c["model"],
            c["framework"],
            str(c["eager_launches_per_step"]),
            str(c["compiled_launches_per_step"]),
            f"{c['launch_reduction'] * 100:.0f}%",
            f"{c['eager_epoch_time'] * 1e3:.2f}",
            f"{c['compiled_epoch_time'] * 1e3:.2f}",
            f"{c['speedup']:.2f}x",
            "exact" if c["parity"] else "DIVERGED",
        ]
        for c in cells
    ]
    print(
        format_table(
            ["model", "fw", "eager", "compiled", "saved", "eager(ms)",
             "compiled(ms)", "speedup", "numerics"],
            rows,
            title=f"repro.compile: kernel launches per step + epoch time "
                  f"(batch {args.batch_size})",
        )
    )
    path = args.json or "BENCH_compile.json"
    with open(path, "w") as fh:
        json.dump({"experiment": "compile", "cells": cells}, fh, indent=2)
    print(f"wrote {path}")
    if not all(c["parity"] for c in cells):
        print("ERROR: compiled numerics diverged from eager", file=sys.stderr)
        return 1
    return 0


def _run_overlap(args) -> int:
    """Executed prefetch pipelining vs the analytic overlap projection."""
    import json

    cells = []
    for dataset in args.datasets or ["enzymes"]:
        for model in args.models if args.models != list(MODEL_NAMES) else ["gcn", "gin"]:
            for framework in args.frameworks:
                for compiled in (False, True):
                    cells.append(
                        overlap_cell(
                            framework,
                            model,
                            dataset,
                            batch_size=args.batch_size if args.batch_size != 128 else 16,
                            num_graphs=args.num_graphs,
                            n_epochs=2,
                            compiled=compiled,
                        )
                    )
    print(
        format_table(
            OVERLAP_COLUMNS,
            [overlap_row(c) for c in cells],
            title="Streams + prefetch: executed overlap vs Section IV-D projection",
        )
    )
    path = args.json or "BENCH_overlap.json"
    with open(path, "w") as fh:
        json.dump({"experiment": "overlap", "cells": cells}, fh, indent=2)
    print(f"wrote {path}")
    if not all(c["parity"] for c in cells):
        print("ERROR: prefetched numerics diverged from serial", file=sys.stderr)
        return 1
    if not all(c["within_projection"] for c in cells):
        print("ERROR: executed overlap missed the projection bound", file=sys.stderr)
        return 1
    return 0


def _run_faults(args) -> None:
    """Goodput / retries / p99 as scheduled fault rates sweep upward."""
    import json

    from repro.serve import poisson_trace

    cells = []
    rows = []
    for dataset in args.datasets or ["enzymes"]:
        for model in args.models if args.models != list(MODEL_NAMES) else ["gcn"]:
            for framework in args.frameworks:
                trace = poisson_trace(args.requests, rate=args.rate, rng=0)
                for rate in args.fault_rates:
                    cell = faults_cell(
                        framework,
                        model,
                        dataset,
                        tuple(trace),
                        fault_rate=rate,
                        fault_seed=args.fault_seed,
                        max_batch_size=args.max_batch_size,
                        queue_capacity=args.queue_capacity,
                        num_graphs=args.num_graphs,
                    )
                    cells.append(cell)
                    rows.append(faults_row(cell))
    print(
        format_table(
            FAULTS_COLUMNS,
            rows,
            title=(
                f"repro.faults: {args.requests}-request Poisson trace @ "
                f"{args.rate:.0f}/s under injected faults (seed {args.fault_seed})"
            ),
        )
    )
    path = args.json or "BENCH_faults.json"
    with open(path, "w") as fh:
        json.dump({"experiment": "faults", "cells": cells}, fh, indent=2)
    print(f"wrote {path}")


def _run_kernels(args) -> None:
    """Top-kernel table over one profiled training step (satellite of Fig. 3)."""
    from repro.device import kernel_stats

    for dataset in args.datasets or ["enzymes"]:
        for model in args.models if args.models != list(MODEL_NAMES) else ["gcn"]:
            for framework in args.frameworks:
                records = step_kernel_records(
                    framework,
                    model,
                    dataset,
                    batch_size=args.batch_size,
                    num_graphs=args.num_graphs,
                    compiled=args.compiled,
                )
                step_time = sum(r.duration for r in records) or 1.0
                stats = kernel_stats(records)
                rows = [
                    [
                        s.name,
                        str(s.launches),
                        f"{s.total_time * 1e6:.1f}",
                        f"{s.mean_time * 1e6:.2f}",
                        f"{s.total_time / step_time * 100:.1f}%",
                    ]
                    for s in stats[: args.top]
                ]
                mode = "compiled" if args.compiled else "eager"
                print(
                    format_table(
                        ["kernel", "launches", "total(us)", "mean(us)", "% step"],
                        rows,
                        title=f"Top kernels: {model}/{framework}/{dataset}, one {mode} "
                              f"step ({len(records)} launches)",
                    )
                )


def _run_ops(args) -> int:
    """Operation-level roofline attribution (full CLI in repro.bench.ops)."""
    from repro.bench import ops as ops_bench

    argv = ["--report"]
    if args.json:
        argv += ["--out", args.json]
    return ops_bench.main(argv)


def _run_fleet(args) -> int:
    """Multi-replica fleet serving (full CLI in repro.bench.fleet)."""
    from repro.bench import fleet as fleet_bench

    argv = ["--report"]
    if args.json:
        argv += ["--out", args.json]
    return fleet_bench.main(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.experiment == "table1":
        _run_table1(args)
    elif args.experiment == "table4":
        _run_table4(args)
    elif args.experiment == "table5":
        _run_table5(args)
    elif args.experiment == "fig1":
        _run_breakdown(args, "enzymes")
    elif args.experiment == "fig2":
        _run_breakdown(args, "dd")
    elif args.experiment == "fig3":
        _run_fig3(args)
    elif args.experiment == "fig4":
        _run_resource(args, "memory")
    elif args.experiment == "fig5":
        _run_resource(args, "utilisation")
    elif args.experiment == "fig6":
        _run_fig6(args)
    elif args.experiment == "serve":
        _run_serve(args)
    elif args.experiment == "compile":
        return _run_compile(args)
    elif args.experiment == "kernels":
        _run_kernels(args)
    elif args.experiment == "faults":
        _run_faults(args)
    elif args.experiment == "overlap":
        return _run_overlap(args)
    elif args.experiment == "ops":
        return _run_ops(args)
    elif args.experiment == "fleet":
        return _run_fleet(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
