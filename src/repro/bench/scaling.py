"""repro.dist scaling bench: DDP vs DataParallel epoch time on MNIST.

Two cell kinds back ``benchmarks/test_scaling_ddp.py``:

* :func:`scaling_cell` — one (framework, model, replicas) point of the
  Fig. 6 reproduce-and-extend curve.  The baseline is the paper-faithful
  single-process DataParallel estimate
  (:func:`~repro.train.multi_gpu_epoch_time`: serial scatter over PCIe,
  per-replica compute, serial gradient gather); the contender is real
  :class:`~repro.train.DDPTrainer` training with per-replica loader
  shards, bucketed ring/tree all-reduce over the modelled NVLink fabric,
  and comm overlapped with backward.  Both see the same global batch, so
  their per-epoch step counts match and the times compare directly.
* :func:`scaling_parity_cell` — the correctness gate.  A
  ``world_size=1`` :class:`~repro.train.DDPTrainer` must reproduce the
  single-device :class:`~repro.train.GraphClassificationTrainer` loss
  trajectory **bitwise** (no hooks, no comm streams, no fabric at
  world size 1), and multi-replica training must keep collectives
  bitwise-deterministic (fixed-order reduction regardless of ring/tree
  schedule).

Everything is a deterministic function of the seeds — simulated clock,
roofline kernels, modelled fabric — so the JSON this feeds
(``BENCH_scaling.json``) is reproducible across hosts and gated by
``tools/check_bench_regression.py``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.datasets import GraphClassificationDataset
from repro.device import Device
from repro.device.fabric import LinkSpec, NVLINK
from repro.dist import BatchConfig, COMM_PHASE
from repro.train import (
    DDPTrainer,
    GraphClassificationTrainer,
    multi_gpu_epoch_time,
)

SCALING_FRAMEWORKS = ("pygx", "dglx")
SCALING_MODELS = ("gcn", "gat")
SCALING_REPLICAS = (1, 2, 4, 8)

SCALING_COLUMNS = [
    "model",
    "fw",
    "replicas",
    "DP (ms)",
    "DDP (ms)",
    "speedup",
    "comm (ms)",
    "comm %",
    "collectives",
]

SCALING_PARITY_COLUMNS = [
    "model",
    "fw",
    "mode",
    "losses bitwise",
    "test acc equal",
]


def scaling_cell(
    framework: str,
    model: str,
    dataset: GraphClassificationDataset,
    replicas: int,
    global_batch: int = 256,
    link: LinkSpec = NVLINK,
    max_batches: int = 2,
    seed: int = 0,
) -> Dict:
    """One point of the epoch-time-vs-replicas curve.

    ``max_batches`` bounds only the DataParallel baseline's measured
    batches (scaled back to a full epoch, as in Fig. 6); the DDP side
    always trains the full epoch for real.
    """
    dp_time = multi_gpu_epoch_time(
        framework,
        model,
        dataset,
        batch_size=global_batch,
        n_gpus=replicas,
        device=Device(),
        max_batches=max_batches,
        seed=seed,
    )
    trainer = DDPTrainer(
        framework,
        model,
        dataset,
        BatchConfig.for_global_batch(global_batch, replicas=replicas),
        device=Device(),
        compile=True,
        prefetch=True,
        link=link,
    )
    result = trainer.measure_epoch(n_epochs=1, seed=seed, train_fraction=1.0)
    ddp_time = result.mean_epoch_time
    comm_time = result.mean_phase_times().get(COMM_PHASE, 0.0)
    stats = trainer.communicator.stats
    fabric = trainer.communicator.fabric
    return {
        "framework": framework,
        "model": model,
        "replicas": replicas,
        "global_batch": global_batch,
        "link": link.name,
        "dp_epoch_time": dp_time,
        "ddp_epoch_time": ddp_time,
        "speedup_vs_dp": dp_time / ddp_time,
        "beats_dataparallel": bool(ddp_time < dp_time),
        "comm_time": comm_time,
        "comm_fraction": comm_time / ddp_time if ddp_time else 0.0,
        "collectives": stats.collectives,
        "comm_bytes": stats.bytes_moved,
        "fabric_bytes": fabric.stats().bytes_moved if fabric else 0,
        "fabric_contention": fabric.contention_seconds if fabric else 0.0,
    }


def scaling_series(
    dataset: GraphClassificationDataset,
    frameworks: Sequence[str] = SCALING_FRAMEWORKS,
    models: Sequence[str] = SCALING_MODELS,
    replica_counts: Sequence[int] = SCALING_REPLICAS,
    global_batch: int = 256,
) -> List[Dict]:
    """The full (model, framework, replicas) grid, DP and DDP."""
    return [
        scaling_cell(framework, model, dataset, replicas,
                     global_batch=global_batch)
        for model in models
        for framework in frameworks
        for replicas in replica_counts
    ]


def scaling_parity_cell(
    framework: str,
    model: str,
    dataset: GraphClassificationDataset,
    compile: bool = False,
    batch_size: int = 16,
    max_epochs: int = 2,
    seed: int = 0,
) -> Dict:
    """``world_size=1`` DDP vs the single-device trainer, bitwise."""
    n = len(dataset)
    order = np.arange(n)
    cut = max(int(n * 0.7), 1)
    half = cut + max((n - cut) // 2, 1)
    split = (order[:cut], order[cut:half], order[half:] if half < n else order[cut:half])

    baseline = GraphClassificationTrainer(
        framework, model, dataset, batch_size=batch_size,
        max_epochs=max_epochs, device=Device(), compile=compile,
    ).run_fold(*split, seed=seed)
    ddp = DDPTrainer(
        framework, model, dataset, BatchConfig(batch_size),
        max_epochs=max_epochs, device=Device(), compile=compile,
    ).run_fold(*split, seed=seed)

    base_losses = [e.train_loss for e in baseline.epochs]
    ddp_losses = [e.train_loss for e in ddp.epochs]
    return {
        "framework": framework,
        "model": model,
        "mode": "compiled" if compile else "eager",
        "epochs": len(ddp_losses),
        "loss_bitwise_identical": bool(base_losses == ddp_losses),
        "test_acc_equal": bool(baseline.test_acc == ddp.test_acc),
        "baseline_final_loss": base_losses[-1],
        "ddp_final_loss": ddp_losses[-1],
    }


def scaling_row(cell: Dict) -> List[str]:
    return [
        cell["model"],
        cell["framework"],
        str(cell["replicas"]),
        f"{cell['dp_epoch_time'] * 1e3:.1f}",
        f"{cell['ddp_epoch_time'] * 1e3:.1f}",
        f"{cell['speedup_vs_dp']:.2f}x",
        f"{cell['comm_time'] * 1e3:.2f}",
        f"{cell['comm_fraction']:.1%}",
        str(cell["collectives"]),
    ]


def scaling_parity_row(cell: Dict) -> List[str]:
    return [
        cell["model"],
        cell["framework"],
        cell["mode"],
        "yes" if cell["loss_bitwise_identical"] else "NO",
        "yes" if cell["test_acc_equal"] else "NO",
    ]
