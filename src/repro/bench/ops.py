"""repro.bench.ops — operation-level microbenchmarks with roofline attribution.

The "magnifying glass" harness of the op-level benchmarking literature
(Magnifying Glass, arXiv 2211.03021; Operation-Level Performance
Benchmarking, arXiv 2207.09955), applied to this reproduction: time the
individual kernels GNN frameworks are built from — GSpMM, GSDDMM
(attention logits), scatter/segment reduce, dense GEMM, elementwise
chains, H2D copies — across a grid of graph shapes (the paper's five
datasets plus ``repro.scale``-style R-MAT synthetics), on both framework
packs, eager and compiled, in fp32 and the device's fp16 roofline mode
(halved tensor bytes; see ``docs/kernels.md``).  For each cell the
harness computes arithmetic intensity and achieved vs. roofline
FLOP/bandwidth from the device cost model and classifies the op as
launch-, bandwidth- or compute-bound (:mod:`repro.device.roofline`).

Everything runs on the simulated clock, so every number — including the
classification — is exactly deterministic; CI gates wall clock *and*
classification against the committed ``BENCH_ops.json`` baseline.

CLI (mirrors the other bench CLIs)::

    python -m repro.bench.ops --report
    python -m repro.bench.ops --shapes cora rmat-32k --packs pygx --report
    python -m repro.bench.ops --ops sddmm gspmm --precisions fp16 --report
    python -m repro.bench.ops --ops gspmm gemm --modes eager --out BENCH_ops.json
"""

from __future__ import annotations

import argparse
import sys
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.tables import format_table
from repro.compile import CompiledStep
from repro.device import (
    Device,
    classify_records,
    classify_transfer,
    current_device,
    use_device,
)
from repro.graph.generators import rmat_edges
from repro.tensor import CSRGraph, Tensor, matmul, ops as tops

OPS = ("gspmm", "sddmm", "scatter_reduce", "gemm", "elementwise", "h2d")
PACKS = ("pygx", "dglx")
MODES = ("eager", "compiled")
PRECISIONS = ("fp32", "fp16")

#: Columns of the per-cell attribution table.
OPS_COLUMNS = (
    "op", "pack", "mode", "prec", "shape", "launch#", "MFLOP", "MB", "AI",
    "wall(us)", "%peakF", "%peakBW", "bound",
)


@dataclass(frozen=True)
class OpShape:
    """One point of the shape grid: a graph size plus a feature width."""

    name: str
    n_nodes: int
    n_edges: int
    feat_dim: int
    #: "uniform" draws iid endpoints (the paper's dataset stand-ins);
    #: "rmat" uses the power-law generator behind ``repro.scale``.
    generator: str = "uniform"


#: The paper's five datasets, as (node, edge, feature) shapes.  Graph
#: classification datasets appear as one 128-graph training batch (the
#: batch is what the device sees per step); edges count both directions.
PAPER_SHAPES = (
    OpShape("cora", 2708, 10858, 1433),
    OpShape("pubmed", 19717, 88676, 500),
    OpShape("enzymes-b128", 3977, 15618, 18),
    OpShape("mnist-b128", 9138, 149220, 1),
    OpShape("dd-b128", 35723, 183590, 89),
)

#: R-MAT synthetics from the ``repro.scale`` generator family: the
#: million-node tail the paper's datasets lack, at degree 8.
SYNTH_SHAPES = (
    OpShape("rmat-4k", 4096, 32768, 64, generator="rmat"),
    OpShape("rmat-32k", 32768, 262144, 64, generator="rmat"),
    OpShape("rmat-131k", 131072, 1048576, 64, generator="rmat"),
)

SHAPES: Dict[str, OpShape] = {s.name: s for s in PAPER_SHAPES + SYNTH_SHAPES}


def _shape_rng(shape: OpShape) -> np.random.Generator:
    """Deterministic per-shape RNG (stable across runs and processes)."""
    return np.random.default_rng(zlib.crc32(shape.name.encode()))


def _edge_index(shape: OpShape) -> np.ndarray:
    rng = _shape_rng(shape)
    if shape.generator == "rmat":
        src, dst = rmat_edges(shape.n_nodes, shape.n_edges, rng)
    else:
        src = rng.integers(0, shape.n_nodes, size=shape.n_edges, dtype=np.int64)
        dst = rng.integers(0, shape.n_nodes, size=shape.n_edges, dtype=np.int64)
    return np.stack([np.asarray(src, np.int64), np.asarray(dst, np.int64)])


def _features(shape: OpShape) -> np.ndarray:
    rng = _shape_rng(shape)
    return rng.normal(0.0, 1.0, size=(shape.n_nodes, shape.feat_dim)).astype(np.float32)


# ----------------------------------------------------------------------
# op implementations, dispatched per framework pack
# ----------------------------------------------------------------------
def _build(op: str, shape: OpShape, pack: str):
    """Build (fn, args) for one cell; construction is untimed."""
    from repro.dglx import kernels as dglx_kernels
    from repro.pygx import kernels as pygx_kernels

    x = Tensor(_features(shape))

    if op == "gspmm":
        edge_index = _edge_index(shape)
        if pack == "dglx":
            graph = CSRGraph.from_edge_index(
                edge_index[0], edge_index[1], shape.n_nodes, shape.n_nodes
            )
            return dglx_kernels.spmm, (graph, x)
        return pygx_kernels.spmm, (edge_index, x, shape.n_nodes)

    if op == "sddmm":
        # The attention-logit kernel (Magnifying Glass's SDDMM shape):
        # per-edge dot of source/destination rows.  DGL lowers it to one
        # fused GSDDMM launch; PyG composes gather -> gather -> mul -> sum.
        edge_index = _edge_index(shape)
        if pack == "dglx":
            graph = CSRGraph.from_edge_index(
                edge_index[0], edge_index[1], shape.n_nodes, shape.n_nodes
            )
            return dglx_kernels.sddmm, (graph, x, x)
        return pygx_kernels.sddmm, (edge_index, x, x)

    if op == "scatter_reduce":
        # Pool edge-sized rows into node bins: PyG scatters by an index
        # vector, DGL segment-reduces contiguous ranges — same reduction,
        # the two pooling paths of Section IV-C.
        sizes = np.bincount(
            _shape_rng(shape).integers(0, shape.n_nodes, size=shape.n_edges),
            minlength=shape.n_nodes,
        )
        rows = Tensor(
            _shape_rng(shape)
            .normal(0.0, 1.0, size=(shape.n_edges, shape.feat_dim))
            .astype(np.float32)
        )
        if pack == "dglx":
            offsets = np.concatenate([[0], np.cumsum(sizes)])
            return dglx_kernels.reduce_rows, (rows, offsets)
        index = np.repeat(np.arange(shape.n_nodes, dtype=np.int64), sizes)
        return pygx_kernels.reduce_rows, (rows, index, shape.n_nodes)

    if op == "gemm":
        # The per-layer dense update: (N, D) @ (D, H) at the model's
        # hidden width, identical lowering in both packs.
        hidden = max(shape.feat_dim, 16)
        w = Tensor(
            _shape_rng(shape).normal(0.0, 1.0, size=(shape.feat_dim, hidden)).astype(np.float32)
        )
        return matmul, (x, w)

    if op == "elementwise":
        # The unfused bias → scale → relu → residual chain GAT/GatedGCN
        # edge updates issue eagerly: four launches, one after fusion.
        bias = Tensor(_shape_rng(shape).normal(size=(1, shape.feat_dim)).astype(np.float32))
        scale = Tensor(np.full((1, shape.feat_dim), 0.5, dtype=np.float32))

        def chain(x: Tensor, bias: Tensor, scale: Tensor) -> Tensor:
            t = tops.add(x, bias)
            t = tops.mul(t, scale)
            t = tops.relu(t)
            return tops.add(t, x)

        return chain, (x, bias, scale)

    if op == "h2d":
        nbytes = float(x.data.nbytes)

        def copy() -> None:
            current_device().transfer(nbytes)

        return copy, ()

    raise ValueError(f"unknown op {op!r}; options: {OPS}")


def run_cell(
    op: str, shape: OpShape, pack: str, mode: str = "eager",
    precision: str = "fp32",
) -> Dict:
    """Benchmark one (op, shape, pack, mode, precision) cell on a fresh device.

    Returns a plain dict (the ``BENCH_ops.json`` cell schema).  The op
    runs once untimed (building lazy state; for compiled mode this is
    the capture step), then once under the profiler on a reset clock.
    ``precision="fp16"`` runs the device's fp16 roofline mode: identical
    numerics, halved tensor bytes, so bandwidth-bound cells speed up ~2×
    while launch-bound cells are unchanged.
    """
    if op not in OPS:
        raise ValueError(f"unknown op {op!r}; options: {OPS}")
    if pack not in PACKS:
        raise ValueError(f"unknown pack {pack!r}; options: {PACKS}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; options: {MODES}")
    if precision not in PRECISIONS:
        raise ValueError(f"unknown precision {precision!r}; options: {PRECISIONS}")
    if op == "h2d" and mode == "compiled":
        raise ValueError("h2d copies have no compiled mode")

    device = Device(precision=precision)
    with use_device(device):
        fn, args = _build(op, shape, pack)
        if mode == "compiled":
            fn = CompiledStep(fn)
        fn(*args)  # warmup / capture, untimed
        device.reset()
        device.profiler.enabled = True
        fn(*args)
        device.profiler.enabled = False
        wall = device.clock.elapsed
        records = list(device.profiler.records)

    spec = device.spec
    launches = len(records)
    flops = sum(r.flops for r in records)
    nbytes = sum(r.bytes_moved for r in records)
    device_time = sum(r.duration for r in records)
    if op == "h2d":
        bound = classify_transfer(spec, nbytes)
    else:
        bound = classify_records(spec, records)
    return {
        "op": op,
        "pack": pack,
        "mode": mode,
        "precision": precision,
        "shape": shape.name,
        "n_nodes": shape.n_nodes,
        "n_edges": shape.n_edges,
        "feat_dim": shape.feat_dim,
        "launches": launches,
        "flops": flops,
        "bytes": nbytes,
        "device_time": device_time,
        "wall_time": wall,
        "intensity": flops / nbytes if nbytes else 0.0,
        "bound": bound,
        "frac_peak_flops": (flops / wall) / spec.peak_flops if wall else 0.0,
        "frac_peak_bandwidth": (nbytes / wall) / spec.mem_bandwidth if wall else 0.0,
    }


def ops_grid(
    shapes: Optional[Sequence[str]] = None,
    ops: Optional[Sequence[str]] = None,
    packs: Optional[Sequence[str]] = None,
    modes: Optional[Sequence[str]] = None,
    precisions: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """Run the full benchmark grid; one dict per cell, grid order.

    The fp16 axis defaults to the eager cells only: compiled replay
    charges the same (scaled) bytes as eager, so fp16×compiled adds grid
    time without new attribution.  Pass ``precisions`` explicitly to
    force any combination.
    """
    cells = []
    for shape_name in shapes or sorted(SHAPES):
        shape = SHAPES[shape_name]
        for op in ops or OPS:
            for pack in packs or PACKS:
                for mode in modes or MODES:
                    if op == "h2d" and mode == "compiled":
                        continue
                    for precision in precisions or PRECISIONS:
                        if (
                            precisions is None
                            and precision == "fp16"
                            and mode == "compiled"
                        ):
                            continue
                        cells.append(run_cell(op, shape, pack, mode, precision))
    return cells


def ops_document(cells: Sequence[Dict]) -> Dict:
    """Wrap cells in the ``BENCH_ops.json`` document shape."""
    from repro.device.gpu import RTX_2080TI

    return {
        "experiment": "ops",
        "device": {
            "name": RTX_2080TI.name,
            "peak_flops": RTX_2080TI.peak_flops,
            "mem_bandwidth": RTX_2080TI.mem_bandwidth,
            "ridge_point": RTX_2080TI.ridge_point,
        },
        "cells": list(cells),
    }


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
def ops_row(cell: Dict) -> List[str]:
    return [
        cell["op"],
        cell["pack"],
        cell["mode"],
        cell.get("precision", "fp32"),
        cell["shape"],
        str(cell["launches"]),
        f"{cell['flops'] / 1e6:.2f}",
        f"{cell['bytes'] / 1e6:.2f}",
        f"{cell['intensity']:.2f}",
        f"{cell['wall_time'] * 1e6:.1f}",
        f"{cell['frac_peak_flops'] * 100:.2f}",
        f"{cell['frac_peak_bandwidth'] * 100:.2f}",
        cell["bound"],
    ]


def bound_summary(cells: Iterable[Dict]) -> Dict[Tuple[str, str], Dict[str, int]]:
    """Per (op, pack): cell count in each bound class."""
    out: Dict[Tuple[str, str], Dict[str, int]] = {}
    for cell in cells:
        key = (cell["op"], cell["pack"])
        hist = out.setdefault(key, {"launch": 0, "bandwidth": 0, "compute": 0})
        hist[cell["bound"]] += 1
    return out


def ops_report(cells: Sequence[Dict]) -> str:
    """The bottleneck-attribution report: per-cell table + summary."""
    table = format_table(
        list(OPS_COLUMNS),
        [ops_row(c) for c in cells],
        title="repro.bench.ops: operation roofline attribution "
              "(simulated RTX 2080 Ti)",
    )
    rows = [
        [op, pack, str(h["launch"]), str(h["bandwidth"]), str(h["compute"])]
        for (op, pack), h in sorted(bound_summary(cells).items())
    ]
    summary = format_table(
        ["op", "pack", "launch-bound", "bandwidth-bound", "compute-bound"],
        rows,
        title="Bottleneck summary (cells per bound class)",
    )
    return table + "\n" + summary


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.ops",
        description="Operation-level microbenchmarks with roofline attribution.",
    )
    parser.add_argument("--shapes", nargs="+", choices=sorted(SHAPES), default=None)
    parser.add_argument("--ops", nargs="+", choices=OPS, default=None)
    parser.add_argument("--packs", nargs="+", choices=PACKS, default=None)
    parser.add_argument("--modes", nargs="+", choices=MODES, default=None)
    parser.add_argument(
        "--precisions", nargs="+", choices=PRECISIONS, default=None,
        help="default: fp32 everywhere plus fp16 on the eager cells",
    )
    parser.add_argument("--out", default=None, help="write BENCH_ops.json here")
    parser.add_argument(
        "--report", action="store_true", help="print the attribution report"
    )
    args = parser.parse_args(argv)

    cells = ops_grid(args.shapes, args.ops, args.packs, args.modes, args.precisions)
    if args.report or not args.out:
        print(ops_report(cells))
    if args.out:
        from repro.bench.serialize import ops_to_json

        with open(args.out, "w") as fh:
            fh.write(ops_to_json(ops_document(cells)) + "\n")
        print(f"wrote {args.out} ({len(cells)} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
