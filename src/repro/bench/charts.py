"""ASCII chart rendering for figure-style bench output.

The paper's Figs. 1/2 are stacked bar charts and Figs. 4/5/6 grouped bars.
For a terminal-only library the closest faithful rendering is horizontal
ASCII bars; :func:`stacked_bars` draws one labelled bar per row with
per-segment characters, plus a legend.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

#: Fill characters assigned to stack segments, in order.
_SEGMENT_CHARS = "#=+.*o@%"


def horizontal_bars(
    rows: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """One horizontal bar per (label, value); scaled to the max value."""
    if not rows:
        return title
    peak = max(rows.values()) or 1.0
    label_w = max(len(k) for k in rows)
    lines: List[str] = [title] if title else []
    for label, value in rows.items():
        filled = int(round(width * value / peak))
        lines.append(f"{label.ljust(label_w)} |{'#' * filled:<{width}}| {value:.3g}{unit}")
    return "\n".join(lines)


def stacked_bars(
    rows: Mapping[str, Mapping[str, float]],
    segments: Sequence[str],
    width: int = 60,
    unit: str = "",
    title: str = "",
) -> str:
    """One stacked horizontal bar per row, one character class per segment.

    ``rows`` maps a label to {segment -> value}; ``segments`` fixes the
    stacking order and the legend.
    """
    if not rows:
        return title
    totals = {label: sum(parts.get(s, 0.0) for s in segments) for label, parts in rows.items()}
    peak = max(totals.values()) or 1.0
    label_w = max(len(k) for k in rows)
    lines: List[str] = [title] if title else []
    for label, parts in rows.items():
        bar = ""
        for i, segment in enumerate(segments):
            value = parts.get(segment, 0.0)
            bar += _SEGMENT_CHARS[i % len(_SEGMENT_CHARS)] * int(round(width * value / peak))
        lines.append(f"{label.ljust(label_w)} |{bar:<{width}}| {totals[label]:.3g}{unit}")
    legend = "  ".join(
        f"{_SEGMENT_CHARS[i % len(_SEGMENT_CHARS)]}={segment}"
        for i, segment in enumerate(segments)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def series_table(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    unit: str = "",
    title: str = "",
) -> str:
    """Numeric multi-series table (for Fig. 6-style line plots)."""
    label_w = max([len(k) for k in series] + [6])
    col_w = max([len(x) for x in x_labels] + [8])
    lines: List[str] = [title] if title else []
    header = " " * label_w + "  " + "  ".join(x.rjust(col_w) for x in x_labels)
    lines.append(header)
    for name, values in series.items():
        cells = "  ".join(f"{v:.4g}{unit}".rjust(col_w) for v in values)
        lines.append(f"{name.ljust(label_w)}  {cells}")
    return "\n".join(lines)
