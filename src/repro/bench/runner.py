"""Experiment runners shared by the benchmark suite.

Each function reproduces one observable of the paper; the ``benchmarks/``
tests call these with documented (reduced) parameters and print the same
rows/series the paper reports.  See DESIGN.md section 4 for the experiment
index and section 7 for the scaling knobs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets import load_dataset
from repro.device import Device, use_device
from repro.models import MODEL_NAMES, graph_config
from repro.nn import cross_entropy
from repro.optim import Adam
from repro.serve import DynamicBatcher, InferenceModel, ServeSimulator
from repro.serve.metrics import ServingResult
from repro.train import (
    ExperimentResult,
    GraphClassificationTrainer,
    NodeClassificationTrainer,
    RunResult,
    multi_gpu_epoch_time,
)

FRAMEWORKS = ("pygx", "dglx")
PHASE_ORDER = ("data_loading", "forward", "backward", "update", "other")


# ----------------------------------------------------------------------
# Tables IV and V
# ----------------------------------------------------------------------
def table4_cell(
    framework: str,
    model: str,
    dataset_name: str,
    max_epochs: int = 200,
    seeds: Sequence[int] = (0, 1, 2, 3),
) -> ExperimentResult:
    """One (framework, model, dataset) cell of Table IV."""
    dataset = load_dataset(dataset_name)
    trainer = NodeClassificationTrainer(framework, model, dataset, max_epochs=max_epochs)
    return trainer.run_seeds(seeds)


def table5_cell(
    framework: str,
    model: str,
    dataset_name: str,
    num_graphs: int = 0,
    batch_size: int = 128,
    max_epochs: int = 1000,
    n_folds: int = 10,
    max_folds: Optional[int] = None,
) -> ExperimentResult:
    """One (framework, model, dataset) cell of Table V."""
    dataset = load_dataset(dataset_name, num_graphs=num_graphs)
    trainer = GraphClassificationTrainer(
        framework, model, dataset, batch_size=batch_size, max_epochs=max_epochs
    )
    return trainer.cross_validate(n_folds=n_folds, max_folds=max_folds)


# ----------------------------------------------------------------------
# Fig. 1 / 2 (breakdown), Fig. 4 (memory), Fig. 5 (utilisation)
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def epoch_profile(
    framework: str,
    model: str,
    dataset_name: str,
    batch_size: int,
    num_graphs: int = 0,
    n_epochs: int = 2,
) -> RunResult:
    """Timing-only epochs for one configuration (phases, memory, util).

    Results are cached per process: the Fig. 1/2 grids and the Fig. 4/5
    grids are the same runs read through different observables, so one
    ``pytest benchmarks/`` invocation executes each configuration once.
    """
    dataset = load_dataset(dataset_name, num_graphs=num_graphs)
    trainer = GraphClassificationTrainer(framework, model, dataset, batch_size=batch_size)
    return trainer.measure_epoch(n_epochs=n_epochs)


def breakdown_row(result: RunResult) -> Dict[str, float]:
    """Fig. 1/2 series for one run: per-phase seconds per epoch + 'other'."""
    phases = result.mean_phase_times()
    row = {name: phases.get(name, 0.0) for name in PHASE_ORDER if name != "other"}
    row["other"] = max(result.mean_epoch_time - sum(row.values()), 0.0)
    return row


def breakdown_sweep(
    dataset_name: str,
    batch_sizes: Iterable[int],
    models: Sequence[str] = MODEL_NAMES,
    frameworks: Sequence[str] = FRAMEWORKS,
    num_graphs: int = 0,
    n_epochs: int = 2,
) -> Dict[Tuple[str, str, int], RunResult]:
    """Run the full (model, framework, batch size) grid used by Fig. 1/2/4/5."""
    results: Dict[Tuple[str, str, int], RunResult] = {}
    for model in models:
        for framework in frameworks:
            for batch_size in batch_sizes:
                results[(framework, model, batch_size)] = epoch_profile(
                    framework, model, dataset_name, batch_size, num_graphs, n_epochs
                )
    return results


# ----------------------------------------------------------------------
# single-batch setup shared by the step-level benches
# ----------------------------------------------------------------------
def _single_batch(framework: str, config, dataset, batch_size: int, rng: np.random.Generator):
    """(model, batched input, labels) for one training batch of ``dataset``."""
    if framework == "pygx":
        from repro.pygx import Batch, Data, build_model

        net = build_model(config, rng)
        inputs = Batch.from_data_list(
            [Data.from_sample(g) for g in dataset.graphs[:batch_size]]
        )
        labels = inputs.y
    elif framework == "dglx":
        from repro.dglx import batch as dgl_batch
        from repro.dglx import build_model

        net = build_model(config, rng)
        samples = dataset.graphs[:batch_size]
        inputs = dgl_batch(samples)
        labels = np.array([g.y for g in samples])
    else:
        raise ValueError(f"unknown framework {framework!r}")
    return net, inputs, labels


# ----------------------------------------------------------------------
# Fig. 3 (layer-wise execution time of one training batch)
# ----------------------------------------------------------------------
def layerwise_profile(
    framework: str,
    model: str,
    dataset_name: str,
    batch_size: int = 128,
    num_graphs: int = 0,
    seed: int = 0,
) -> Dict[str, float]:
    """Execution time per layer scope for one forward+backward+update step.

    Returns seconds per scope: ``conv1``..``convL``, ``pooling`` and
    ``classifier`` — each the *elapsed* time inside the module (kernel
    durations + launch overhead + framework host work), which is the
    quantity the paper's Fig. 3 plots.  Backward time runs outside module
    scopes (as it does under nvprof) and lands in ``other`` together with
    the optimizer.
    """
    dataset = load_dataset(dataset_name, num_graphs=num_graphs)
    config = graph_config(model, in_dim=dataset.num_features, n_classes=dataset.num_classes)
    device = Device()
    with use_device(device):
        rng = np.random.default_rng(seed)
        net, inputs, labels = _single_batch(framework, config, dataset, batch_size, rng)
        optimizer = Adam(net.parameters(), lr=config.lr)
        # Warm-up step (allocators, CSR caches), then profile one step.
        loss = cross_entropy(net(inputs), labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()

        device.profiler.enabled = True
        device.profiler.clear()
        before_scopes = dict(device.scope_elapsed)
        before = device.clock.snapshot()
        loss = cross_entropy(net(inputs), labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        device.profiler.enabled = False

        scopes: Dict[str, float] = {}
        for i in range(config.n_layers):
            scopes[f"conv{i + 1}"] = device.scope_component_time(
                f"conv{i + 1}", since=before_scopes
            )
        scopes["pooling"] = device.scope_component_time("pooling", since=before_scopes)
        scopes["classifier"] = device.scope_component_time("classifier", since=before_scopes)
        step_elapsed = before.delta(device.clock).elapsed
        scopes["other"] = max(step_elapsed - sum(scopes.values()), 0.0)
        return scopes


# ----------------------------------------------------------------------
# repro.compile: eager vs compiled kernel streams
# ----------------------------------------------------------------------
def step_kernel_records(
    framework: str,
    model: str,
    dataset_name: str,
    batch_size: int = 128,
    num_graphs: int = 0,
    seed: int = 0,
    compiled: bool = False,
):
    """Kernel records of one profiled training step, eager or compiled.

    Runs one warm-up step (the capture step, when ``compiled=True``) and
    profiles the next — the same one-batch protocol as the Fig. 3 bench.
    """
    dataset = load_dataset(dataset_name, num_graphs=num_graphs)
    config = graph_config(model, in_dim=dataset.num_features, n_classes=dataset.num_classes)
    device = Device()
    with use_device(device):
        rng = np.random.default_rng(seed)
        net, inputs, labels = _single_batch(framework, config, dataset, batch_size, rng)
        optimizer = Adam(net.parameters(), lr=config.lr)

        def train_step():
            loss = cross_entropy(net(inputs), labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            return loss

        train_step()  # warm-up: allocators + framework CSR caches
        if compiled:
            from repro.compile import CompiledStep

            step = CompiledStep(train_step)
            step()  # capture step (runs eagerly, builds the plan)
        else:
            step = train_step
        device.profiler.enabled = True
        device.profiler.clear()
        step()
        device.profiler.enabled = False
        return list(device.profiler.records)


def compile_cell(
    framework: str,
    model: str,
    dataset_name: str,
    batch_size: int = 128,
    num_graphs: int = 0,
    n_epochs: int = 2,
    seed: int = 0,
) -> Dict:
    """Eager-vs-compiled comparison for one (framework, model) pair.

    Trains the same seeds twice — once eagerly, once through
    ``repro.compile`` — and reports per-epoch time, per-step kernel
    launches, and whether the loss curves match exactly (they must: replay
    re-executes the same numpy program).
    """
    from repro.train import GraphClassificationTrainer

    dataset = load_dataset(dataset_name, num_graphs=num_graphs)
    eager_tr = GraphClassificationTrainer(framework, model, dataset, batch_size=batch_size)
    eager = eager_tr.measure_epoch(n_epochs=n_epochs, seed=seed)
    compiled_tr = GraphClassificationTrainer(
        framework, model, dataset, batch_size=batch_size, compile=True
    )
    comp = compiled_tr.measure_epoch(n_epochs=n_epochs, seed=seed)

    step = compiled_tr.compiled_step
    plan = (
        max(step.plans.values(), key=lambda p: p.eager_launches) if step.plans else None
    )
    eager_losses = [e.train_loss for e in eager.epochs]
    compiled_losses = [e.train_loss for e in comp.epochs]
    return {
        "framework": framework,
        "model": model,
        "dataset": dataset_name,
        "batch_size": batch_size,
        "eager_epoch_time": eager.mean_epoch_time,
        "compiled_epoch_time": comp.mean_epoch_time,
        "speedup": eager.mean_epoch_time / comp.mean_epoch_time
        if comp.mean_epoch_time
        else 1.0,
        "eager_launches_per_step": plan.eager_launches if plan else 0,
        "compiled_launches_per_step": plan.compiled_launches if plan else 0,
        "launch_reduction": plan.launch_reduction if plan else 0.0,
        "captures": step.stats.captures,
        "replays": step.stats.replays,
        "guard_failures": step.stats.guard_failures,
        "pass_stats": {
            "dce_removed": plan.stats.dce_removed,
            "cse_removed": plan.stats.cse_removed,
            "folded": plan.stats.folded,
            "fused_groups": plan.stats.fused_groups,
            "fused_members": plan.stats.fused_members,
        }
        if plan
        else {},
        "eager_losses": eager_losses,
        "compiled_losses": compiled_losses,
        "parity": bool(
            len(eager_losses) == len(compiled_losses)
            and np.allclose(eager_losses, compiled_losses, rtol=1e-6, atol=0.0)
        ),
    }


# ----------------------------------------------------------------------
# Overlap (streams + prefetch): executed pipelining vs the projection
# ----------------------------------------------------------------------
def overlap_cell(
    framework: str,
    model: str,
    dataset_name: str,
    batch_size: int = 16,
    num_graphs: int = 0,
    n_epochs: int = 2,
    seed: int = 0,
    compiled: bool = False,
    tolerance: float = 0.05,
) -> Dict:
    """Serial vs prefetch-pipelined training for one configuration.

    Runs the same timing epochs twice — serial, then with
    ``prefetch=True`` — projects the pipelined epoch time from the serial
    phase breakdown (:func:`~repro.bench.overlap.project_overlap`), and
    checks that (a) the executed overlapped epoch lands within
    ``tolerance`` of the projection and (b) losses and test accuracy are
    bitwise identical — prefetching moves time, never numerics.
    """
    from repro.bench.overlap import project_overlap
    from repro.train import GraphClassificationTrainer

    dataset = load_dataset(dataset_name, num_graphs=num_graphs)
    serial_tr = GraphClassificationTrainer(
        framework, model, dataset, batch_size=batch_size, compile=compiled
    )
    serial = serial_tr.measure_epoch(n_epochs=n_epochs, seed=seed)
    projection = project_overlap(serial)
    overlap_tr = GraphClassificationTrainer(
        framework, model, dataset, batch_size=batch_size,
        compile=compiled, prefetch=True,
    )
    overlapped = overlap_tr.measure_epoch(n_epochs=n_epochs, seed=seed)

    serial_losses = [e.train_loss for e in serial.epochs]
    overlap_losses = [e.train_loss for e in overlapped.epochs]
    projected = projection.overlapped_epoch
    gap = (
        abs(overlapped.mean_epoch_time - projected) / projected if projected else 0.0
    )
    return {
        "framework": framework,
        "model": model,
        "dataset": dataset_name,
        "batch_size": batch_size,
        "compiled": compiled,
        "serial_epoch": serial.mean_epoch_time,
        "projected_epoch": projected,
        "overlapped_epoch": overlapped.mean_epoch_time,
        "speedup": (
            serial.mean_epoch_time / overlapped.mean_epoch_time
            if overlapped.mean_epoch_time
            else 1.0
        ),
        "projection_gap": gap,
        "within_projection": bool(gap <= tolerance),
        "serial_utilization": serial.gpu_utilization,
        "overlapped_utilization": overlapped.gpu_utilization,
        "serial_losses": serial_losses,
        "overlapped_losses": overlap_losses,
        "parity": bool(
            serial_losses == overlap_losses and serial.test_acc == overlapped.test_acc
        ),
    }


OVERLAP_COLUMNS = [
    "model",
    "fw",
    "mode",
    "serial(ms)",
    "projected(ms)",
    "executed(ms)",
    "gap",
    "speedup",
    "util",
    "numerics",
]


def overlap_row(cell: Dict) -> List[str]:
    """Human-readable table row for one overlap cell."""
    return [
        cell["model"],
        cell["framework"],
        "compiled" if cell["compiled"] else "eager",
        f"{cell['serial_epoch'] * 1e3:.2f}",
        f"{cell['projected_epoch'] * 1e3:.2f}",
        f"{cell['overlapped_epoch'] * 1e3:.2f}",
        f"{cell['projection_gap'] * 100:.1f}%",
        f"{cell['speedup']:.2f}x",
        f"{cell['serial_utilization'] * 100:.0f}->{cell['overlapped_utilization'] * 100:.0f}%",
        "exact" if cell["parity"] else "DIVERGED",
    ]


# ----------------------------------------------------------------------
# Serving (repro.serve): dynamic-batching inference under open-loop load
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def trained_inference_model(
    framework: str,
    model: str,
    dataset_name: str,
    num_graphs: int = 0,
    train_epochs: int = 2,
    seed: int = 0,
) -> InferenceModel:
    """Briefly train one model and wrap it for serving (cached per process).

    Serving benchmarks care about the latency/throughput of the inference
    path, not converged accuracy, so a couple of epochs suffice — the same
    trade the Fig. 1/2 timing benches make.
    """
    dataset = load_dataset(dataset_name, num_graphs=num_graphs)
    trainer = GraphClassificationTrainer(framework, model, dataset, batch_size=128)
    trainer.measure_epoch(n_epochs=train_epochs, seed=seed)
    return InferenceModel(framework, trainer.final_model, trainer.config, dataset_name)


def serving_cell(
    framework: str,
    model: str,
    dataset_name: str,
    arrivals: Sequence[float],
    max_batch_size: int = 32,
    max_nodes: Optional[int] = 4096,
    queue_capacity: int = 128,
    deadline: Optional[float] = None,
    num_graphs: int = 0,
    train_epochs: int = 2,
    seed: int = 0,
) -> ServingResult:
    """Replay one arrival trace against a briefly-trained model."""
    inference = trained_inference_model(
        framework, model, dataset_name, num_graphs, train_epochs, seed
    )
    simulator = ServeSimulator(
        inference,
        DynamicBatcher(max_batch_size=max_batch_size, max_nodes=max_nodes),
        queue_capacity=queue_capacity,
        deadline=deadline,
    )
    dataset = load_dataset(dataset_name, num_graphs=num_graphs)
    return simulator.replay(dataset.graphs, arrivals)


def serving_row(result: ServingResult) -> List[str]:
    """Human-readable table row for one serving run."""
    return [
        result.model,
        result.framework,
        str(result.completed),
        str(result.shed),
        f"{result.p50 * 1e3:.2f}",
        f"{result.p95 * 1e3:.2f}",
        f"{result.p99 * 1e3:.2f}",
        f"{result.throughput:.0f}",
        f"{result.mean_batch_size:.2f}",
        str(result.max_queue_depth),
    ]


SERVING_COLUMNS = [
    "model",
    "fw",
    "done",
    "shed",
    "p50(ms)",
    "p95(ms)",
    "p99(ms)",
    "req/s",
    "batch",
    "maxq",
]


# ----------------------------------------------------------------------
# Fault injection (repro.faults): goodput/latency under scheduled faults
# ----------------------------------------------------------------------
def faults_cell(
    framework: str,
    model: str,
    dataset_name: str,
    arrivals: Sequence[float],
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    stall_rate: Optional[float] = None,
    max_batch_size: int = 32,
    queue_capacity: int = 128,
    num_graphs: int = 0,
    train_epochs: int = 2,
    seed: int = 0,
) -> Dict:
    """One serving run under a seeded fault schedule.

    ``fault_rate`` is applied as both the per-alloc OOM probability and
    the per-launch transient-kernel-fault probability; ``stall_rate``
    defaults to the same value.  ``fault_rate=0`` is the fault-free
    baseline the sweep is compared against.
    """
    from repro.faults import FaultPlan

    inference = trained_inference_model(
        framework, model, dataset_name, num_graphs, train_epochs, seed
    )
    plan = None
    if fault_rate or stall_rate:
        plan = FaultPlan(
            seed=fault_seed,
            oom_rate=fault_rate,
            kernel_fault_rate=fault_rate,
            stall_rate=fault_rate if stall_rate is None else stall_rate,
        )
    simulator = ServeSimulator(
        inference,
        DynamicBatcher(max_batch_size=max_batch_size, max_nodes=4096),
        queue_capacity=queue_capacity,
        fault_plan=plan,
    )
    dataset = load_dataset(dataset_name, num_graphs=num_graphs)
    result = simulator.replay(dataset.graphs, arrivals)
    return {
        "framework": framework,
        "model": model,
        "dataset": dataset_name,
        "fault_rate": fault_rate,
        "fault_seed": fault_seed,
        "n_requests": result.n_requests,
        "completed": result.completed,
        "shed": result.shed,
        "failed": result.failed,
        "resolved": result.resolved,
        "shed_by_reason": dict(result.shed_by_reason),
        "failed_by_reason": dict(result.failed_by_reason),
        "retries": result.retries,
        "batch_splits": result.batch_splits,
        "circuit_opens": result.circuit_opens,
        "goodput": result.goodput,
        "p50": result.p50,
        "p99": result.p99,
        "mean_batch_size": result.mean_batch_size,
        "elapsed": result.elapsed,
    }


FAULTS_COLUMNS = [
    "rate",
    "model",
    "fw",
    "done",
    "shed",
    "failed",
    "retries",
    "splits",
    "opens",
    "goodput",
    "p99(ms)",
]


def faults_row(cell: Dict) -> List[str]:
    """Human-readable table row for one fault-sweep cell."""
    return [
        f"{cell['fault_rate']:.3f}",
        cell["model"],
        cell["framework"],
        str(cell["completed"]),
        str(cell["shed"]),
        str(cell["failed"]),
        str(cell["retries"]),
        str(cell["batch_splits"]),
        str(cell["circuit_opens"]),
        f"{cell['goodput']:.0f}",
        f"{cell['p99'] * 1e3:.2f}",
    ]


# ----------------------------------------------------------------------
# Fig. 6 (multi-GPU)
# ----------------------------------------------------------------------
def multigpu_series(
    models: Sequence[str] = ("gcn", "gat"),
    frameworks: Sequence[str] = FRAMEWORKS,
    batch_sizes: Sequence[int] = (128, 256, 512),
    gpu_counts: Sequence[int] = (1, 2, 4, 8),
    num_graphs: int = 2000,
    max_batches: Optional[int] = 3,
) -> Dict[Tuple[str, str, int, int], float]:
    """Per-epoch time for the (model, framework, batch, GPUs) grid of Fig. 6."""
    dataset = load_dataset("mnist", num_graphs=num_graphs)
    out: Dict[Tuple[str, str, int, int], float] = {}
    for model in models:
        for framework in frameworks:
            for batch_size in batch_sizes:
                for n_gpus in gpu_counts:
                    out[(framework, model, batch_size, n_gpus)] = multi_gpu_epoch_time(
                        framework,
                        model,
                        dataset,
                        batch_size=batch_size,
                        n_gpus=n_gpus,
                        max_batches=max_batches,
                    )
    return out
