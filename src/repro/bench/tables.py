"""Plain-text table rendering for bench output (paper tables/figures)."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Render an ASCII table with per-column widths."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Paper-style time formatting: ms-scale epochs, s or hr totals."""
    if seconds < 1.0:
        return f"{seconds:.4f}s"
    if seconds < 3600.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 3600.0:.2f}hr"
