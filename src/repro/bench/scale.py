"""Million-node scale benches: sampled training under a memory cap and
sampled-vs-full accuracy parity.

Three cell kinds back ``benchmarks/test_scale_sampling.py``:

* :func:`scale_parity_cell` — smoke-scale accuracy protocol.  A full-batch
  baseline (:class:`~repro.train.NodeClassificationTrainer` over the
  materialised COO graph) against fanout-sampled training
  (:class:`~repro.train.SampledNodeTrainer` with ``full_graph_norm``),
  evaluated through :func:`~repro.scale.partitioned_inference` so the
  whole sampled-training/partitioned-serving path is what parity gates.
* :func:`scale_training_cell` — sampled mini-batch training of a
  million-node graph on a device capped *below* the full-graph memory
  floor, with ``prefetch`` + ``compile`` on.  Running at all is the
  point: full-graph training provably cannot fit
  (:func:`~repro.scale.full_graph_training_memory_floor`), sampled
  training fits with two orders of magnitude to spare.
* :func:`scale_partitioned_cell` — full-graph inference over the same
  capped device via degree-balanced partitions and halo exchange, one
  part resident at a time.

Everything is a deterministic function of the seeds: the simulated clock
and memory pool make the timing/peak metrics reproducible across hosts,
so ``tools/check_bench_regression.py`` can gate them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.device import Device, use_device
from repro.device.gpu import RTX_2080TI
from repro.scale import (
    ScaleNodeDataset,
    degree_balanced_partition,
    full_graph_training_memory_floor,
    make_scale_dataset,
    partitioned_inference,
)
from repro.train import NodeClassificationTrainer, SampledNodeTrainer

SCALE_FRAMEWORKS = ("pygx", "dglx")
SCALE_MODELS = ("gcn", "sage")

#: Simulated device capacity for the million-node cells: 2 GB sits below
#: the ~2.4 GB full-graph training floor of the narrowest model (SAGE) on
#: the 1M-node graph, so full-graph training provably cannot fit while
#: sampled training and partitioned inference must prove they do.
MEMORY_CAP_BYTES = 2_000_000_000


def capped_device(memory_bytes: int = MEMORY_CAP_BYTES) -> Device:
    """An RTX 2080 Ti whose memory pool is capped at ``memory_bytes``.

    Allocations beyond the cap raise
    :class:`~repro.device.OutOfMemoryError`, so a run completing on this
    device is a proof of fit, not a bookkeeping claim.
    """
    spec = replace(
        RTX_2080TI,
        name=f"{RTX_2080TI.name} (capped {memory_bytes / 1e9:.1f}GB)",
        memory_bytes=memory_bytes,
    )
    return Device(spec)


def smoke_scale_dataset(n_nodes: int = 10_000, seed: int = 0) -> ScaleNodeDataset:
    """The parity-protocol graph: homophilous enough for GCN to learn.

    High ``a`` R-MAT mass (0.75 on the diagonal quadrant), 4 classes,
    strong feature signal and self loops; the 20% test split keeps the
    parity gap's sampling noise well under the 2% tolerance.
    """
    return make_scale_dataset(
        n_nodes,
        avg_degree=8.0,
        n_classes=4,
        n_features=32,
        seed=seed,
        feature_signal=3.0,
        test_fraction=0.2,
        rmat_abc=(0.75, 0.10, 0.10),
        self_loops=True,
    )


def million_scale_dataset(n_nodes: int = 1_000_000, seed: int = 0) -> ScaleNodeDataset:
    """The capped-memory protocol graph: 1M nodes, ~17M symmetrised edges.

    Split fractions are scaled down (2%/0.5%/0.5%) so sampled epochs and
    eval passes stay minutes-scale while still covering tens of thousands
    of seed nodes.
    """
    return make_scale_dataset(
        n_nodes,
        avg_degree=8.0,
        n_classes=8,
        n_features=32,
        seed=seed,
        train_fraction=0.02,
        val_fraction=0.005,
        test_fraction=0.005,
        self_loops=True,
    )


def _partitioned_test_accuracy(
    framework: str,
    model,
    dataset: ScaleNodeDataset,
    k: int,
    device: Device,
) -> float:
    """Test accuracy of ``model`` via per-partition halo-exchange inference."""
    with use_device(device):
        partition = degree_balanced_partition(dataset.graph, k)
        logits = partitioned_inference(framework, model, dataset.graph, partition)
    pred = logits[dataset.test_idx].argmax(axis=1)
    return float((pred == dataset.graph.y[dataset.test_idx]).mean())


# ----------------------------------------------------------------------
# Smoke-scale parity: sampled training must match the full-batch baseline
# ----------------------------------------------------------------------
def scale_parity_cell(
    framework: str,
    model: str,
    dataset: ScaleNodeDataset,
    seed: int = 0,
    fanouts: Sequence[int] = (32, 32),
    batch_size: int = 512,
    sampled_epochs: int = 50,
    full_epochs: int = 100,
    parts: int = 4,
    tolerance: float = 0.02,
) -> Dict:
    """Sampled-vs-full accuracy parity for one (framework, model) pair.

    The sampled side trains with ``full_graph_norm`` (the Horvitz-Thompson
    degree debiasing that makes sampled aggregation an unbiased estimate
    of the full-graph layer) and is *evaluated through partitioned
    inference* — the deployment path — so the gated gap covers training
    estimator bias and the halo-exchange execution at once.
    """
    full = NodeClassificationTrainer(
        framework, model, dataset.to_node_dataset(), max_epochs=full_epochs
    )
    full_result = full.run(seed)

    trainer = SampledNodeTrainer(
        framework,
        model,
        dataset,
        fanouts=fanouts,
        batch_size=batch_size,
        max_epochs=sampled_epochs,
        ensure_self_loops=True,
        full_graph_norm=True,
    )
    sampled_result = trainer.run(seed)
    part_acc = _partitioned_test_accuracy(
        framework, trainer.final_model, dataset, parts, trainer.device
    )
    gap = abs(full_result.test_acc - part_acc)
    return {
        "framework": framework,
        "model": model,
        "n_nodes": dataset.graph.num_nodes,
        "n_edges": dataset.graph.num_edges,
        "full_acc": float(full_result.test_acc),
        "sampled_acc": float(sampled_result.test_acc),
        "partitioned_acc": part_acc,
        "gap": float(gap),
        "tolerance": tolerance,
        "within_tolerance": bool(gap <= tolerance),
        "full_peak_mb": full_result.peak_memory / 1e6,
        "sampled_peak_mb": sampled_result.peak_memory / 1e6,
    }


# ----------------------------------------------------------------------
# Million-node sampled training under the memory cap
# ----------------------------------------------------------------------
def scale_training_cell(
    framework: str,
    model: str,
    dataset: ScaleNodeDataset,
    seed: int = 0,
    fanouts: Sequence[int] = (10, 10),
    batch_size: int = 1024,
    max_epochs: int = 2,
    max_batches: int = 20,
    memory_bytes: int = MEMORY_CAP_BYTES,
) -> Dict:
    """Sampled training of one pair on the capped device.

    ``prefetch`` and ``compile`` are on — the cell exercises the full
    execution stack (sampling -> pipelined collation -> captured replay).
    ``under_cap`` is trivially honest: the capped pool would have raised
    :class:`~repro.device.OutOfMemoryError` otherwise.
    """
    trainer = SampledNodeTrainer(
        framework,
        model,
        dataset,
        fanouts=fanouts,
        batch_size=batch_size,
        max_epochs=max_epochs,
        max_batches=max_batches,
        device=capped_device(memory_bytes),
        compile=True,
        prefetch=True,
        ensure_self_loops=True,
        full_graph_norm=True,
    )
    result = trainer.run(seed)
    train_time = sum(r.train_time for r in result.epochs)
    sampling = sum(r.phase_times.get("sampling", 0.0) for r in result.epochs)
    floor = full_graph_training_memory_floor(
        dataset.graph.num_nodes, dataset.graph.num_edges, trainer.config
    )
    stats = trainer.compiled_step.stats
    return {
        "framework": framework,
        "model": model,
        "n_nodes": dataset.graph.num_nodes,
        "n_edges": dataset.graph.num_edges,
        "batches_per_epoch": max_batches,
        "epoch_time": train_time / max_epochs,
        "epochs_per_sec": max_epochs / train_time,
        "sampling_fraction": sampling / train_time,
        "peak_memory": int(result.peak_memory),
        "memory_cap": int(memory_bytes),
        "under_cap": bool(result.peak_memory <= memory_bytes),
        "full_graph_floor": int(floor),
        "full_graph_exceeds_cap": bool(floor > memory_bytes),
        "captures": stats.captures,
        "replays": stats.replays,
        "final_train_loss": float(result.epochs[-1].train_loss),
        "val_acc": float(result.epochs[-1].val_acc),
    }


# ----------------------------------------------------------------------
# Million-node partitioned full-graph inference under the memory cap
# ----------------------------------------------------------------------
def scale_partitioned_cell(
    framework: str,
    model: str,
    dataset: ScaleNodeDataset,
    seed: int = 0,
    k: int = 32,
    memory_bytes: int = MEMORY_CAP_BYTES,
    fanouts: Sequence[int] = (10, 10),
    batch_size: int = 1024,
    train_epochs: int = 1,
    train_batches: int = 10,
) -> Dict:
    """Full-graph inference via ``k`` halo-exchange partitions.

    A short sampled-training run produces the weights; the inference pass
    then touches every node of the graph on the capped device — only one
    part's working set is resident at a time, which is the entire reason
    the cap is survivable.
    """
    trainer = SampledNodeTrainer(
        framework,
        model,
        dataset,
        fanouts=fanouts,
        batch_size=batch_size,
        max_epochs=train_epochs,
        max_batches=train_batches,
        device=capped_device(memory_bytes),
        ensure_self_loops=True,
        full_graph_norm=True,
    )
    trainer.run(seed)

    device = capped_device(memory_bytes)
    device.memory.reset_peak()
    before = device.clock.snapshot()
    partition = degree_balanced_partition(dataset.graph, k)
    with use_device(device):
        logits = partitioned_inference(
            framework, trainer.final_model, dataset.graph, partition
        )
    elapsed = before.delta(device.clock).elapsed
    pred = logits[dataset.test_idx].argmax(axis=1)
    acc = float((pred == dataset.graph.y[dataset.test_idx]).mean())
    stats = partition.stats()
    return {
        "framework": framework,
        "model": model,
        "k": k,
        "n_nodes": dataset.graph.num_nodes,
        "n_edges": dataset.graph.num_edges,
        "inference_time": float(elapsed),
        "test_acc": acc,
        "peak_memory": int(device.memory.peak),
        "memory_cap": int(memory_bytes),
        "under_cap": bool(device.memory.peak <= memory_bytes),
        "edge_balance": float(stats.edge_balance),
        "replication_factor": float(stats.replication_factor),
        "cut_edges": int(stats.cut_edges),
    }


# ----------------------------------------------------------------------
# Table renderers
# ----------------------------------------------------------------------
SCALE_PARITY_COLUMNS = [
    "model", "fw", "full acc", "sampled acc", "part acc", "gap", "parity",
]

SCALE_TRAIN_COLUMNS = [
    "model", "fw", "epoch(s)", "ep/s", "sampling", "peak(MB)", "cap(MB)",
    "fits", "full floor(GB)", "full fits",
]

SCALE_PART_COLUMNS = [
    "model", "fw", "k", "time(s)", "peak(MB)", "cap(MB)", "fits", "test acc",
]


def scale_parity_row(cell: Dict) -> List[str]:
    """Human-readable table row for one parity cell."""
    return [
        cell["model"],
        cell["framework"],
        f"{cell['full_acc']:.3f}",
        f"{cell['sampled_acc']:.3f}",
        f"{cell['partitioned_acc']:.3f}",
        f"{cell['gap']:.3f}",
        "ok" if cell["within_tolerance"] else "DIVERGED",
    ]


def scale_train_row(cell: Dict) -> List[str]:
    """Human-readable table row for one capped-training cell."""
    return [
        cell["model"],
        cell["framework"],
        f"{cell['epoch_time']:.3f}",
        f"{cell['epochs_per_sec']:.2f}",
        f"{cell['sampling_fraction'] * 100:.0f}%",
        f"{cell['peak_memory'] / 1e6:.0f}",
        f"{cell['memory_cap'] / 1e6:.0f}",
        "yes" if cell["under_cap"] else "OOM",
        f"{cell['full_graph_floor'] / 1e9:.2f}",
        "no" if cell["full_graph_exceeds_cap"] else "yes",
    ]


def scale_partitioned_row(cell: Dict) -> List[str]:
    """Human-readable table row for one partitioned-inference cell."""
    return [
        cell["model"],
        cell["framework"],
        str(cell["k"]),
        f"{cell['inference_time']:.2f}",
        f"{cell['peak_memory'] / 1e6:.0f}",
        f"{cell['memory_cap'] / 1e6:.0f}",
        "yes" if cell["under_cap"] else "OOM",
        f"{cell['test_acc']:.3f}",
    ]
