"""Loading/compute overlap projection.

The paper notes that low GPU utilisation "indicates that throughput is
limited by other resources, such as CPU or data communication, and further
improvement can be achieved by overlapping CPU runtime or data
communication with GPU execution" (Section IV-D).

The simulated execution model is serial (like the measured frameworks), but
given a phase breakdown we can *project* what a perfectly pipelined loader
would achieve: CPU collation of batch ``i+1`` hidden behind the device work
of batch ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.train.results import RunResult


@dataclass(frozen=True)
class OverlapProjection:
    """Serial vs pipelined epoch time for one measured configuration."""

    serial_epoch: float
    overlapped_epoch: float

    @property
    def speedup(self) -> float:
        if self.overlapped_epoch == 0.0:
            return 1.0
        return self.serial_epoch / self.overlapped_epoch


def project_overlap(result: RunResult) -> OverlapProjection:
    """Project the epoch time with loading fully overlapped with compute.

    With pipelining, each step costs ``max(loading, device work)``; the
    epoch therefore costs approximately ``max(total_loading, total_rest)``
    plus one pipeline fill, which we fold into the max (an optimistic
    bound, as a projection should be).
    """
    phases = result.mean_phase_times()
    loading = phases.get("data_loading", 0.0)
    rest = result.mean_epoch_time - loading
    return OverlapProjection(
        serial_epoch=result.mean_epoch_time,
        overlapped_epoch=max(loading, rest),
    )
