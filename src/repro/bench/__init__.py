"""Experiment runners + renderers for the paper's tables and figures."""

from repro.bench.runner import (
    FRAMEWORKS,
    PHASE_ORDER,
    SERVING_COLUMNS,
    breakdown_row,
    breakdown_sweep,
    compile_cell,
    epoch_profile,
    layerwise_profile,
    step_kernel_records,
    multigpu_series,
    serving_cell,
    serving_row,
    table4_cell,
    table5_cell,
    trained_inference_model,
)
from repro.bench.charts import horizontal_bars, series_table, stacked_bars
from repro.bench.overlap import OverlapProjection, project_overlap
from repro.bench.serialize import (
    experiments_from_json,
    experiments_to_csv,
    experiments_to_json,
    servings_from_json,
    servings_to_json,
)
from repro.bench.tables import format_seconds, format_table

__all__ = [
    "FRAMEWORKS",
    "PHASE_ORDER",
    "table4_cell",
    "table5_cell",
    "epoch_profile",
    "breakdown_row",
    "breakdown_sweep",
    "layerwise_profile",
    "multigpu_series",
    "format_table",
    "format_seconds",
    "horizontal_bars",
    "stacked_bars",
    "series_table",
    "project_overlap",
    "OverlapProjection",
    "experiments_to_json",
    "experiments_from_json",
    "experiments_to_csv",
    "servings_to_json",
    "servings_from_json",
    "serving_cell",
    "serving_row",
    "SERVING_COLUMNS",
    "compile_cell",
    "step_kernel_records",
    "trained_inference_model",
]
