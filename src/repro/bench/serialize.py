"""Serialisation of experiment results to JSON/CSV.

Benches print human-readable tables; downstream analysis (plotting the
figures, diffing runs) wants machine-readable records.  These helpers
convert the result dataclasses losslessly to plain dicts and back.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List

from repro.serve.metrics import ServingResult
from repro.train.results import EpochRecord, ExperimentResult, RunResult


def epoch_to_dict(record: EpochRecord) -> Dict:
    return {
        "epoch": record.epoch,
        "train_time": record.train_time,
        "eval_time": record.eval_time,
        "phase_times": dict(record.phase_times),
        "train_loss": record.train_loss,
        "val_loss": record.val_loss,
        "val_acc": record.val_acc,
    }


def run_to_dict(run: RunResult) -> Dict:
    return {
        "test_acc": run.test_acc,
        "peak_memory": run.peak_memory,
        "gpu_utilization": run.gpu_utilization,
        "total_time": run.total_time,
        "epochs": [epoch_to_dict(e) for e in run.epochs],
    }


def experiment_to_dict(result: ExperimentResult, include_runs: bool = True) -> Dict:
    out = {
        "framework": result.framework,
        "model": result.model,
        "dataset": result.dataset,
        "acc_mean": result.acc_mean,
        "acc_std": result.acc_std,
        "epoch_time": result.epoch_time,
        "total_time": result.total_time,
    }
    if include_runs:
        out["runs"] = [run_to_dict(r) for r in result.runs]
    return out


def experiment_from_dict(data: Dict) -> ExperimentResult:
    runs = [
        RunResult(
            test_acc=r["test_acc"],
            peak_memory=r["peak_memory"],
            gpu_utilization=r["gpu_utilization"],
            total_time=r["total_time"],
            epochs=[EpochRecord(**e) for e in r.get("epochs", [])],
        )
        for r in data.get("runs", [])
    ]
    return ExperimentResult(
        framework=data["framework"],
        model=data["model"],
        dataset=data["dataset"],
        acc_mean=data["acc_mean"],
        acc_std=data["acc_std"],
        epoch_time=data["epoch_time"],
        total_time=data["total_time"],
        runs=runs,
    )


def experiments_to_json(results: Iterable[ExperimentResult], include_runs: bool = False) -> str:
    """Serialise a result collection to a JSON document."""
    return json.dumps(
        [experiment_to_dict(r, include_runs=include_runs) for r in results], indent=2
    )


def experiments_from_json(text: str) -> List[ExperimentResult]:
    return [experiment_from_dict(d) for d in json.loads(text)]


def serving_to_dict(result: ServingResult) -> Dict:
    """Losslessly flatten a serving run (JSON object keys become strings)."""
    return {
        "framework": result.framework,
        "model": result.model,
        "dataset": result.dataset,
        "n_requests": result.n_requests,
        "completed": result.completed,
        "shed": result.shed,
        "shed_by_reason": dict(result.shed_by_reason),
        "latency_percentiles": {str(p): v for p, v in result.latency_percentiles.items()},
        "mean_latency": result.mean_latency,
        "mean_queue_delay": result.mean_queue_delay,
        "throughput": result.throughput,
        "mean_batch_size": result.mean_batch_size,
        "batch_size_histogram": {str(k): v for k, v in result.batch_size_histogram.items()},
        "max_queue_depth": result.max_queue_depth,
        "mean_queue_depth": result.mean_queue_depth,
        "elapsed": result.elapsed,
        "gpu_utilization": result.gpu_utilization,
        "busy_fraction": result.busy_fraction,
        "phase_times": dict(result.phase_times),
        "failed": result.failed,
        "failed_by_reason": dict(result.failed_by_reason),
        "retries": result.retries,
        "batch_splits": result.batch_splits,
        "circuit_opens": result.circuit_opens,
    }


def serving_from_dict(data: Dict) -> ServingResult:
    return ServingResult(
        framework=data["framework"],
        model=data["model"],
        dataset=data["dataset"],
        n_requests=data["n_requests"],
        completed=data["completed"],
        shed=data["shed"],
        shed_by_reason=dict(data.get("shed_by_reason", {})),
        latency_percentiles={
            float(p): v for p, v in data["latency_percentiles"].items()
        },
        mean_latency=data["mean_latency"],
        mean_queue_delay=data["mean_queue_delay"],
        throughput=data["throughput"],
        mean_batch_size=data["mean_batch_size"],
        batch_size_histogram={
            int(k): v for k, v in data.get("batch_size_histogram", {}).items()
        },
        max_queue_depth=data["max_queue_depth"],
        mean_queue_depth=data["mean_queue_depth"],
        elapsed=data["elapsed"],
        gpu_utilization=data["gpu_utilization"],
        busy_fraction=data["busy_fraction"],
        phase_times=dict(data.get("phase_times", {})),
        failed=data.get("failed", 0),
        failed_by_reason=dict(data.get("failed_by_reason", {})),
        retries=data.get("retries", 0),
        batch_splits=data.get("batch_splits", 0),
        circuit_opens=data.get("circuit_opens", 0),
    )


def servings_to_json(results: Iterable[ServingResult]) -> str:
    """Serialise serving runs to a JSON document (BENCH_serving.json shape)."""
    return json.dumps([serving_to_dict(r) for r in results], indent=2)


def servings_from_json(text: str) -> List[ServingResult]:
    return [serving_from_dict(d) for d in json.loads(text)]


# ----------------------------------------------------------------------
# repro.bench.ops documents (BENCH_ops.json)
# ----------------------------------------------------------------------
#: Required cell fields and their JSON types; ``bound`` is additionally
#: constrained to the three roofline classes.
OPS_CELL_SCHEMA = {
    "op": str,
    "pack": str,
    "mode": str,
    "precision": str,
    "shape": str,
    "n_nodes": int,
    "n_edges": int,
    "feat_dim": int,
    "launches": int,
    "flops": (int, float),
    "bytes": (int, float),
    "device_time": (int, float),
    "wall_time": (int, float),
    "intensity": (int, float),
    "bound": str,
    "frac_peak_flops": (int, float),
    "frac_peak_bandwidth": (int, float),
}

_BOUND_CLASSES = ("launch", "bandwidth", "compute")
_PRECISIONS = ("fp32", "fp16")


def validate_ops_document(doc: Dict) -> Dict:
    """Validate a BENCH_ops.json document against the cell schema.

    Raises :class:`ValueError` naming the first offending cell and field;
    returns the document unchanged when valid, so this composes as a
    pass-through in the to/from JSON round-trip.
    """
    if doc.get("experiment") != "ops":
        raise ValueError(f"not an ops document (experiment={doc.get('experiment')!r})")
    if not isinstance(doc.get("cells"), list):
        raise ValueError("ops document has no 'cells' list")
    for i, cell in enumerate(doc["cells"]):
        for field, types in OPS_CELL_SCHEMA.items():
            if field not in cell:
                raise ValueError(f"ops cell {i} is missing field {field!r}")
            if not isinstance(cell[field], types):
                raise ValueError(
                    f"ops cell {i} field {field!r} has type "
                    f"{type(cell[field]).__name__}, expected {types}"
                )
        if cell["bound"] not in _BOUND_CLASSES:
            raise ValueError(
                f"ops cell {i} has bound={cell['bound']!r}, "
                f"expected one of {_BOUND_CLASSES}"
            )
        if cell["precision"] not in _PRECISIONS:
            raise ValueError(
                f"ops cell {i} has precision={cell['precision']!r}, "
                f"expected one of {_PRECISIONS}"
            )
    return doc


def ops_to_json(doc: Dict) -> str:
    """Serialise an ops document (validated) to JSON."""
    return json.dumps(validate_ops_document(doc), indent=2)


def ops_from_json(text: str) -> Dict:
    """Parse + validate a BENCH_ops.json document."""
    return validate_ops_document(json.loads(text))


# ----------------------------------------------------------------------
# repro.bench.fleet documents (BENCH_fleet.json)
# ----------------------------------------------------------------------
#: Required fleet-cell fields and their JSON types; ``kind`` is further
#: constrained to the benchmark's four sections and every tenant entry
#: must carry its own resolution accounting.
FLEET_CELL_SCHEMA = {
    "kind": str,
    "policy": str,
    "replicas": int,
    "peak_replicas": int,
    "final_replicas": int,
    "framework": str,
    "model": str,
    "dataset": str,
    "trace_scale": (int, float),
    "n_requests": int,
    "completed": int,
    "shed": int,
    "failed": int,
    "resolved": int,
    "no_silent_loss": bool,
    "goodput": (int, float),
    "p50": (int, float),
    "p95": (int, float),
    "p99": (int, float),
    "mean_latency": (int, float),
    "mean_batch_size": (int, float),
    "elapsed": (int, float),
    "gpu_utilization": (int, float),
    "cache_hits": int,
    "cache_misses": int,
    "cache_hit_rate": (int, float),
    "retries": int,
    "batch_splits": int,
    "circuit_opens": int,
    "reroutes": int,
    "replica_losses": int,
    "scale_ups": int,
    "scale_downs": int,
    "shed_by_reason": dict,
    "failed_by_reason": dict,
    "tenants": dict,
}

_FLEET_KINDS = ("replicas", "policy", "chaos", "autoscale")
_TENANT_COUNTS = ("n_requests", "completed", "shed", "failed", "resolved")


def validate_fleet_document(doc: Dict) -> Dict:
    """Validate a BENCH_fleet.json document against the cell schema.

    Beyond field presence/types, each cell's resolution arithmetic must
    close (``completed + shed + failed == resolved``) and every tenant
    entry must carry the count fields the no-silent-loss gate reads.
    Raises :class:`ValueError` naming the first offending cell and field;
    returns the document unchanged when valid.
    """
    if doc.get("experiment") != "fleet":
        raise ValueError(
            f"not a fleet document (experiment={doc.get('experiment')!r})"
        )
    if not isinstance(doc.get("cells"), list):
        raise ValueError("fleet document has no 'cells' list")
    for i, cell in enumerate(doc["cells"]):
        for field, types in FLEET_CELL_SCHEMA.items():
            if field not in cell:
                raise ValueError(f"fleet cell {i} is missing field {field!r}")
            if not isinstance(cell[field], types):
                raise ValueError(
                    f"fleet cell {i} field {field!r} has type "
                    f"{type(cell[field]).__name__}, expected {types}"
                )
        if cell["kind"] not in _FLEET_KINDS:
            raise ValueError(
                f"fleet cell {i} has kind={cell['kind']!r}, "
                f"expected one of {_FLEET_KINDS}"
            )
        if cell["completed"] + cell["shed"] + cell["failed"] != cell["resolved"]:
            raise ValueError(
                f"fleet cell {i}: completed + shed + failed != resolved"
            )
        for name, tenant in cell["tenants"].items():
            if not isinstance(tenant, dict):
                raise ValueError(f"fleet cell {i} tenant {name!r} is not a dict")
            for key in _TENANT_COUNTS:
                if not isinstance(tenant.get(key), int):
                    raise ValueError(
                        f"fleet cell {i} tenant {name!r} is missing "
                        f"integer field {key!r}"
                    )
    return doc


def fleet_to_json(doc: Dict) -> str:
    """Serialise a fleet document (validated) to JSON."""
    return json.dumps(validate_fleet_document(doc), indent=2)


def fleet_from_json(text: str) -> Dict:
    """Parse + validate a BENCH_fleet.json document."""
    return validate_fleet_document(json.loads(text))


def experiments_to_csv(results: Iterable[ExperimentResult]) -> str:
    """Flat CSV of the summary columns (one row per experiment cell)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["dataset", "model", "framework", "acc_mean", "acc_std", "epoch_time", "total_time"]
    )
    for r in results:
        writer.writerow(
            [r.dataset, r.model, r.framework, r.acc_mean, r.acc_std, r.epoch_time, r.total_time]
        )
    return buffer.getvalue()
