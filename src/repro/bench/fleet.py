"""repro.bench.fleet — fleet-serving benchmark (goodput/p99 vs replicas).

The fleet analogue of the serving/faults benches: replay one bursty
three-tenant trace (:func:`repro.fleet.bursty_multitenant_trace`) against
:class:`repro.fleet.FleetSimulator` across four sections —

* ``replicas`` — goodput/p99 as the fleet grows 1 -> 2 -> 4 -> 8 under
  power-of-two-choices routing (the throughput-scaling headline);
* ``policy``  — round-robin vs least-loaded vs power-of-two-choices at
  the largest fleet, where per-replica queue imbalance is the bottleneck
  (p2c must beat round-robin's load-blind rotation at high load);
* ``chaos``   — replica losses + injected device faults mid-trace, with
  the per-tenant no-silent-loss invariant asserted;
* ``autoscale`` — a one-replica fleet absorbing the same burst by warm-
  starting replicas (weights over PCIe via the device cost model).

The workload is DD/GCN: DD's node-count variance (284 +- 147 nodes per
graph) is what makes service times heterogeneous enough for routing
policy to matter — with near-uniform service times, deterministic
round-robin is already an optimal count-balancer.

Everything runs on the simulated clock from seeded RNG streams, so every
cell — goodput, percentiles, shed/failed counts, cache hit-rate — is
exactly deterministic and CI gates it against the committed
``BENCH_fleet.json``.

CLI (mirrors the other bench CLIs)::

    python -m repro.bench.fleet --report
    python -m repro.bench.fleet --kinds replicas --replicas 1 2 --out out.json
    python -m repro.bench.fleet --out BENCH_fleet.json --chrome-trace fleet.trace.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.bench.tables import format_table
from repro.fleet import (
    POLICY_NAMES,
    Arrival,
    AutoscalerConfig,
    ChaosPlan,
    FleetResult,
    FleetSimulator,
    ResultCache,
    bursty_multitenant_trace,
)
from repro.serve import DynamicBatcher

#: The benchmark workload: one briefly-trained DD/GCN inference model.
FLEET_FRAMEWORK = "pygx"
FLEET_MODEL = "gcn"
FLEET_DATASET = "dd"
FLEET_NUM_GRAPHS = 90
FLEET_TRAIN_EPOCHS = 1

#: Default grids.
FLEET_KINDS = ("replicas", "policy", "chaos", "autoscale")
REPLICA_SWEEP = (1, 2, 4, 8)
#: Trace pressure: rate multiplier over the canonical three-tenant trace.
TRACE_SCALE = 8.0
TRACE_REQUESTS = 500

#: Columns of the per-cell report table.
FLEET_COLUMNS = (
    "kind", "policy", "reps", "peak", "done", "shed", "fail",
    "goodput", "p50(ms)", "p99(ms)", "cache%", "nsl",
)


def fleet_trace(
    n_requests: int = TRACE_REQUESTS,
    scale: float = TRACE_SCALE,
    seed: int = 0,
) -> List[Arrival]:
    """The benchmark's arrival trace (bursty, three tenants, seeded)."""
    return bursty_multitenant_trace(
        n_samples=FLEET_NUM_GRAPHS, scale=scale, n_requests=n_requests, seed=seed
    )


def fleet_simulator(
    inference,
    n_replicas: int,
    policy: str = "p2c",
    autoscaler: Optional[AutoscalerConfig] = None,
    chaos: Optional[ChaosPlan] = None,
    seed: int = 0,
) -> FleetSimulator:
    """The benchmark's simulator configuration.

    ``max_nodes=1536`` keeps batches to a handful of DD graphs, so batch
    service time tracks the node-count draw — the heterogeneity that
    separates the routing policies.
    """
    return FleetSimulator(
        inference,
        n_replicas=n_replicas,
        policy=policy,
        batcher=DynamicBatcher(max_batch_size=16, max_nodes=1536),
        queue_capacity=48,
        cache=ResultCache(24),
        autoscaler=autoscaler,
        chaos=chaos,
        seed=seed,
    )


def chaos_plan() -> ChaosPlan:
    """Two mid-trace replica losses with device faults firing throughout."""
    from repro.faults import FaultPlan

    return ChaosPlan(
        seed=3,
        loss_times=(0.01, 0.03),
        downtime=0.02,
        fault_plan=FaultPlan(seed=5, kernel_fault_rate=0.02, oom_rate=0.01),
    )


def autoscaler_config() -> AutoscalerConfig:
    """The autoscale cell's control loop: grow 1 -> up-to-8 on queue depth."""
    return AutoscalerConfig(
        min_replicas=1,
        max_replicas=8,
        interval=0.005,
        scale_up_queue_depth=6.0,
        cooldown=0.01,
    )


def fleet_cell_dict(kind: str, result: FleetResult, trace_scale: float) -> Dict:
    """Flatten one replay into the ``BENCH_fleet.json`` cell schema."""
    return {
        "kind": kind,
        "policy": result.policy,
        "replicas": result.initial_replicas,
        "peak_replicas": result.peak_replicas,
        "final_replicas": result.final_replicas,
        "framework": FLEET_FRAMEWORK,
        "model": FLEET_MODEL,
        "dataset": FLEET_DATASET,
        "trace_scale": trace_scale,
        "n_requests": result.n_requests,
        "completed": result.completed,
        "shed": result.shed,
        "failed": result.failed,
        "resolved": result.resolved,
        "no_silent_loss": result.no_silent_loss,
        "goodput": result.goodput,
        "p50": result.p50,
        "p95": result.p95,
        "p99": result.p99,
        "mean_latency": result.mean_latency,
        "mean_batch_size": result.mean_batch_size,
        "elapsed": result.elapsed,
        "gpu_utilization": result.gpu_utilization,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "cache_hit_rate": result.cache_hit_rate,
        "retries": result.retries,
        "batch_splits": result.batch_splits,
        "circuit_opens": result.circuit_opens,
        "reroutes": result.reroutes,
        "replica_losses": result.replica_losses,
        "scale_ups": result.scale_ups,
        "scale_downs": result.scale_downs,
        "shed_by_reason": dict(result.shed_by_reason),
        "failed_by_reason": dict(result.failed_by_reason),
        "tenants": {
            name: {
                "tier": t.tier,
                "n_requests": t.n_requests,
                "completed": t.completed,
                "shed": t.shed,
                "failed": t.failed,
                "resolved": t.resolved,
                "p99": t.p99,
            }
            for name, t in result.tenants.items()
        },
    }


def run_fleet_cell(
    kind: str,
    inference,
    samples: Sequence,
    trace: Sequence[Arrival],
    n_replicas: int,
    policy: str = "p2c",
    autoscaler: Optional[AutoscalerConfig] = None,
    chaos: Optional[ChaosPlan] = None,
    trace_scale: float = TRACE_SCALE,
    seed: int = 0,
    chrome_trace: Optional[str] = None,
) -> Dict:
    """Replay the trace once under one fleet configuration."""
    simulator = fleet_simulator(
        inference, n_replicas, policy, autoscaler=autoscaler, chaos=chaos, seed=seed
    )
    result = simulator.replay(samples, trace)
    if chrome_trace:
        simulator.write_trace(chrome_trace)
    return fleet_cell_dict(kind, result, trace_scale)


def fleet_grid(
    kinds: Optional[Sequence[str]] = None,
    replicas: Optional[Sequence[int]] = None,
    policies: Optional[Sequence[str]] = None,
    n_requests: int = TRACE_REQUESTS,
    scale: float = TRACE_SCALE,
    seed: int = 0,
    chrome_trace: Optional[str] = None,
) -> List[Dict]:
    """Run the benchmark grid; one dict per cell, section order.

    ``chrome_trace`` (a path) captures the largest ``replicas``-section
    fleet as a Chrome trace with one track per replica stream.
    """
    from repro.bench.runner import trained_inference_model
    from repro.datasets import load_dataset

    kinds = tuple(kinds or FLEET_KINDS)
    replicas = tuple(replicas or REPLICA_SWEEP)
    policies = tuple(policies or POLICY_NAMES)
    for kind in kinds:
        if kind not in FLEET_KINDS:
            raise ValueError(f"unknown kind {kind!r}; options: {FLEET_KINDS}")

    inference = trained_inference_model(
        FLEET_FRAMEWORK, FLEET_MODEL, FLEET_DATASET,
        num_graphs=FLEET_NUM_GRAPHS, train_epochs=FLEET_TRAIN_EPOCHS, seed=seed,
    )
    samples = load_dataset(FLEET_DATASET, num_graphs=FLEET_NUM_GRAPHS).graphs
    trace = fleet_trace(n_requests=n_requests, scale=scale, seed=seed)

    cells: List[Dict] = []
    if "replicas" in kinds:
        for n in replicas:
            cells.append(
                run_fleet_cell(
                    "replicas", inference, samples, trace, n, "p2c",
                    trace_scale=scale, seed=seed,
                    chrome_trace=chrome_trace if n == max(replicas) else None,
                )
            )
    if "policy" in kinds:
        for policy in policies:
            cells.append(
                run_fleet_cell(
                    "policy", inference, samples, trace, max(replicas), policy,
                    trace_scale=scale, seed=seed,
                )
            )
    if "chaos" in kinds:
        cells.append(
            run_fleet_cell(
                "chaos", inference, samples, trace, 4, "p2c",
                chaos=chaos_plan(), trace_scale=scale, seed=seed,
            )
        )
    if "autoscale" in kinds:
        cells.append(
            run_fleet_cell(
                "autoscale", inference, samples, trace, 1, "p2c",
                autoscaler=autoscaler_config(), trace_scale=scale, seed=seed,
            )
        )
    return cells


def fleet_document(cells: Sequence[Dict]) -> Dict:
    """Wrap cells in the ``BENCH_fleet.json`` document shape."""
    return {
        "experiment": "fleet",
        "workload": {
            "framework": FLEET_FRAMEWORK,
            "model": FLEET_MODEL,
            "dataset": FLEET_DATASET,
            "num_graphs": FLEET_NUM_GRAPHS,
        },
        "cells": list(cells),
    }


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
def fleet_row(cell: Dict) -> List[str]:
    return [
        cell["kind"],
        cell["policy"],
        str(cell["replicas"]),
        str(cell["peak_replicas"]),
        str(cell["completed"]),
        str(cell["shed"]),
        str(cell["failed"]),
        f"{cell['goodput']:.0f}",
        f"{cell['p50'] * 1e3:.2f}",
        f"{cell['p99'] * 1e3:.2f}",
        f"{cell['cache_hit_rate'] * 100:.0f}",
        "yes" if cell["no_silent_loss"] else "LOST",
    ]


def tenant_rows(cells: Sequence[Dict]) -> List[List[str]]:
    """Per-tenant accounting rows for the chaos cells (if any)."""
    rows = []
    for cell in cells:
        if cell["kind"] != "chaos":
            continue
        for name, t in sorted(cell["tenants"].items()):
            rows.append(
                [
                    name,
                    t["tier"],
                    str(t["n_requests"]),
                    str(t["completed"]),
                    str(t["shed"]),
                    str(t["failed"]),
                    "yes" if t["resolved"] == t["n_requests"] else "LOST",
                ]
            )
    return rows


def fleet_report(cells: Sequence[Dict]) -> str:
    """The fleet report: per-cell table + per-tenant chaos accounting."""
    out = format_table(
        list(FLEET_COLUMNS),
        [fleet_row(c) for c in cells],
        title=(
            "repro.bench.fleet: goodput/p99 vs replicas, routing policies, "
            "chaos, autoscaling (DD/GCN, bursty 3-tenant trace)"
        ),
    )
    rows = tenant_rows(cells)
    if rows:
        out += "\n" + format_table(
            ["tenant", "tier", "requests", "done", "shed", "fail", "resolved"],
            rows,
            title="Per-tenant accounting under chaos (no silent loss)",
        )
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.fleet",
        description="Multi-replica fleet serving benchmark.",
    )
    parser.add_argument("--kinds", nargs="+", choices=FLEET_KINDS, default=None)
    parser.add_argument("--replicas", nargs="+", type=int, default=None)
    parser.add_argument("--policies", nargs="+", choices=POLICY_NAMES, default=None)
    parser.add_argument("--requests", type=int, default=TRACE_REQUESTS,
                        help="trace length (default %(default)s)")
    parser.add_argument("--scale", type=float, default=TRACE_SCALE,
                        help="trace rate multiplier (default %(default)s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="write BENCH_fleet.json here")
    parser.add_argument("--chrome-trace", default=None,
                        help="write a Chrome trace of the largest fleet here")
    parser.add_argument("--report", action="store_true",
                        help="print the fleet report")
    args = parser.parse_args(argv)

    cells = fleet_grid(
        kinds=args.kinds,
        replicas=args.replicas,
        policies=args.policies,
        n_requests=args.requests,
        scale=args.scale,
        seed=args.seed,
        chrome_trace=args.chrome_trace,
    )
    if args.report or not args.out:
        print(fleet_report(cells))
    if args.out:
        from repro.bench.serialize import fleet_to_json

        with open(args.out, "w") as fh:
            fh.write(fleet_to_json(fleet_document(cells)) + "\n")
        print(f"wrote {args.out} ({len(cells)} cells)")
    if args.chrome_trace:
        print(f"wrote {args.chrome_trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
