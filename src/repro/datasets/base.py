"""Dataset containers for the two task families in the paper."""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.graph import GraphSample


class NodeClassificationDataset:
    """A single graph with per-node labels and fixed index splits.

    Mirrors the Planetoid (Cora/PubMed) setting of Section IV-A: small fixed
    train split, 500 validation and 1000 test nodes, full-batch training.
    """

    def __init__(
        self,
        name: str,
        graph: GraphSample,
        num_classes: int,
        train_idx: np.ndarray,
        val_idx: np.ndarray,
        test_idx: np.ndarray,
    ) -> None:
        self.name = name
        self.graph = graph
        self.num_classes = num_classes
        self.train_idx = np.asarray(train_idx, dtype=np.int64)
        self.val_idx = np.asarray(val_idx, dtype=np.int64)
        self.test_idx = np.asarray(test_idx, dtype=np.int64)
        labels = np.asarray(graph.y)
        if labels.shape != (graph.num_nodes,):
            raise ValueError("node classification labels must be per-node")
        for split in (self.train_idx, self.val_idx, self.test_idx):
            if split.size and (split.min() < 0 or split.max() >= graph.num_nodes):
                raise ValueError("split index out of range")

    @property
    def num_features(self) -> int:
        return self.graph.num_features

    def __repr__(self) -> str:
        return (
            f"NodeClassificationDataset({self.name!r}, nodes={self.graph.num_nodes}, "
            f"classes={self.num_classes})"
        )


class GraphClassificationDataset:
    """A list of labelled graphs (TU-style / superpixel datasets)."""

    def __init__(self, name: str, graphs: Sequence[GraphSample], num_classes: int) -> None:
        if not graphs:
            raise ValueError("dataset needs at least one graph")
        self.name = name
        self.graphs: List[GraphSample] = list(graphs)
        self.num_classes = num_classes
        for g in self.graphs:
            if not isinstance(g.y, (int, np.integer)):
                raise ValueError("graph classification labels must be ints")

    @property
    def labels(self) -> np.ndarray:
        return np.array([g.y for g in self.graphs], dtype=np.int64)

    @property
    def num_features(self) -> int:
        return self.graphs[0].num_features

    def __len__(self) -> int:
        return len(self.graphs)

    def __getitem__(self, index: int) -> GraphSample:
        return self.graphs[index]

    def __iter__(self) -> Iterator[GraphSample]:
        return iter(self.graphs)

    def subset(self, indices: np.ndarray) -> List[GraphSample]:
        """Graphs at the given indices (used by split-based loaders)."""
        return [self.graphs[i] for i in np.asarray(indices, dtype=np.int64)]

    def __repr__(self) -> str:
        return (
            f"GraphClassificationDataset({self.name!r}, n={len(self)}, "
            f"classes={self.num_classes})"
        )
