"""Dataset split utilities.

The graph-classification experiments use a stratified 10-fold
cross-validation with train/val/test in ratio 8:1:1 (Section IV-B.1); the
node-classification experiments use the fixed Planetoid-style splits
(Section IV-A).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

Split = Tuple[np.ndarray, np.ndarray, np.ndarray]


def stratified_folds(labels: np.ndarray, k: int, rng: np.random.Generator) -> List[np.ndarray]:
    """Partition indices into ``k`` folds preserving the class distribution."""
    labels = np.asarray(labels)
    if k < 2:
        raise ValueError("need at least 2 folds")
    folds: List[List[int]] = [[] for _ in range(k)]
    for c in np.unique(labels):
        members = np.flatnonzero(labels == c)
        members = members[rng.permutation(len(members))]
        for i, chunk in enumerate(np.array_split(members, k)):
            folds[(i + int(c)) % k].extend(chunk.tolist())
    return [np.sort(np.array(f, dtype=np.int64)) for f in folds]


def kfold_splits(labels: np.ndarray, k: int, rng: np.random.Generator) -> List[Split]:
    """10-fold CV splits: fold ``i`` is test, fold ``i+1`` validation.

    Matches the protocol of Dwivedi et al. that the paper adopts: the same
    saved indices are reused across every experiment for fair comparison.
    """
    folds = stratified_folds(labels, k, rng)
    splits: List[Split] = []
    for i in range(k):
        test = folds[i]
        val = folds[(i + 1) % k]
        train = np.concatenate([folds[j] for j in range(k) if j not in (i, (i + 1) % k)])
        splits.append((np.sort(train), val, test))
    return splits


def planetoid_split(
    labels: np.ndarray,
    train_per_class: int,
    n_val: int,
    n_test: int,
    rng: np.random.Generator,
) -> Split:
    """Fixed split: ``train_per_class`` per class, then val and test pools."""
    labels = np.asarray(labels)
    train: List[int] = []
    for c in np.unique(labels):
        members = np.flatnonzero(labels == c)
        if len(members) < train_per_class:
            raise ValueError(f"class {c} has fewer than {train_per_class} nodes")
        train.extend(rng.choice(members, size=train_per_class, replace=False).tolist())
    train_arr = np.array(sorted(train), dtype=np.int64)
    rest = np.setdiff1d(np.arange(len(labels)), train_arr)
    rest = rest[rng.permutation(len(rest))]
    if len(rest) < n_val + n_test:
        raise ValueError("not enough nodes for the requested val/test sizes")
    return train_arr, np.sort(rest[:n_val]), np.sort(rest[n_val : n_val + n_test])
