"""Dataset persistence to ``.npz`` archives.

Generation of the synthetic datasets costs seconds (PubMed, DD) — enough to
matter across many processes.  These helpers serialise any dataset to a
single compressed archive and restore it exactly, so pipelines can generate
once and reload.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.datasets.base import GraphClassificationDataset, NodeClassificationDataset
from repro.graph import GraphSample

Dataset = Union[NodeClassificationDataset, GraphClassificationDataset]


def save_dataset(dataset: Dataset, path) -> None:
    """Write a dataset to a compressed ``.npz`` archive."""
    payload = {"name": np.array(dataset.name), "num_classes": np.array(dataset.num_classes)}
    if isinstance(dataset, NodeClassificationDataset):
        payload["kind"] = np.array("node")
        g = dataset.graph
        payload["x"] = g.x
        payload["edge_index"] = g.edge_index
        payload["labels"] = np.asarray(g.y)
        payload["train_idx"] = dataset.train_idx
        payload["val_idx"] = dataset.val_idx
        payload["test_idx"] = dataset.test_idx
    else:
        payload["kind"] = np.array("graph")
        payload["n_graphs"] = np.array(len(dataset))
        for i, g in enumerate(dataset.graphs):
            payload[f"x_{i}"] = g.x
            payload[f"edge_index_{i}"] = g.edge_index
            payload[f"y_{i}"] = np.array(g.y)
            if g.pos is not None:
                payload[f"pos_{i}"] = g.pos
    np.savez_compressed(path, **payload)


def load_saved_dataset(path) -> Dataset:
    """Restore a dataset written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as archive:
        kind = str(archive["kind"])
        name = str(archive["name"])
        num_classes = int(archive["num_classes"])
        if kind == "node":
            graph = GraphSample(
                archive["edge_index"], archive["x"], archive["labels"].astype(np.int64)
            )
            return NodeClassificationDataset(
                name,
                graph,
                num_classes,
                archive["train_idx"],
                archive["val_idx"],
                archive["test_idx"],
            )
        if kind != "graph":
            raise ValueError(f"unknown dataset kind {kind!r}")
        graphs = []
        for i in range(int(archive["n_graphs"])):
            pos = archive[f"pos_{i}"] if f"pos_{i}" in archive.files else None
            graphs.append(
                GraphSample(
                    archive[f"edge_index_{i}"],
                    archive[f"x_{i}"],
                    int(archive[f"y_{i}"]),
                    pos=pos,
                )
            )
        return GraphClassificationDataset(name, graphs, num_classes)
