"""Structural analysis of datasets.

Used to sanity-check the synthetic generators against known properties of
the originals (homophily of citation graphs, degree profiles of the TU
sets) and exposed as a public utility for downstream dataset inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.datasets.base import GraphClassificationDataset, NodeClassificationDataset
from repro.graph import GraphSample


@dataclass(frozen=True)
class GraphProfile:
    """Structural summary of one graph."""

    num_nodes: int
    num_edges_directed: int
    mean_degree: float
    max_degree: int
    isolated_nodes: int
    density: float


def profile_graph(graph: GraphSample) -> GraphProfile:
    """Compute the structural profile of one graph."""
    degrees = graph.in_degrees() + graph.out_degrees()
    n = graph.num_nodes
    possible = n * (n - 1) if n > 1 else 1
    return GraphProfile(
        num_nodes=n,
        num_edges_directed=graph.num_edges,
        mean_degree=float(degrees.mean()) if n else 0.0,
        max_degree=int(degrees.max()) if n else 0,
        isolated_nodes=int((degrees == 0).sum()),
        density=graph.num_edges / possible,
    )


def edge_homophily(dataset: NodeClassificationDataset) -> float:
    """Fraction of edges joining same-label nodes.

    Real Cora measures ~0.81, PubMed ~0.80; the synthetic stand-ins are
    generated with comparable homophily so message passing helps the same
    way.
    """
    graph = dataset.graph
    labels = np.asarray(graph.y)
    if graph.num_edges == 0:
        return 0.0
    src, dst = graph.edge_index
    return float((labels[src] == labels[dst]).mean())


def degree_histogram(graph: GraphSample, max_bins: int = 20) -> np.ndarray:
    """In-degree histogram clipped to ``max_bins`` (last bin = overflow)."""
    degrees = np.minimum(graph.in_degrees(), max_bins - 1)
    return np.bincount(degrees, minlength=max_bins)


def label_entropy(dataset: Union[NodeClassificationDataset, GraphClassificationDataset]) -> float:
    """Shannon entropy of the label distribution, in bits."""
    if isinstance(dataset, NodeClassificationDataset):
        labels = np.asarray(dataset.graph.y)
    else:
        labels = dataset.labels
    counts = np.bincount(labels)
    probs = counts[counts > 0] / counts.sum()
    return float(-(probs * np.log2(probs)).sum())


def feature_class_separation(dataset: GraphClassificationDataset) -> float:
    """Ratio of between-class to within-class spread of graph-mean features.

    A quick proxy for how learnable the feature channel is under mean
    readout — the number the difficulty calibration in
    :mod:`repro.datasets.tud` controls.
    """
    means = np.stack([g.x.mean(axis=0) for g in dataset.graphs])
    labels = dataset.labels
    class_means = np.stack(
        [means[labels == c].mean(axis=0) for c in np.unique(labels)]
    )
    between = np.linalg.norm(class_means - class_means.mean(axis=0), axis=1).mean()
    within = np.mean(
        [
            np.linalg.norm(means[labels == c] - class_means[i], axis=1).mean()
            for i, c in enumerate(np.unique(labels))
        ]
    )
    return float(between / max(within, 1e-12))
