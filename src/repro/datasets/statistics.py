"""Dataset statistics (Table I of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.datasets.base import GraphClassificationDataset, NodeClassificationDataset

Dataset = Union[NodeClassificationDataset, GraphClassificationDataset]


@dataclass(frozen=True)
class DatasetStatistics:
    """One column of Table I."""

    name: str
    num_graphs: int
    avg_nodes: float
    avg_edges: float
    num_features: int
    num_classes: int

    def row(self) -> List[str]:
        return [
            self.name,
            str(self.num_graphs),
            f"{self.avg_nodes:.2f}",
            f"{self.avg_edges:.2f}",
            str(self.num_features),
            str(self.num_classes),
        ]


def compute_statistics(dataset: Dataset, reported_num_graphs: int = 0) -> DatasetStatistics:
    """Compute Table I statistics.

    Edge counts are reported as *undirected* edges (directed count / 2) to
    match the convention of Table I.  ``reported_num_graphs`` lets callers
    that generated a subset report the full configured size (the MNIST bench
    samples a subset of the 70 000-graph dataset; see EXPERIMENTS.md).
    """
    if isinstance(dataset, NodeClassificationDataset):
        g = dataset.graph
        return DatasetStatistics(
            name=dataset.name,
            num_graphs=1,
            avg_nodes=float(g.num_nodes),
            avg_edges=g.num_edges / 2.0,
            num_features=g.num_features,
            num_classes=dataset.num_classes,
        )
    nodes = np.array([g.num_nodes for g in dataset.graphs], dtype=np.float64)
    edges = np.array([g.num_edges for g in dataset.graphs], dtype=np.float64)
    return DatasetStatistics(
        name=dataset.name,
        num_graphs=reported_num_graphs or len(dataset),
        avg_nodes=float(nodes.mean()),
        avg_edges=float(edges.mean()) / 2.0,
        num_features=dataset.num_features,
        num_classes=dataset.num_classes,
    )
