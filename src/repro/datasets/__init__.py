"""Synthetic stand-ins for the paper's five datasets (Table I)."""

from repro.datasets.analysis import (
    GraphProfile,
    degree_histogram,
    edge_homophily,
    feature_class_separation,
    label_entropy,
    profile_graph,
)
from repro.datasets.base import GraphClassificationDataset, NodeClassificationDataset
from repro.datasets.io import load_saved_dataset, save_dataset
from repro.datasets.citation import CORA_SPEC, PUBMED_SPEC, cora, make_citation_dataset, pubmed
from repro.datasets.registry import (
    ALL_DATASETS,
    GRAPH_DATASETS,
    NODE_DATASETS,
    clear_cache,
    load_dataset,
)
from repro.datasets.splits import kfold_splits, planetoid_split, stratified_folds
from repro.datasets.statistics import DatasetStatistics, compute_statistics
from repro.datasets.superpixel import FULL_MNIST_SIZE, mnist_superpixels
from repro.datasets.tud import DD_SPEC, ENZYMES_SPEC, dd, enzymes, make_tu_dataset

__all__ = [
    "NodeClassificationDataset",
    "GraphClassificationDataset",
    "cora",
    "pubmed",
    "make_citation_dataset",
    "CORA_SPEC",
    "PUBMED_SPEC",
    "enzymes",
    "dd",
    "make_tu_dataset",
    "ENZYMES_SPEC",
    "DD_SPEC",
    "mnist_superpixels",
    "FULL_MNIST_SIZE",
    "load_dataset",
    "clear_cache",
    "ALL_DATASETS",
    "NODE_DATASETS",
    "GRAPH_DATASETS",
    "kfold_splits",
    "planetoid_split",
    "stratified_folds",
    "compute_statistics",
    "DatasetStatistics",
    "GraphProfile",
    "profile_graph",
    "edge_homophily",
    "degree_histogram",
    "label_entropy",
    "feature_class_separation",
    "save_dataset",
    "load_saved_dataset",
]
