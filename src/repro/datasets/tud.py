"""Synthetic TU-style graph classification datasets (ENZYMES, DD).

As with the citation networks, the paper's results depend on these datasets'
*scale* — ENZYMES: 600 small graphs (avg 32.6 nodes, 18 features, 6
classes); DD: 1178 larger graphs (avg 284 nodes, 89 features, 2 classes) —
and on classes being separable to roughly the paper's accuracy band.  Scale
is what produces the launch-bound (ENZYMES) vs bandwidth-bound (DD)
behaviour contrasted in Fig. 1 vs Fig. 2.

Class signal has two components GNNs can exploit:

* structure: each class mixes different motifs (rings / cliques / stars)
  into a connected random backbone, shifting degree distributions;
* features: a class mean plus a *per-graph* offset plus per-node noise.  The
  per-graph offset does not average out under mean readout, which caps
  accuracy below 100 % and lands it near the paper's numbers.

The DD node-count tail is clipped (paper max 5748, ours ~1200) to keep pure
numpy training tractable; the average — which drives per-batch kernel sizes
— is preserved.  See DESIGN.md section 7.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.datasets.base import GraphClassificationDataset
from repro.graph import (
    GraphSample,
    clique_motif,
    connected_chain_backbone,
    dedupe_edges,
    ring_motif,
    star_motif,
    undirected_edge_index,
)


@dataclass(frozen=True)
class TUSpec:
    """Generation recipe for one synthetic TU dataset."""

    name: str
    num_graphs: int
    num_classes: int
    num_features: int
    mean_nodes: float
    min_nodes: int
    max_nodes: int
    avg_degree: float
    feature_scale: float  # class-mean separation
    graph_noise: float  # per-graph offset sd (limits attainable accuracy)
    node_noise: float  # per-node feature noise sd


ENZYMES_SPEC = TUSpec(
    name="ENZYMES",
    num_graphs=600,
    num_classes=6,
    num_features=18,
    mean_nodes=32.6,
    min_nodes=4,
    max_nodes=126,
    avg_degree=3.55,
    feature_scale=0.65,
    graph_noise=1.1,
    node_noise=1.0,
)

DD_SPEC = TUSpec(
    name="DD",
    num_graphs=1178,
    num_classes=2,
    num_features=89,
    mean_nodes=284.0,
    min_nodes=30,
    max_nodes=1200,
    avg_degree=4.35,
    feature_scale=0.15,
    graph_noise=0.8,
    node_noise=1.0,
)

_MOTIFS: List[Callable] = [ring_motif, clique_motif, star_motif]


def _sample_node_counts(spec: TUSpec, n: int, rng: np.random.Generator) -> np.ndarray:
    """Lognormal node counts clipped to the spec range, matching the mean."""
    sigma = 0.55
    mu = np.log(spec.mean_nodes) - sigma**2 / 2.0
    counts = np.exp(rng.normal(mu, sigma, size=n))
    counts = np.clip(np.round(counts), spec.min_nodes, spec.max_nodes).astype(np.int64)
    return counts


def _make_graph(spec: TUSpec, label: int, n_nodes: int, rng: np.random.Generator) -> GraphSample:
    # Connected backbone plus random extra edges up to the target degree.
    src_parts = []
    dst_parts = []
    s, d = connected_chain_backbone(n_nodes, rng)
    src_parts.append(s)
    dst_parts.append(d)
    extra = max(0, int(n_nodes * spec.avg_degree / 2.0) - (n_nodes - 1))
    if extra:
        src_parts.append(rng.integers(0, n_nodes, size=extra))
        dst_parts.append(rng.integers(0, n_nodes, size=extra))

    # Class-dependent motifs: class c prefers motif c % 3 with size 3 + c // 3.
    motif = _MOTIFS[label % len(_MOTIFS)]
    motif_size = min(3 + label // len(_MOTIFS) + 2, max(3, n_nodes // 4))
    n_motifs = max(1, n_nodes // 16)
    for _ in range(n_motifs):
        if n_nodes <= motif_size:
            break
        offset = int(rng.integers(0, n_nodes - motif_size))
        ms, md = motif(offset, motif_size)
        src_parts.append(ms)
        dst_parts.append(md)

    src, dst = dedupe_edges(np.concatenate(src_parts), np.concatenate(dst_parts), n_nodes)
    edge_index = undirected_edge_index(src, dst)

    # Features: class mean + per-graph offset + per-node noise.  The class
    # mean must be identical across processes, so seed from a stable hash
    # (Python's str hash is randomised per process).
    class_rng = np.random.default_rng(zlib.crc32(f"{spec.name}:{label}".encode()))
    mean = class_rng.normal(0.0, 1.0, size=spec.num_features)
    mean *= spec.feature_scale / max(np.linalg.norm(mean) / np.sqrt(spec.num_features), 1e-9)
    graph_offset = rng.normal(0.0, spec.graph_noise, size=spec.num_features)
    x = (
        mean
        + graph_offset
        + rng.normal(0.0, spec.node_noise, size=(n_nodes, spec.num_features))
    ).astype(np.float32)
    return GraphSample(edge_index, x, int(label))


def make_tu_dataset(
    spec: TUSpec, seed: int = 0, num_graphs: int = 0
) -> GraphClassificationDataset:
    """Generate a TU-style dataset; ``num_graphs`` overrides the spec size.

    Passing a smaller ``num_graphs`` is the documented scale knob for quick
    tests and benches (DESIGN.md section 7); class balance is preserved.
    """
    rng = np.random.default_rng(seed)
    n = num_graphs or spec.num_graphs
    labels = np.arange(n) % spec.num_classes
    labels = labels[rng.permutation(n)]
    counts = _sample_node_counts(spec, n, rng)
    graphs = [
        _make_graph(spec, int(labels[i]), int(counts[i]), rng) for i in range(n)
    ]
    return GraphClassificationDataset(spec.name, graphs, spec.num_classes)


def enzymes(seed: int = 0, num_graphs: int = 0) -> GraphClassificationDataset:
    """Synthetic ENZYMES (600 graphs / 6 classes / 18 features)."""
    return make_tu_dataset(ENZYMES_SPEC, seed, num_graphs)


def dd(seed: int = 0, num_graphs: int = 0) -> GraphClassificationDataset:
    """Synthetic DD (1178 graphs / 2 classes / 89 features)."""
    return make_tu_dataset(DD_SPEC, seed, num_graphs)
