"""Dataset registry: load any paper dataset by name, with caching.

Generation of the larger synthetic sets (PubMed, DD) costs seconds, so
repeated loads within one process are cached by ``(name, seed, size)``.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from repro.datasets.base import GraphClassificationDataset, NodeClassificationDataset
from repro.datasets.citation import cora, pubmed
from repro.datasets.superpixel import mnist_superpixels
from repro.datasets.tud import dd, enzymes

Dataset = Union[NodeClassificationDataset, GraphClassificationDataset]

_CACHE: Dict[Tuple[str, int, int], Dataset] = {}

NODE_DATASETS = ("cora", "pubmed")
GRAPH_DATASETS = ("enzymes", "dd", "mnist")
ALL_DATASETS = NODE_DATASETS + GRAPH_DATASETS


def load_dataset(name: str, seed: int = 0, num_graphs: int = 0) -> Dataset:
    """Load a paper dataset by (case-insensitive) name.

    ``num_graphs`` scales down the graph-classification sets for quick runs
    (0 = the paper's full size; for MNIST the default subset is 2000 graphs,
    see :mod:`repro.datasets.superpixel`).
    """
    key = (name.lower(), seed, num_graphs)
    if key in _CACHE:
        return _CACHE[key]
    lowered = name.lower()
    if lowered == "cora":
        ds: Dataset = cora(seed)
    elif lowered == "pubmed":
        ds = pubmed(seed)
    elif lowered == "enzymes":
        ds = enzymes(seed, num_graphs)
    elif lowered == "dd":
        ds = dd(seed, num_graphs)
    elif lowered == "mnist":
        ds = mnist_superpixels(num_graphs or 2000, seed)
    else:
        raise KeyError(f"unknown dataset {name!r}; options: {ALL_DATASETS}")
    _CACHE[key] = ds
    return ds


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to bound memory)."""
    _CACHE.clear()
