"""Synthetic citation networks standing in for Cora and PubMed.

The paper's node-classification results depend on the *scale* of these
graphs (node/edge counts and feature width drive every kernel size) and on
them being learnable to similar accuracy across frameworks — not on the
actual citation content, which we cannot download offline.  We therefore
plant a homophilous community graph with bag-of-words-style features:

* each class owns a block of "topic words" that its documents use with
  elevated probability, plus uniform background words;
* ``intra_fraction`` of edges connect same-class documents (real citation
  graphs are strongly homophilous), so neighbourhood aggregation genuinely
  helps, and 2-layer GNNs land in the paper's 74-83 % accuracy band.

Statistics match Table I: Cora (2708 nodes, ~5429 undirected edges, 1433
features, 7 classes), PubMed (19717 nodes, ~44338 edges, 500 features, 3
classes); splits match Section IV-A (Cora 140/500/1000, PubMed 60/500/1000).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import NodeClassificationDataset
from repro.datasets.splits import planetoid_split
from repro.graph import GraphSample, planted_partition, undirected_edge_index


@dataclass(frozen=True)
class CitationSpec:
    """Generation recipe for one synthetic citation network."""

    name: str
    num_nodes: int
    num_undirected_edges: int
    num_features: int
    num_classes: int
    train_per_class: int
    n_val: int
    n_test: int
    intra_fraction: float = 0.78
    topic_words: int = 24
    p_topic: float = 0.105
    p_background: float = 0.033


CORA_SPEC = CitationSpec(
    name="Cora",
    num_nodes=2708,
    num_undirected_edges=5429,
    num_features=1433,
    num_classes=7,
    train_per_class=20,
    n_val=500,
    n_test=1000,
)

PUBMED_SPEC = CitationSpec(
    name="PubMed",
    num_nodes=19717,
    num_undirected_edges=44338,
    num_features=500,
    num_classes=3,
    train_per_class=20,
    n_val=500,
    n_test=1000,
    intra_fraction=0.7,
    topic_words=30,
    p_topic=0.075,
    p_background=0.06,
)


def make_citation_dataset(spec: CitationSpec, seed: int = 0) -> NodeClassificationDataset:
    """Generate one synthetic citation network from its spec."""
    rng = np.random.default_rng(seed)
    n = spec.num_nodes
    labels = np.sort(rng.integers(0, spec.num_classes, size=n)).astype(np.int64)
    rng.shuffle(labels)  # random class assignment, roughly balanced

    # Oversample edges to compensate for dedupe, then trim.
    src, dst = planted_partition(
        labels, int(spec.num_undirected_edges * 1.12), spec.intra_fraction, rng
    )
    if len(src) > spec.num_undirected_edges:
        keep = rng.choice(len(src), size=spec.num_undirected_edges, replace=False)
        src, dst = src[keep], dst[keep]
    edge_index = undirected_edge_index(src, dst)

    # Bag-of-words features: class topics + background noise.
    x = (rng.random((n, spec.num_features)) < spec.p_background).astype(np.float32)
    words_per_class = spec.topic_words
    for c in range(spec.num_classes):
        members = np.flatnonzero(labels == c)
        start = (c * words_per_class) % max(spec.num_features - words_per_class, 1)
        topic = slice(start, start + words_per_class)
        hits = rng.random((len(members), words_per_class)) < spec.p_topic
        x[members, topic] += hits.astype(np.float32)
    np.clip(x, 0.0, 1.0, out=x)

    graph = GraphSample(edge_index, x, labels)
    train_idx, val_idx, test_idx = planetoid_split(
        labels, spec.train_per_class, spec.n_val, spec.n_test, rng
    )
    return NodeClassificationDataset(
        spec.name, graph, spec.num_classes, train_idx, val_idx, test_idx
    )


def cora(seed: int = 0) -> NodeClassificationDataset:
    """Synthetic Cora (2708 nodes / 1433 features / 7 classes)."""
    return make_citation_dataset(CORA_SPEC, seed)


def pubmed(seed: int = 0) -> NodeClassificationDataset:
    """Synthetic PubMed (19717 nodes / 500 features / 3 classes)."""
    return make_citation_dataset(PUBMED_SPEC, seed)
