"""Synthetic MNIST superpixel graphs.

The paper converts MNIST images to graphs with SLIC superpixels (avg 70.57
nodes, 564.53 edges, 1 intensity feature, 10 classes) and uses the dataset
only for the multi-GPU timing study of Fig. 6 — accuracy on MNIST is never
reported.  We therefore need graphs with the right *shape*: many small
graphs whose batching dominates epoch time.

Pipeline (mirroring SLIC structurally):

1. rasterise a digit procedurally — each digit class is a set of stroke
   segments on a 28x28 canvas (seven-segment layout plus diagonals), drawn
   with endpoint jitter and a soft brush;
2. segment the canvas into ~81 grid-seeded superpixels by nearest-seed
   assignment (a one-iteration SLIC), dropping empty cells — leaving ~70
   superpixels per image;
3. connect superpixel centroids with a k-nearest-neighbour graph (k=14) and
   use mean intensity as the single node feature; centroids are stored in
   ``pos`` (MoNet-style models may use them as pseudo-coordinates).

The full dataset has 70 000 graphs; generation takes ``n_graphs`` so benches
can run a documented subset (DESIGN.md section 7).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.base import GraphClassificationDataset
from repro.graph import GraphSample, knn_edges, undirected_edge_index

FULL_MNIST_SIZE = 70_000
_CANVAS = 28

# Stroke endpoints in unit coordinates: seven-segment corners plus centre.
_P: Dict[str, Tuple[float, float]] = {
    "tl": (0.25, 0.15),
    "tr": (0.75, 0.15),
    "ml": (0.25, 0.5),
    "mr": (0.75, 0.5),
    "bl": (0.25, 0.85),
    "br": (0.75, 0.85),
    "tc": (0.5, 0.15),
    "bc": (0.5, 0.85),
}

#: Segments per digit, seven-segment style with a few diagonals.
_DIGIT_STROKES: Dict[int, List[Tuple[str, str]]] = {
    0: [("tl", "tr"), ("tr", "br"), ("br", "bl"), ("bl", "tl")],
    1: [("tc", "bc")],
    2: [("tl", "tr"), ("tr", "mr"), ("mr", "ml"), ("ml", "bl"), ("bl", "br")],
    3: [("tl", "tr"), ("tr", "mr"), ("ml", "mr"), ("mr", "br"), ("br", "bl")],
    4: [("tl", "ml"), ("ml", "mr"), ("tr", "br")],
    5: [("tr", "tl"), ("tl", "ml"), ("ml", "mr"), ("mr", "br"), ("br", "bl")],
    6: [("tr", "tl"), ("tl", "bl"), ("bl", "br"), ("br", "mr"), ("mr", "ml")],
    7: [("tl", "tr"), ("tr", "bc")],
    8: [("tl", "tr"), ("tr", "br"), ("br", "bl"), ("bl", "tl"), ("ml", "mr")],
    9: [("mr", "ml"), ("ml", "tl"), ("tl", "tr"), ("tr", "br")],
}


def _rasterise_digit(digit: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a jittered digit on a 28x28 canvas with a soft brush."""
    canvas = np.zeros((_CANVAS, _CANVAS), dtype=np.float32)
    jitter = rng.normal(0.0, 0.02, size=(len(_P), 2))
    points = {
        name: (np.array(xy) + j) * _CANVAS
        for (name, xy), j in zip(_P.items(), jitter)
    }
    yy, xx = np.mgrid[0:_CANVAS, 0:_CANVAS]
    grid = np.stack([xx, yy], axis=-1).astype(np.float32)
    brush = 1.1 + rng.uniform(-0.15, 0.25)
    for a, b in _DIGIT_STROKES[digit]:
        pa, pb = points[a], points[b]
        seg = pb - pa
        seg_len2 = max(float(seg @ seg), 1e-9)
        t = np.clip(((grid - pa) @ seg) / seg_len2, 0.0, 1.0)
        closest = pa + t[..., None] * seg
        dist2 = np.square(grid - closest).sum(axis=-1)
        canvas += np.exp(-dist2 / (2.0 * brush**2))
    return np.clip(canvas, 0.0, 1.0)


def _superpixels(image: np.ndarray, rng: np.random.Generator):
    """One-iteration SLIC: grid seeds, nearest-seed pixel assignment."""
    grid_n = 9
    step = _CANVAS / grid_n
    seeds = np.stack(
        np.meshgrid(
            np.arange(grid_n) * step + step / 2, np.arange(grid_n) * step + step / 2
        ),
        axis=-1,
    ).reshape(-1, 2)
    seeds = seeds + rng.uniform(-step / 4, step / 4, size=seeds.shape)
    yy, xx = np.mgrid[0:_CANVAS, 0:_CANVAS]
    pixels = np.stack([xx.ravel(), yy.ravel()], axis=-1).astype(np.float32)
    dist = np.square(pixels[:, None, :] - seeds[None, :, :]).sum(axis=-1)
    assign = dist.argmin(axis=1)
    intensity = image.ravel()

    centroids = []
    features = []
    for s in range(len(seeds)):
        mask = assign == s
        if not mask.any():
            continue
        # Keep only superpixels that carry some ink or touch the digit area,
        # dropping a few empty border cells — node counts then vary ~65-81.
        mean_int = float(intensity[mask].mean())
        if mean_int < 0.005 and rng.random() < 0.35:
            continue
        centroids.append(pixels[mask].mean(axis=0))
        features.append(mean_int)
    pos = np.array(centroids, dtype=np.float32) / _CANVAS
    x = np.array(features, dtype=np.float32).reshape(-1, 1)
    return x, pos


def mnist_superpixels(
    n_graphs: int = 2000, seed: int = 0, knn: int = 14
) -> GraphClassificationDataset:
    """Generate ``n_graphs`` MNIST superpixel graphs (classes balanced)."""
    if n_graphs < 10:
        raise ValueError("need at least one graph per digit class")
    rng = np.random.default_rng(seed)
    labels = np.arange(n_graphs) % 10
    labels = labels[rng.permutation(n_graphs)]
    graphs = []
    for label in labels:
        image = _rasterise_digit(int(label), rng)
        x, pos = _superpixels(image, rng)
        src, dst = knn_edges(pos, knn)
        edge_index = undirected_edge_index(src, dst)
        graphs.append(GraphSample(edge_index, x, int(label), pos=pos))
    return GraphClassificationDataset("MNIST", graphs, 10)
