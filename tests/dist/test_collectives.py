"""Collective property tests: bitwise numerics, schedules, timing."""

import numpy as np
import pytest

from repro.device import Fabric, NVLINK, PCIE_P2P, current_device
from repro.dist import COMM_PHASE, Communicator, reduce_fixed_order


def _buffers(world, n=103, seed=7):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=n).astype(np.float32) * 100 for _ in range(world)]


class TestFixedOrderReduction:
    def test_matches_sequential_left_fold(self):
        arrays = _buffers(5)
        acc = arrays[0].copy()
        for a in arrays[1:]:
            acc = acc + a
        assert np.array_equal(reduce_fixed_order(arrays), acc)

    def test_mean_divides_after_summing(self):
        arrays = _buffers(4)
        expected = reduce_fixed_order(arrays) / np.float32(4)
        assert np.array_equal(reduce_fixed_order(arrays, op="mean"), expected)

    def test_rejects_empty_and_unknown_op(self):
        with pytest.raises(ValueError):
            reduce_fixed_order([])
        with pytest.raises(ValueError):
            reduce_fixed_order(_buffers(2), op="max")

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            reduce_fixed_order([np.zeros(3, np.float32), np.zeros(4, np.float32)])


class TestAllReduceBitwise:
    """Ring/tree all-reduce == sequential fixed-order reduction, bitwise."""

    # Non-power-of-two world sizes and buffer lengths that do not divide
    # evenly (uneven chunks) are the interesting cases.
    @pytest.mark.parametrize("world", [2, 3, 4, 5, 7, 8])
    @pytest.mark.parametrize("algorithm", ["ring", "tree"])
    @pytest.mark.parametrize("n", [1, 13, 103])
    def test_bitwise_equal_to_fixed_order(self, world, algorithm, n):
        arrays = _buffers(world, n=n)
        comm = Communicator(world)
        result = comm.all_reduce(arrays, algorithm=algorithm)
        assert np.array_equal(result, reduce_fixed_order(arrays))
        comm.synchronize()

    @pytest.mark.parametrize("algorithm", ["ring", "tree", "auto"])
    def test_single_replica_is_identity_and_free(self, algorithm):
        device = current_device()
        before = device.clock.elapsed
        comm = Communicator(1)
        arrays = _buffers(1)
        result = comm.all_reduce(arrays, algorithm=algorithm)
        comm.synchronize()
        assert np.array_equal(result, arrays[0])
        # No streams, no host charges, no fabric: a strict no-op.
        assert device.clock.elapsed == before
        assert comm.fabric is None
        assert comm.streams == []

    def test_mean_bitwise_equal_to_fixed_order_mean(self):
        arrays = _buffers(5)
        comm = Communicator(5)
        result = comm.all_reduce(arrays, op="mean", algorithm="ring")
        assert np.array_equal(result, reduce_fixed_order(arrays, op="mean"))

    def test_algorithm_choice_never_changes_bits(self):
        arrays = _buffers(6)
        ring = Communicator(6).all_reduce(arrays, algorithm="ring")
        tree = Communicator(6).all_reduce(arrays, algorithm="tree")
        auto = Communicator(6).all_reduce(arrays, algorithm="auto")
        assert np.array_equal(ring, tree)
        assert np.array_equal(ring, auto)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            Communicator(2).all_reduce(_buffers(2), algorithm="butterfly")

    def test_wrong_buffer_count_rejected(self):
        with pytest.raises(ValueError):
            Communicator(3).all_reduce(_buffers(2))


class TestOtherCollectives:
    @pytest.mark.parametrize("world", [2, 3, 5])
    def test_reduce_scatter_chunks_concatenate_to_reduction(self, world):
        arrays = _buffers(world, n=29)  # 29 % world != 0: uneven chunks
        comm = Communicator(world)
        chunks = comm.reduce_scatter(arrays)
        assert len(chunks) == world
        assert np.array_equal(np.concatenate(chunks),
                              reduce_fixed_order(arrays))

    def test_all_gather_returns_every_buffer(self):
        arrays = _buffers(3)
        gathered = Communicator(3).all_gather(arrays)
        assert all(np.array_equal(a, b) for a, b in zip(gathered, arrays))

    def test_broadcast_returns_root_buffer(self):
        arrays = _buffers(4)
        comm = Communicator(4)
        assert np.array_equal(comm.broadcast(arrays[2], root=2), arrays[2])
        with pytest.raises(ValueError):
            comm.broadcast(arrays[0], root=4)


class TestTimingModel:
    def test_collectives_cost_time_only_at_synchronize(self):
        device = current_device()
        comm = Communicator(4)
        big = [np.ones(2_500_000, np.float32) for _ in range(4)]
        before = device.clock.elapsed
        comm.all_reduce(big, algorithm="ring")
        issued = device.clock.elapsed - before
        # Issuing is host launch overhead only; the transfer schedule is
        # in flight on the comm streams.
        assert issued == pytest.approx(device.spec.launch_overhead)
        comm.synchronize()
        waited = device.clock.elapsed - before - issued
        assert waited > 10 * issued
        assert device.clock.phase_elapsed[COMM_PHASE] == pytest.approx(
            issued + waited)

    def test_ring_beats_tree_for_large_buffers_and_loses_for_small(self):
        comm = Communicator(8)
        assert (comm.estimate_ring_seconds(64 * 2 ** 20)
                < comm.estimate_tree_seconds(64 * 2 ** 20))
        assert (comm.estimate_tree_seconds(256)
                < comm.estimate_ring_seconds(256))

    def test_auto_picks_the_analytically_cheaper_schedule(self):
        small = [np.ones(8, np.float32) for _ in range(8)]
        comm = Communicator(8)
        comm.all_reduce(small, algorithm="auto")
        assert comm.stats.by_kind == {"tree_all_reduce": 1}
        big = [np.ones(1_000_000, np.float32) for _ in range(8)]
        comm2 = Communicator(8, fabric=Fabric(8))
        comm2.all_reduce(big, algorithm="auto")
        assert comm2.stats.by_kind == {"ring_all_reduce": 1}

    def test_ring_time_tracks_analytic_estimate(self):
        device = current_device()
        comm = Communicator(4)
        big = [np.ones(1_000_000, np.float32) for _ in range(4)]
        before = device.clock.elapsed
        comm.all_reduce(big, algorithm="ring")
        comm.synchronize()
        measured = device.clock.elapsed - before
        analytic = comm.estimate_ring_seconds(4_000_000)
        # Within 2x: the schedule adds receive-side reduction kernels and
        # launch overhead on top of the pure-bandwidth bound.
        assert analytic < measured < 2 * analytic

    def test_pcie_fabric_is_slower_than_nvlink(self):
        big = [np.ones(1_000_000, np.float32) for _ in range(4)]

        def elapsed(link):
            device = current_device()
            comm = Communicator(4, link=link,
                                fabric=Fabric(4, spec=link))
            before = device.clock.elapsed
            comm.all_reduce(big, algorithm="ring")
            comm.synchronize()
            return device.clock.elapsed - before

        assert elapsed(PCIE_P2P) > elapsed(NVLINK)

    def test_profiler_records_comm_kernels_per_replica_stream(self):
        device = current_device()
        device.profiler.enabled = True
        comm = Communicator(3)
        comm.all_reduce(_buffers(3), algorithm="ring")
        comm.synchronize()
        records = [r for r in device.profiler.records
                   if r.name.startswith("nccl:")]
        assert {r.phase for r in records} == {COMM_PHASE}
        assert {r.stream for r in records} == {s.id for s in comm.streams}
        assert device.profiler.time_by_phase()[COMM_PHASE] > 0

    def test_fabric_must_be_large_enough(self):
        with pytest.raises(ValueError):
            Communicator(4, fabric=Fabric(2))
