"""DDP parity: world_size=1 bitwise, grad accumulation to float tolerance."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.device import Device, use_device
from repro.dist import BatchConfig, Communicator, DistributedDataParallel, collect_grads
from repro.models import graph_config
from repro.nn import cross_entropy
from repro.train import DDPTrainer, GraphClassificationTrainer
from repro.train.graph_trainer import _build


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("mnist", num_graphs=96)


SPLIT = (np.arange(64), np.arange(64, 80), np.arange(80, 96))


def _baseline(framework, dataset, compiled):
    trainer = GraphClassificationTrainer(
        framework, "gcn", dataset, batch_size=16, max_epochs=2,
        device=Device(), compile=compiled,
    )
    return trainer.run_fold(*SPLIT, seed=0)


def _ddp(framework, dataset, batch, compiled=False, prefetch=False,
         model="gcn", max_epochs=2):
    trainer = DDPTrainer(
        framework, model, dataset, batch, max_epochs=max_epochs,
        device=Device(), compile=compiled, prefetch=prefetch,
    )
    return trainer.run_fold(*SPLIT, seed=0), trainer


class TestWorldSizeOneBitwise:
    """DDP at world_size=1 is the single-device trainer, bit for bit."""

    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    @pytest.mark.parametrize("compiled", [False, True])
    def test_losses_bitwise_identical(self, dataset, framework, compiled):
        base = _baseline(framework, dataset, compiled)
        ddp, _ = _ddp(framework, dataset, BatchConfig(16), compiled=compiled)
        assert [e.train_loss for e in base.epochs] == [
            e.train_loss for e in ddp.epochs
        ]
        assert [e.val_loss for e in base.epochs] == [
            e.val_loss for e in ddp.epochs
        ]
        assert base.test_acc == ddp.test_acc

    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_eager_timing_also_identical(self, dataset, framework):
        # With no hooks, no comm streams and no extra ops, even the
        # simulated wall time matches the single-device trainer exactly.
        base = _baseline(framework, dataset, compiled=False)
        ddp, trainer = _ddp(framework, dataset, BatchConfig(16))
        assert ddp.total_time == base.total_time
        assert trainer.communicator.stats.collectives == 0
        assert trainer.ddp.buckets == []


class TestGradAccumulation:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_accumulated_micros_match_full_batch_gradients(self, dataset, framework):
        """BatchConfig(micro=k) gradient == full-batch gradient (float tol)."""
        cfg = graph_config("gcn", in_dim=dataset.num_features,
                           n_classes=dataset.num_classes)
        graphs = dataset.graphs[:32]
        with use_device(Device()):
            model = _build(framework, cfg, np.random.default_rng(0))
            named = list(model.named_parameters())

            if framework == "pygx":
                from repro.pygx import DataLoader as Loader
            else:
                from repro.dglx import GraphDataLoader as Loader

            def batches(batch_size):
                loader = Loader(graphs, batch_size)
                if framework == "pygx":
                    return [(b, b.y) for b in loader]
                return list(loader)

            model.zero_grad()
            ((inputs, labels),) = batches(32)
            cross_entropy(model(inputs), labels).backward()
            full = collect_grads(named)

            model.zero_grad()
            accum = BatchConfig(micro_batch_size=8, grad_accumulation=4)
            for inputs, labels in batches(accum.micro_batch_size):
                loss = cross_entropy(model(inputs), labels)
                (loss * (1.0 / accum.grad_accumulation)).backward()
            accumulated = collect_grads(named)

        assert set(full) == set(accumulated)
        for name in full:
            np.testing.assert_allclose(accumulated[name], full[name],
                                       rtol=1e-4, atol=1e-6)

    def test_trainer_accum_loss_close_to_full_batch_loss(self, dataset):
        full, _ = _ddp("pygx", dataset, BatchConfig(16))
        accum, _ = _ddp("pygx", dataset,
                        BatchConfig(micro_batch_size=4, grad_accumulation=4))
        for a, b in zip(full.epochs, accum.epochs):
            assert a.train_loss == pytest.approx(b.train_loss, rel=1e-3)
            assert a.val_loss == pytest.approx(b.val_loss, rel=1e-3)


class TestMultiReplicaNumerics:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_replicated_training_tracks_single_device(self, dataset, framework):
        """Same global batch across 1 vs 4 replicas: same loss trajectory
        to float tolerance (the sum over a shuffled global batch is merely
        reassociated, never a different set of samples)."""
        single, _ = _ddp(framework, dataset, BatchConfig(16))
        multi, _ = _ddp(framework, dataset,
                        BatchConfig.for_global_batch(16, replicas=4))
        for a, b in zip(single.epochs, multi.epochs):
            assert b.train_loss == pytest.approx(a.train_loss, rel=0.05)
        assert multi.epochs[-1].val_loss == pytest.approx(
            single.epochs[-1].val_loss, rel=0.05)

    def test_ddp_wrapper_grads_equal_fixed_order_mean(self, dataset):
        """The bucketed hook path reproduces the canonical per-parameter
        mean of per-replica gradients, bitwise."""
        cfg = graph_config("gcn", in_dim=dataset.num_features,
                           n_classes=dataset.num_classes)
        world = 3
        with use_device(Device()):
            model = _build("pygx", cfg, np.random.default_rng(0))
            named = list(model.named_parameters())
            comm = Communicator(world)
            ddp = DistributedDataParallel(model, comm, bucket_bytes=4096)

            from repro.pygx import DataLoader

            loader = DataLoader(dataset.graphs[:48], 16)
            shards = [(b, b.y) for b in loader]
            per_replica = []
            for inputs, labels in shards:
                model.zero_grad()
                with ddp.no_sync():
                    cross_entropy(model(inputs), labels).backward()
                per_replica.append(collect_grads(named))

            for rank in (1, 2):
                ddp.stage_remote_grads(rank, per_replica[rank])
            model.zero_grad()
            inputs, labels = shards[0]
            cross_entropy(model(inputs), labels).backward()
            ddp.finish_backward()

            for name, param in named:
                stack = [per_replica[0][name],
                         per_replica[1][name], per_replica[2][name]]
                acc = stack[0].astype(np.float32).copy()
                acc += stack[1]
                acc += stack[2]
                acc /= np.float32(world)
                assert np.array_equal(param.grad, acc), name
            assert comm.stats.collectives == len(ddp.buckets)

    def test_missing_staged_grads_is_an_error(self, dataset):
        cfg = graph_config("gcn", in_dim=dataset.num_features,
                           n_classes=dataset.num_classes)
        with use_device(Device()):
            model = _build("pygx", cfg, np.random.default_rng(0))
            ddp = DistributedDataParallel(model, Communicator(2))
            from repro.pygx import DataLoader

            batch = next(iter(DataLoader(dataset.graphs[:8], 8)))
            with pytest.raises(RuntimeError, match="staged"):
                cross_entropy(model(batch), batch.y).backward()
