"""DDP bucketing, grad hooks and comm/compute overlap."""

import numpy as np
import pytest

from repro.device import current_device
from repro.dist import (
    COMM_PHASE,
    Communicator,
    DistributedDataParallel,
)
from repro.nn import Linear, Module, ReLU, Sequential
from repro.tensor import Tensor


class MLP(Module):
    def __init__(self, rng, width=32, depth=3):
        super().__init__()
        layers = []
        for _ in range(depth):
            layers.append(Linear(width, width, rng=rng))
            layers.append(ReLU())
        self.body = Sequential(*layers)

    def forward(self, x):
        return self.body(x)

    @property
    def width(self):
        return self.body[0].in_features


def _model(width=32, depth=3):
    return MLP(np.random.default_rng(0), width=width, depth=depth)


def _backward(model, n=4):
    out = model(Tensor(np.ones((n, model.width), np.float32)))
    out.sum().backward()


class TestBuckets:
    def test_world_one_builds_no_buckets_or_hooks(self):
        model = _model()
        ddp = DistributedDataParallel(model, Communicator(1))
        assert ddp.buckets == []
        assert all(p._post_accumulate_hooks is None
                   for _, p in model.named_parameters())

    def test_buckets_cover_every_param_once_in_reverse_order(self):
        model = _model()
        ddp = DistributedDataParallel(model, Communicator(2),
                                      bucket_bytes=1 << 12)
        names = [n for b in ddp.buckets for n, _ in b.params]
        assert sorted(names) == sorted(n for n, _ in model.named_parameters())
        assert names == [n for n, _ in reversed(list(model.named_parameters()))]

    def test_bucket_byte_cap_respected(self):
        model = _model()
        cap = 1 << 12  # one 32x32 float32 weight is 4 KiB
        ddp = DistributedDataParallel(model, Communicator(2), bucket_bytes=cap)
        for bucket in ddp.buckets:
            total = sum(p.data.nbytes for _, p in bucket.params)
            assert total <= cap or len(bucket.params) == 1

    def test_huge_cap_gives_single_bucket(self):
        model = _model()
        ddp = DistributedDataParallel(model, Communicator(2),
                                      bucket_bytes=1 << 30)
        assert len(ddp.buckets) == 1

    def test_oversize_param_gets_its_own_bucket(self):
        model = _model(width=64)
        ddp = DistributedDataParallel(model, Communicator(2), bucket_bytes=8)
        assert all(len(b.params) == 1 for b in ddp.buckets)


class TestHooks:
    def test_each_complete_bucket_reduces_once_per_backward(self):
        model = _model()
        comm = Communicator(3)
        ddp = DistributedDataParallel(model, comm, bucket_bytes=1 << 12)
        grads = {n: np.zeros(p.data.shape, np.float32)
                 for n, p in model.named_parameters()}
        for rank in (1, 2):
            ddp.stage_remote_grads(rank, grads)
        _backward(model)
        ddp.finish_backward()
        assert comm.stats.collectives == len(ddp.buckets)

    def test_no_sync_suppresses_collectives(self):
        model = _model()
        comm = Communicator(2)
        ddp = DistributedDataParallel(model, comm)
        with ddp.no_sync():
            _backward(model)
        assert comm.stats.collectives == 0
        ddp.finish_backward()
        assert comm.stats.collectives == 0

    def test_remove_hooks_detaches_from_params(self):
        model = _model()
        ddp = DistributedDataParallel(model, Communicator(2))
        assert any(p._post_accumulate_hooks
                   for _, p in model.named_parameters())
        ddp.remove_hooks()
        with ddp.no_sync():
            pass
        _backward(model)  # would raise RuntimeError("staged") if hooks live
        assert all(not p._post_accumulate_hooks
                   for _, p in model.named_parameters())

    def test_stage_remote_grads_validates_rank_and_names(self):
        model = _model()
        ddp = DistributedDataParallel(model, Communicator(2))
        grads = {n: np.zeros(p.data.shape, np.float32)
                 for n, p in model.named_parameters()}
        with pytest.raises(ValueError):
            ddp.stage_remote_grads(0, grads)
        with pytest.raises(ValueError):
            ddp.stage_remote_grads(2, grads)
        with pytest.raises(ValueError):
            ddp.stage_remote_grads(1, {"nope": np.zeros(1, np.float32)})


class TestOverlap:
    """Collectives ride the comm streams: compute issued after a bucket
    reduce hides the transfer, so synchronising afterwards is (nearly)
    free compared with synchronising immediately."""

    def _comm_then_sync(self, compute_seconds):
        device = current_device()
        comm = Communicator(4)
        big = [np.ones(1_000_000, np.float32) for _ in range(4)]
        comm.all_reduce(big, algorithm="ring")
        if compute_seconds:
            # Enough default-stream compute to cover the in-flight schedule.
            device.launch("gemm",
                          flops=compute_seconds * device.spec.peak_flops)
        before = device.clock.elapsed
        comm.synchronize()
        return device.clock.elapsed - before

    def test_compute_hides_comm_wait(self):
        eager_wait = self._comm_then_sync(compute_seconds=0.0)
        hidden_wait = self._comm_then_sync(compute_seconds=0.1)
        assert eager_wait > 0
        assert hidden_wait == 0.0

    def test_comm_phase_accounts_only_comm_time(self):
        device = current_device()
        comm = Communicator(2)
        base = device.clock.phase_elapsed.get(COMM_PHASE, 0.0)
        comm.all_reduce([np.ones(100_000, np.float32) for _ in range(2)])
        device.launch("gemm", flops=1e9)
        comm.synchronize()
        comm_time = device.clock.phase_elapsed[COMM_PHASE] - base
        assert comm_time > 0
        # The interleaved compute launch is not attributed to comm.
        assert device.clock.phase_elapsed.get("other", 0.0) >= 0
