"""BatchConfig: effective-global-batch factoring and validation."""

import pytest

from repro.dist import BatchConfig


class TestBatchConfig:
    def test_global_batch_is_product_of_factors(self):
        cfg = BatchConfig(micro_batch_size=32, grad_accumulation=2, replicas=4)
        assert cfg.replica_batch_size == 64
        assert cfg.global_batch_size == 256

    def test_defaults_are_single_replica_single_micro(self):
        cfg = BatchConfig(128)
        assert cfg.grad_accumulation == 1
        assert cfg.replicas == 1
        assert cfg.global_batch_size == 128

    @pytest.mark.parametrize("field", ["micro_batch_size", "grad_accumulation",
                                       "replicas"])
    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_rejects_non_positive_or_non_int(self, field, bad):
        kwargs = {"micro_batch_size": 8, "grad_accumulation": 1, "replicas": 1}
        kwargs[field] = bad
        with pytest.raises(ValueError):
            BatchConfig(**kwargs)

    def test_for_global_batch_splits_evenly(self):
        cfg = BatchConfig.for_global_batch(256, replicas=8)
        assert cfg.micro_batch_size == 32
        assert cfg.global_batch_size == 256
        cfg = BatchConfig.for_global_batch(256, replicas=4, grad_accumulation=2)
        assert cfg.micro_batch_size == 32
        assert cfg.global_batch_size == 256

    def test_for_global_batch_rejects_uneven_split(self):
        with pytest.raises(ValueError):
            BatchConfig.for_global_batch(100, replicas=3)
        with pytest.raises(ValueError):
            BatchConfig.for_global_batch(4, replicas=8)

    def test_frozen_and_printable(self):
        cfg = BatchConfig(16, 2, 4)
        with pytest.raises(Exception):
            cfg.replicas = 8
        assert "128" in str(cfg) and "4 replicas" in str(cfg)
