"""Interconnect fabric: link timing, contention, recording."""

import pytest

from repro.device import Fabric, Link, LinkSpec, NVLINK, PCIE_P2P


class TestLinkSpec:
    def test_transfer_time_is_latency_plus_bytes_over_bandwidth(self):
        spec = LinkSpec(name="test", bandwidth=1e9, latency=1e-6)
        assert spec.transfer_time(0) == pytest.approx(1e-6)
        assert spec.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NVLINK.transfer_time(-1)

    def test_profiles_ordered_sensibly(self):
        # NVLink is the fat, low-latency pipe; PCIe P2P the thin one.
        assert NVLINK.bandwidth > PCIE_P2P.bandwidth
        assert NVLINK.latency < PCIE_P2P.latency


class TestLink:
    def test_occupy_advances_free_at_and_busy(self):
        link = Link(0, 1, LinkSpec(name="t", bandwidth=1e9, latency=0.0))
        start, end = link.occupy(1000, earliest=0.0)
        assert (start, end) == (0.0, pytest.approx(1e-6))
        assert link.free_at == end
        assert link.busy == pytest.approx(1e-6)
        assert link.bytes_moved == 1000

    def test_back_to_back_transfers_serialise(self):
        link = Link(0, 1, LinkSpec(name="t", bandwidth=1e9, latency=0.0))
        _, first_end = link.occupy(1000, earliest=0.0)
        start, _ = link.occupy(1000, earliest=0.0)
        assert start == first_end

    def test_gap_between_transfers_is_not_busy(self):
        link = Link(0, 1, LinkSpec(name="t", bandwidth=1e9, latency=0.0))
        link.occupy(1000, earliest=0.0)
        start, _ = link.occupy(1000, earliest=5.0)
        assert start == 5.0
        assert link.busy == pytest.approx(2e-6)


class TestFabric:
    def test_links_created_on_first_use_and_directed(self):
        fabric = Fabric(4)
        forward = fabric.link(0, 1)
        backward = fabric.link(1, 0)
        assert forward is not backward
        assert fabric.link(0, 1) is forward
        assert len(fabric.links) == 2

    def test_rejects_out_of_range_and_self_links(self):
        fabric = Fabric(2)
        with pytest.raises(ValueError):
            fabric.link(0, 2)
        with pytest.raises(ValueError):
            fabric.link(1, 1)
        with pytest.raises(ValueError):
            Fabric(0)

    def test_contention_accounted_when_link_queues(self):
        fabric = Fabric(2, spec=LinkSpec(name="t", bandwidth=1e9, latency=0.0))
        fabric.transfer(0, 1, 1_000_000, earliest=0.0)
        start, _ = fabric.transfer(0, 1, 1_000_000, earliest=0.0)
        assert start == pytest.approx(1e-3)
        assert fabric.contention_seconds == pytest.approx(1e-3)

    def test_recording_keeps_transfers_with_labels(self):
        fabric = Fabric(2, record=True)
        fabric.transfer(0, 1, 64, earliest=0.0, label="bucket0")
        fabric.transfer(1, 0, 64, earliest=0.0, label="bucket1")
        assert [t.label for t in fabric.transfers] == ["bucket0", "bucket1"]
        assert fabric.transfers[0].nbytes == 64
        assert fabric.stats().transfers == 2

    def test_stats_aggregate_links(self):
        fabric = Fabric(3)
        fabric.transfer(0, 1, 100, earliest=0.0)
        fabric.transfer(1, 2, 200, earliest=0.0)
        stats = fabric.stats()
        assert stats.bytes_moved == 300
        assert stats.links_used == 2
        assert stats.busy_seconds > 0

    def test_reset_clears_timelines(self):
        fabric = Fabric(2, record=True)
        fabric.transfer(0, 1, 100, earliest=0.0)
        fabric.reset()
        assert fabric.links == []
        assert fabric.transfers == []
        assert fabric.stats().bytes_moved == 0
