"""Model configuration variants: readouts, SAGE aggregators, GIN aggregation."""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.models import graph_config
from repro.nn import cross_entropy


@pytest.fixture(scope="module")
def tiny():
    return enzymes(seed=0, num_graphs=12)


def pygx_forward(cfg, tiny):
    from repro.pygx import Batch, Data, build_model

    net = build_model(cfg, np.random.default_rng(0))
    net.eval()
    batch = Batch.from_data_list([Data.from_sample(g) for g in tiny.graphs])
    return net(batch), batch.y


def dglx_forward(cfg, tiny):
    from repro.dglx import batch as dgl_batch
    from repro.dglx import build_model

    net = build_model(cfg, np.random.default_rng(0))
    net.eval()
    g = dgl_batch(tiny.graphs)
    return net(g), np.array([s.y for s in tiny.graphs])


FORWARDS = {"pygx": pygx_forward, "dglx": dglx_forward}


class TestReadoutVariants:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    @pytest.mark.parametrize("readout", ["mean", "sum", "max"])
    def test_all_readouts_run(self, framework, readout, tiny):
        cfg = graph_config(
            "gcn", in_dim=tiny.num_features, n_classes=tiny.num_classes, readout=readout
        )
        logits, labels = FORWARDS[framework](cfg, tiny)
        assert logits.shape == (len(labels), tiny.num_classes)

    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_readouts_differ(self, framework, tiny):
        outs = {}
        for readout in ("mean", "sum"):
            cfg = graph_config(
                "gcn", in_dim=tiny.num_features, n_classes=tiny.num_classes, readout=readout
            )
            outs[readout], _ = FORWARDS[framework](cfg, tiny)
        assert not np.allclose(outs["mean"].data, outs["sum"].data)

    def test_unknown_readout_raises(self, tiny):
        cfg = graph_config(
            "gcn", in_dim=tiny.num_features, n_classes=tiny.num_classes, readout="median"
        )
        with pytest.raises(ValueError):
            pygx_forward(cfg, tiny)


class TestSAGEAggregators:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    @pytest.mark.parametrize("aggregator", ["mean", "mean_pool", "max_pool"])
    def test_all_aggregators_train(self, framework, aggregator, tiny):
        cfg = graph_config(
            "sage",
            in_dim=tiny.num_features,
            n_classes=tiny.num_classes,
            sage_aggregator=aggregator,
        )
        logits, labels = FORWARDS[framework](cfg, tiny)
        loss = cross_entropy(logits, labels)
        loss.backward()
        assert np.isfinite(loss.item())

    def test_mean_has_no_pool_fc(self, tiny):
        from repro.pygx.models.sage import SAGEConv

        conv = SAGEConv(4, 4, np.random.default_rng(0), aggregator="mean")
        assert conv.fc_pool is None

    def test_invalid_aggregator(self):
        from repro.pygx.models.sage import SAGEConv

        with pytest.raises(ValueError):
            SAGEConv(4, 4, np.random.default_rng(0), aggregator="lstm")


class TestGINAggregation:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    @pytest.mark.parametrize("aggr", ["sum", "mean"])
    def test_gin_aggregations_run(self, framework, aggr, tiny):
        cfg = graph_config(
            "gin",
            in_dim=tiny.num_features,
            n_classes=tiny.num_classes,
            neighbor_aggr_gin=aggr,
        )
        logits, labels = FORWARDS[framework](cfg, tiny)
        assert logits.shape == (len(labels), tiny.num_classes)

    def test_sum_and_mean_differ(self, tiny):
        outs = {}
        for aggr in ("sum", "mean"):
            cfg = graph_config(
                "gin",
                in_dim=tiny.num_features,
                n_classes=tiny.num_classes,
                neighbor_aggr_gin=aggr,
            )
            outs[aggr], _ = pygx_forward(cfg, tiny)
        assert not np.allclose(outs["sum"].data, outs["mean"].data)

    def test_invalid_gin_aggregation(self, tiny):
        from repro.dglx.models.gin import GINConv

        with pytest.raises(ValueError):
            GINConv(4, 4, np.random.default_rng(0), learn_eps=False, neighbor_aggr="lstm")
