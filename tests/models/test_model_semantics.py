"""Deeper semantic checks of individual model layers (both frameworks)."""

import numpy as np
import pytest

from repro.tensor import Tensor


class TestMoNetGaussianWeights:
    def test_weights_in_unit_interval(self):
        """exp(-0.5 z^2) lies in (0, 1]."""
        from repro.pygx.models.monet import GMMConv

        conv = GMMConv(2, 2, kernels=2, pseudo_dim=2, rng=np.random.default_rng(0))
        # probe the weight computation through a tiny forward
        x = Tensor(np.ones((3, 2), np.float32))
        edge_index = np.array([[0, 1, 2], [1, 2, 0]])
        out = conv(x, edge_index, 3)
        assert np.all(np.isfinite(out.data))

    def test_kernel_at_mean_gives_weight_one(self):
        """An edge whose pseudo-coordinate equals mu_k receives weight 1."""
        from repro.pygx.models.monet import GMMConv

        rng = np.random.default_rng(0)
        conv = GMMConv(1, 1, kernels=1, pseudo_dim=2, rng=rng, activation=False)
        # force the pseudo projection to a constant equal to mu
        conv.fc_pseudo.weight.data[:] = 0.0
        conv.fc_pseudo.bias.data[:] = 0.0
        conv.mu.data[:] = 0.0
        conv.fc.weight.data[:] = 1.0
        x = Tensor(np.array([[1.0], [1.0]], np.float32))
        out = conv(x, np.array([[0, 1], [1, 0]]), 2)
        # tanh(0)=0 == mu -> w=1 -> each node receives exactly its neighbour
        np.testing.assert_allclose(out.data, [[1.0], [1.0]], rtol=1e-5)


class TestGatedGCNGates:
    def test_gates_bounded(self):
        from repro.pygx.models.gatedgcn import GatedGCNConv
        from repro.tensor import sigmoid

        rng = np.random.default_rng(0)
        conv = GatedGCNConv(2, 2, rng)
        # sigmoid output must lie in (0, 1): indirectly verified through the
        # normalised aggregation staying within the convex hull scale
        x = Tensor(rng.normal(size=(4, 2)).astype(np.float32))
        ring = np.arange(4)
        out = conv(x, np.stack([ring, np.roll(ring, -1)]), 4)
        assert np.all(np.isfinite(out.data))

    def test_gate_normalisation_convexity(self):
        """With U = 0 the update is a convex-ish combination of V h_j."""
        from repro.pygx.models.gatedgcn import GatedGCNConv

        rng = np.random.default_rng(0)
        conv = GatedGCNConv(1, 1, rng, activation=False)
        conv.fc_u.weight.data[:] = 0.0
        conv.fc_u.bias.data[:] = 0.0
        conv.fc_v.weight.data[:] = 1.0
        conv.fc_v.bias.data[:] = 0.0
        x = Tensor(np.array([[1.0], [3.0], [5.0]], np.float32))
        # node 0 receives from nodes 1 and 2
        edge_index = np.array([[1, 2], [0, 0]])
        out = conv(x, edge_index, 3)
        assert 1.0 - 1e-4 <= out.data[0, 0] <= 5.0 + 1e-4


class TestGATHeads:
    @pytest.mark.parametrize("module_path", ["repro.pygx.models.gat", "repro.dglx.models.gat"])
    def test_head_outputs_concatenate(self, module_path):
        import importlib

        mod = importlib.import_module(module_path)
        conv = mod.GATConv(4, head_dim=3, heads=2, rng=np.random.default_rng(0))
        if "pygx" in module_path:
            x = Tensor(np.random.default_rng(0).normal(size=(5, 4)).astype(np.float32))
            ring = np.arange(5)
            out = conv(x, np.stack([ring, np.roll(ring, -1)]), 5)
        else:
            from repro.dglx import DGLGraph
            from repro.graph import GraphSample

            ring = np.arange(5)
            g = DGLGraph(ring, np.roll(ring, -1), 5)
            x = Tensor(np.random.default_rng(0).normal(size=(5, 4)).astype(np.float32))
            out = conv(g, x)
        assert out.shape == (5, 6)  # heads * head_dim


class TestSAGEUnitBall:
    def test_hidden_layers_project_to_unit_ball(self):
        from repro.pygx.models.sage import SAGEConv

        rng = np.random.default_rng(0)
        conv = SAGEConv(3, 3, rng)  # hidden layer: activation True
        x = Tensor(rng.normal(size=(6, 3)).astype(np.float32))
        ring = np.arange(6)
        out = conv(x, np.stack([ring, np.roll(ring, -1)]), 6)
        norms = np.linalg.norm(out.data, axis=1)
        assert np.all(norms <= 1.0 + 1e-4)
