"""Hyper-parameter tables (II and III) and the shared readout head."""

import numpy as np
import pytest

from repro.models import (
    ANISOTROPIC,
    ISOTROPIC,
    MODEL_NAMES,
    MLPReadout,
    ModelConfig,
    graph_config,
    node_config,
)
from repro.tensor import Tensor


class TestTableII:
    """Node-classification settings (Table II)."""

    @pytest.mark.parametrize(
        "model,hidden,lr",
        [
            ("gcn", 80, 0.01),
            ("gat", 32, 0.01),
            ("gin", 64, 0.005),
            ("sage", 32, 0.001),
            ("monet", 64, 0.003),
            ("gatedgcn", 64, 0.001),
        ],
    )
    def test_hidden_and_lr(self, model, hidden, lr):
        cfg = node_config(model, in_dim=100, n_classes=7)
        assert cfg.hidden == hidden
        assert cfg.lr == lr

    def test_two_layers_for_node_task(self):
        assert node_config("gcn", 10, 3).n_layers == 2

    def test_readout_mean(self):
        assert node_config("gcn", 10, 3).readout == "mean"

    def test_gat_heads_fixed_to_8(self):
        assert node_config("gat", 10, 3).n_heads == 8

    def test_monet_kernels_fixed_to_2(self):
        cfg = node_config("monet", 10, 3)
        assert cfg.kernels == 2
        assert cfg.pseudo_dim == 2


class TestTableIII:
    """Graph-classification settings (Table III)."""

    @pytest.mark.parametrize(
        "model,hidden,out,lr",
        [
            ("gcn", 128, 128, 1e-3),
            ("gat", 32, 256, 1e-3),
            ("gin", 80, 80, 1e-3),
            ("sage", 96, 96, 7e-4),
            ("monet", 80, 80, 1e-3),
            ("gatedgcn", 96, 96, 7e-4),
        ],
    )
    def test_dims_and_init_lr(self, model, hidden, out, lr):
        cfg = graph_config(model, in_dim=18, n_classes=6)
        assert (cfg.hidden, cfg.out_dim, cfg.lr) == (hidden, out, lr)

    def test_four_layers(self):
        for model in MODEL_NAMES:
            assert graph_config(model, 18, 6).n_layers == 4

    def test_learning_setup(self):
        cfg = graph_config("gcn", 18, 6)
        assert cfg.lr_reduce_factor == 0.5
        assert cfg.lr_patience == 25
        assert cfg.min_lr == 1e-6

    def test_gatedgcn_edge_feat_false(self):
        assert not graph_config("gatedgcn", 18, 6).edge_feat

    def test_gin_learns_eps(self):
        assert graph_config("gin", 18, 6).learn_eps_gin


class TestConfigValidation:
    def test_model_families(self):
        assert set(ISOTROPIC) | set(ANISOTROPIC) == set(MODEL_NAMES)
        assert not set(ISOTROPIC) & set(ANISOTROPIC)

    def test_anisotropic_flag(self):
        assert graph_config("gat", 4, 2).is_anisotropic
        assert not graph_config("gcn", 4, 2).is_anisotropic

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            node_config("mlp", 4, 2)

    def test_invalid_task(self):
        with pytest.raises(ValueError):
            ModelConfig("gcn", "edge", 4, 4, 4, 2, 2, 0.1)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ModelConfig("gcn", "node", 0, 4, 4, 2, 2, 0.1)

    def test_overrides(self):
        cfg = graph_config("gcn", 18, 6, n_layers=2, dropout=0.3)
        assert cfg.n_layers == 2
        assert cfg.dropout == 0.3


class TestMLPReadout:
    def test_halving_widths(self):
        head = MLPReadout(128, 6, rng=np.random.default_rng(0))
        widths = [layer.out_features for layer in head.hidden_layers]
        assert widths == [64, 32]
        assert head.out.out_features == 6

    def test_forward_shape(self):
        head = MLPReadout(64, 10, rng=np.random.default_rng(0))
        out = head(Tensor(np.zeros((5, 64), np.float32)))
        assert out.shape == (5, 10)

    def test_never_narrower_than_classes(self):
        head = MLPReadout(8, 6, rng=np.random.default_rng(0))
        widths = [layer.out_features for layer in head.hidden_layers]
        assert all(w >= 6 for w in widths)
