"""Dense baseline: numerical agreement with pygx GCN and resource blowup."""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.densex import DenseGCNNet, dense_batch
from repro.device import Device, use_device
from repro.models import graph_config
from repro.nn import cross_entropy


@pytest.fixture(scope="module")
def tiny():
    return enzymes(seed=0, num_graphs=12)


class TestDenseBatch:
    def test_shapes(self, tiny):
        b = dense_batch(tiny.graphs[:3])
        n = sum(g.num_nodes for g in tiny.graphs[:3])
        assert b.adj.shape == (n, n)
        assert b.pool.shape == (3, n)
        assert b.num_graphs == 3

    def test_adjacency_block_diagonal(self, tiny):
        graphs = tiny.graphs[:2]
        b = dense_batch(graphs)
        n0 = graphs[0].num_nodes
        off_block = b.adj.data[:n0, n0:]
        np.testing.assert_array_equal(off_block, np.zeros_like(off_block))

    def test_pool_rows_are_means(self, tiny):
        b = dense_batch(tiny.graphs[:2])
        np.testing.assert_allclose(b.pool.data.sum(axis=1), [1.0, 1.0], rtol=1e-5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dense_batch([])


class TestDenseGCN:
    def test_matches_pygx_gcn_forward(self, tiny):
        """Same normalisation + weights => same logits as the sparse GCN."""
        from repro.pygx import Batch, Data, build_model

        cfg = graph_config("gcn", in_dim=tiny.num_features, n_classes=tiny.num_classes)
        sparse_net = build_model(cfg, np.random.default_rng(0))
        dense_net = DenseGCNNet(cfg, np.random.default_rng(1))
        dense_net.load_state_dict(sparse_net.state_dict())
        sparse_net.eval()
        dense_net.eval()

        sb = Batch.from_data_list([Data.from_sample(g) for g in tiny.graphs])
        db = dense_batch(tiny.graphs)
        np.testing.assert_allclose(sparse_net(sb).data, dense_net(db).data, atol=2e-3)

    def test_trains(self, tiny):
        cfg = graph_config("gcn", in_dim=tiny.num_features, n_classes=tiny.num_classes)
        net = DenseGCNNet(cfg, np.random.default_rng(0))
        b = dense_batch(tiny.graphs)
        loss = cross_entropy(net(b), b.y)
        loss.backward()
        assert all(p.grad is not None for p in net.parameters())

    def test_rejects_other_models(self):
        cfg = graph_config("gat", in_dim=4, n_classes=2)
        with pytest.raises(ValueError):
            DenseGCNNet(cfg)

    def test_quadratic_memory_blowup(self, tiny):
        """The reason GNN frameworks exist: dense memory >> sparse memory."""
        from repro.pygx import Batch, Data

        graphs = tiny.graphs
        dev_dense, dev_sparse = Device(), Device()
        with use_device(dev_dense):
            dense_batch(graphs)
            dense_peak = dev_dense.memory.peak
        with use_device(dev_sparse):
            Batch.from_data_list([Data.from_sample(g) for g in graphs])
            sparse_peak = dev_sparse.memory.peak
        assert dense_peak > 3 * sparse_peak
