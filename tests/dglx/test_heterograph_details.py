"""DGLGraph details: frames, self-description, batching edge cases."""

import numpy as np
import pytest

from repro.dglx import DGLGraph, batch
from repro.graph import GraphSample
from repro.tensor import Tensor


def sample(n=3, seed=0):
    rng = np.random.default_rng(seed)
    ring = np.arange(n)
    return GraphSample(
        np.stack([ring, np.roll(ring, -1)]),
        rng.normal(size=(n, 2)).astype(np.float32),
        0,
    )


class TestFrames:
    def test_clear_frames(self):
        g = DGLGraph.from_sample(sample())
        g.ndata["h"] = Tensor(np.ones((3, 1), np.float32))
        g.edata["e"] = Tensor(np.ones((3, 1), np.float32))
        g.clear_frames()
        assert not g.ndata and not g.edata

    def test_frame_overwrite_replaces(self):
        g = DGLGraph.from_sample(sample())
        g.ndata["h"] = Tensor(np.ones((3, 1), np.float32))
        g.ndata["h"] = Tensor(np.zeros((3, 1), np.float32))
        assert g.ndata["h"].data.sum() == 0.0

    def test_repr(self):
        g = DGLGraph.from_sample(sample(4))
        text = repr(g)
        assert "num_nodes=4" in text and "batch_size=1" in text


class TestBatchEdgeCases:
    def test_single_graph_batch(self):
        g = batch([sample(5)])
        assert g.batch_size() == 1
        assert g.num_nodes() == 5
        np.testing.assert_array_equal(g.node_offsets(), [0, 5])

    def test_batch_num_edges_tracked(self):
        g = batch([sample(3), sample(4)])
        np.testing.assert_array_equal(g.batch_num_edges(), [3, 4])

    def test_pos_collated_when_requested(self):
        rng = np.random.default_rng(0)
        graphs = []
        for i in range(2):
            base = sample(3, seed=i)
            graphs.append(
                GraphSample(base.edge_index, base.x, 0, pos=rng.random((3, 2)).astype(np.float32))
            )
        g = batch(graphs, with_pos=True)
        assert g.ndata["pos"].shape == (6, 2)

    def test_isolated_nodes_supported(self):
        lonely = GraphSample(np.zeros((2, 0), np.int64), np.ones((4, 2), np.float32), 0)
        g = batch([lonely, sample(3)])
        assert g.num_nodes() == 7
        # aggregation over a graph with isolated nodes stays finite
        from repro.dglx import function as fn

        g.ndata["h"] = g.ndata["feat"]
        g.update_all(fn.copy_u("h", "m"), fn.mean("m", "out"))
        assert np.all(np.isfinite(g.ndata["out"].data))
