"""All six DGL-style models: shapes, gradients, cross-framework agreement."""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.dglx import batch as dgl_batch
from repro.dglx import build_model
from repro.models import MODEL_NAMES, graph_config, node_config
from repro.nn import cross_entropy
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def tiny():
    ds = enzymes(seed=0, num_graphs=12)
    return ds


def batched(ds):
    g = dgl_batch(ds.graphs)
    labels = np.array([s.y for s in ds.graphs])
    return g, labels


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestGraphTaskModels:
    def test_forward_shape(self, name, tiny):
        cfg = graph_config(name, in_dim=tiny.num_features, n_classes=tiny.num_classes)
        model = build_model(cfg, np.random.default_rng(0))
        g, labels = batched(tiny)
        logits = model(g)
        assert logits.shape == (len(labels), tiny.num_classes)

    def test_all_parameters_receive_gradients(self, name, tiny):
        cfg = graph_config(name, in_dim=tiny.num_features, n_classes=tiny.num_classes)
        model = build_model(cfg, np.random.default_rng(0))
        g, labels = batched(tiny)
        cross_entropy(model(g), labels).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        if name == "gatedgcn":
            # The last layer's edge-feature BatchNorm output is never
            # consumed (no layer follows), so its parameters legitimately
            # receive no gradient — true of the reference implementation too.
            missing = [n for n in missing if "bn_e" not in n]
        assert not missing, f"parameters without gradient: {missing}"

    def test_node_task_shape(self, name, tiny):
        cfg = node_config(name, in_dim=tiny.num_features, n_classes=5)
        model = build_model(cfg, np.random.default_rng(0))
        model.eval()
        g = dgl_batch([tiny.graphs[0]])
        logits = model(g)
        assert logits.shape == (tiny.graphs[0].num_nodes, 5)


class TestCrossFrameworkAgreement:
    """The two frameworks implement the same function class: with weights
    copied over, forward outputs must agree for the models whose lowering
    is mathematically identical."""

    def _copy_weights(self, src_net, dst_net):
        dst_net.load_state_dict(src_net.state_dict())

    def test_gin_forward_matches_pygx(self, tiny):
        from repro.pygx import Batch, Data, build_model as build_pyg

        cfg = graph_config("gin", in_dim=tiny.num_features, n_classes=tiny.num_classes)
        pyg_net = build_pyg(cfg, np.random.default_rng(0))
        dgl_net = build_model(cfg, np.random.default_rng(1))
        state = {k.replace("conv", "conv"): v for k, v in pyg_net.state_dict().items()}
        dgl_net.load_state_dict(state)
        pyg_net.eval()
        dgl_net.eval()

        pb = Batch.from_data_list([Data.from_sample(g) for g in tiny.graphs])
        db, labels = batched(tiny)
        out_pyg = pyg_net(pb).data
        out_dgl = dgl_net(db).data
        np.testing.assert_allclose(out_pyg, out_dgl, atol=1e-3)

    def test_gat_forward_matches_pygx(self, tiny):
        from repro.pygx import Batch, Data, build_model as build_pyg

        cfg = graph_config("gat", in_dim=tiny.num_features, n_classes=tiny.num_classes)
        pyg_net = build_pyg(cfg, np.random.default_rng(0))
        dgl_net = build_model(cfg, np.random.default_rng(1))
        # parameter names differ (attn_src/attn_dst vs attn_l/attn_r)
        mapping = {}
        for (pn, pv) in pyg_net.state_dict().items():
            dn = pn.replace("attn_src", "attn_l").replace("attn_dst", "attn_r")
            mapping[dn] = pv
        dgl_net.load_state_dict(mapping)
        pyg_net.eval()
        dgl_net.eval()

        pb = Batch.from_data_list([Data.from_sample(g) for g in tiny.graphs])
        db, _ = batched(tiny)
        np.testing.assert_allclose(pyg_net(pb).data, dgl_net(db).data, atol=1e-3)

    def test_monet_forward_matches_pygx(self, tiny):
        from repro.pygx import Batch, Data, build_model as build_pyg

        cfg = graph_config("monet", in_dim=tiny.num_features, n_classes=tiny.num_classes)
        pyg_net = build_pyg(cfg, np.random.default_rng(0))
        dgl_net = build_model(cfg, np.random.default_rng(1))
        dgl_net.load_state_dict(pyg_net.state_dict())
        pyg_net.eval()
        dgl_net.eval()

        pb = Batch.from_data_list([Data.from_sample(g) for g in tiny.graphs])
        db, _ = batched(tiny)
        np.testing.assert_allclose(pyg_net(pb).data, dgl_net(db).data, atol=1e-3)


class TestGatedGCNEdgePath:
    def test_edge_features_initialised_and_updated(self, tiny):
        cfg = graph_config("gatedgcn", in_dim=tiny.num_features, n_classes=tiny.num_classes)
        model = build_model(cfg, np.random.default_rng(0))
        g, _ = batched(tiny)
        model(g)
        assert "e_feat" in g.edata
        assert g.edata["e_feat"].shape == (g.num_edges(), cfg.out_dim)

    def test_uses_more_memory_than_pygx_version(self, tiny):
        from repro.device import Device, use_device
        from repro.pygx import Batch, Data, build_model as build_pyg

        cfg = graph_config("gatedgcn", in_dim=tiny.num_features, n_classes=tiny.num_classes)
        peaks = {}
        for fw in ("pygx", "dglx"):
            dev = Device()
            with use_device(dev):
                if fw == "pygx":
                    net = build_pyg(cfg, np.random.default_rng(0))
                    inputs = Batch.from_data_list(
                        [Data.from_sample(s) for s in tiny.graphs]
                    )
                    labels = inputs.y
                else:
                    net = build_model(cfg, np.random.default_rng(0))
                    inputs = dgl_batch(tiny.graphs)
                    labels = np.array([s.y for s in tiny.graphs])
                loss = cross_entropy(net(inputs), labels)
                loss.backward()
                peaks[fw] = dev.memory.peak
        assert peaks["dglx"] > peaks["pygx"]


class TestGCNNormalisationCost:
    def test_dgl_gcn_layer_issues_extra_normalise_kernels(self, tiny, fresh_device):
        """The paper: DGL normalises features before AND after aggregation."""
        from repro.dglx.models.gcn import GraphConv

        conv = GraphConv(4, 4, np.random.default_rng(0))
        g = dgl_batch(tiny.graphs[:2])
        h = Tensor(np.random.default_rng(0).normal(size=(g.num_nodes(), 4)).astype(np.float32))
        _ = g.csr  # pre-build so only layer kernels are counted
        prof = fresh_device.profiler
        prof.enabled = True
        prof.clear()
        conv(g, h)
        names = [r.name for r in prof.records]
        assert names.count("mul") >= 2  # two degree-normalisation multiplies
