"""Per-replica sharding in the DGL-style GraphDataLoader."""

import numpy as np
import pytest

from repro.dglx import GraphDataLoader
from repro.graph import GraphSample


def _graphs(n):
    edge = np.array([[0], [1]])
    return [GraphSample(edge, np.ones((2, 3), np.float32), i) for i in range(n)]


def _labels(loader):
    return [int(y) for _, labels in loader for y in labels]


class TestGraphDataLoaderSharding:
    def test_default_is_unsharded(self):
        loader = GraphDataLoader(_graphs(10), batch_size=4)
        assert loader.world_size == 1
        assert _labels(loader) == list(range(10))

    @pytest.mark.parametrize("world", [2, 3, 4])
    def test_identically_seeded_replicas_get_disjoint_equal_shards(self, world):
        graphs = _graphs(21)
        shards = []
        for rank in range(world):
            loader = GraphDataLoader(graphs, batch_size=2, shuffle=True,
                                     rng=np.random.default_rng(7),
                                     rank=rank, world_size=world)
            shards.append(_labels(loader))
        assert {len(s) for s in shards} == {21 // world}
        seen = [y for s in shards for y in s]
        assert len(seen) == len(set(seen))

    def test_sharding_is_seed_deterministic(self):
        graphs = _graphs(16)
        first = _labels(GraphDataLoader(graphs, 4, shuffle=True,
                                        rng=np.random.default_rng(3),
                                        rank=1, world_size=4))
        second = _labels(GraphDataLoader(graphs, 4, shuffle=True,
                                         rng=np.random.default_rng(3),
                                         rank=1, world_size=4))
        assert first == second

    def test_remainder_graphs_dropped_before_sharding(self):
        graphs = _graphs(10)
        seen = []
        for rank in range(3):
            seen += _labels(GraphDataLoader(graphs, 2, rank=rank,
                                            world_size=3))
        assert sorted(seen) == list(range(9))

    def test_len_counts_shard_batches(self):
        loader = GraphDataLoader(_graphs(20), batch_size=4,
                                 rank=0, world_size=2)
        assert len(loader) == 3
        loader = GraphDataLoader(_graphs(20), batch_size=4, drop_last=True,
                                 rank=0, world_size=2)
        assert len(loader) == 2

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError, match="empty shard"):
            GraphDataLoader(_graphs(3), batch_size=2, rank=0, world_size=4)

    def test_drop_last_zero_batches_rejected_per_shard(self):
        with pytest.raises(ValueError, match="would yield zero batches"):
            GraphDataLoader(_graphs(30), batch_size=16, drop_last=True,
                            rank=0, world_size=2)
