"""DGL-style NeighborLoader: triples, frames, knobs, determinism."""

import numpy as np
import pytest

from repro.device import Device, use_device
from repro.dglx import NeighborLoader
from repro.scale import make_scale_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_scale_dataset(600, avg_degree=6.0, n_classes=4,
                              n_features=8, seed=0)


def collect(loader):
    with use_device(Device()):
        return list(loader)


class TestBatches:
    def test_yields_graph_label_triples(self, dataset):
        seeds = dataset.train_idx
        loader = NeighborLoader(dataset.graph, seeds, (4, 4), batch_size=16)
        assert len(loader) == (len(seeds) + 15) // 16
        offset = 0
        for g, labels, n_seeds in collect(loader):
            chunk = seeds[offset:offset + 16]
            assert n_seeds == len(chunk)
            np.testing.assert_array_equal(labels, dataset.graph.y[chunk])
            assert "feat" in g.ndata
            assert g.ndata["feat"].shape == (g.num_nodes(), 8)
            # Seed features sit in the first rows (seeds-first layout).
            np.testing.assert_allclose(
                g.ndata["feat"].data[:n_seeds],
                dataset.graph.x[chunk],
            )
            offset += 16

    def test_deterministic_with_seeded_rng(self, dataset):
        def degrees():
            loader = NeighborLoader(dataset.graph, dataset.train_idx, (4, 4),
                                    batch_size=16, shuffle=True, rng=5)
            return [g.in_degrees().copy() for g, _, _ in collect(loader)]

        for a, b in zip(degrees(), degrees()):
            np.testing.assert_array_equal(a, b)

    def test_ensure_self_loops(self, dataset):
        loader = NeighborLoader(dataset.graph, dataset.train_idx[:32], (3, 3),
                                batch_size=32, ensure_self_loops=True)
        ((g, _, _),) = collect(loader)
        # Every node got exactly one self edge (in-degree includes it).
        assert np.all(g.in_degrees() >= 1)

    def test_full_graph_norm_attaches_true_degrees(self, dataset):
        seeds = dataset.train_idx[:32]
        loader = NeighborLoader(dataset.graph, seeds, (2, 2),
                                batch_size=32, full_graph_norm=True)
        ((g, _, n_seeds),) = collect(loader)
        true = g.ndata["true_in_deg"].data
        assert true.shape == (g.num_nodes(), 1)
        expected = np.maximum(np.diff(dataset.graph.indptr)[seeds], 1)
        np.testing.assert_array_equal(true[:n_seeds, 0],
                                      expected.astype(np.float32))

    def test_without_norm_no_degree_frame(self, dataset):
        loader = NeighborLoader(dataset.graph, dataset.train_idx[:8], (2, 2),
                                batch_size=8)
        ((g, _, _),) = collect(loader)
        assert "true_in_deg" not in g.ndata


class TestValidation:
    def test_bad_batch_size(self, dataset):
        with pytest.raises(ValueError):
            NeighborLoader(dataset.graph, dataset.train_idx, (4,), batch_size=0)

    def test_missing_labels(self, dataset):
        from repro.graph import CSRBigGraph

        bare = CSRBigGraph(dataset.graph.indptr, dataset.graph.indices,
                           x=dataset.graph.x)
        with pytest.raises(ValueError):
            NeighborLoader(bare, dataset.train_idx, (4,), batch_size=8)
