"""DGL-style framework: heterograph, builtins, batching, readout."""

import numpy as np
import pytest

from repro.dglx import (
    DGLGraph,
    GraphDataLoader,
    batch,
    edge_softmax_fused,
    function as fn,
    gsddmm_u_add_v,
    max_nodes,
    mean_nodes,
    sum_nodes,
)
from repro.graph import GraphSample
from repro.tensor import Tensor


def sample(n_nodes=3, label=0, seed=0):
    rng = np.random.default_rng(seed)
    ring = np.arange(n_nodes)
    edge_index = np.stack([ring, np.roll(ring, -1)])
    x = rng.normal(size=(n_nodes, 2)).astype(np.float32)
    return GraphSample(edge_index, x, label)


class TestDGLGraph:
    def test_heterograph_metadata(self):
        g = DGLGraph.from_sample(sample(3))
        assert g.ntypes == ["_N"]
        assert g.canonical_etypes == [("_N", "_E", "_N")]

    def test_structure_queries(self):
        g = DGLGraph.from_sample(sample(4))
        assert g.num_nodes() == 4
        assert g.num_edges() == 4
        np.testing.assert_array_equal(g.in_degrees(), np.ones(4))

    def test_csr_cached(self):
        g = DGLGraph.from_sample(sample(3))
        assert g.csr is g.csr

    def test_csr_build_launches_kernel(self, fresh_device):
        g = DGLGraph.from_sample(sample(3))
        fresh_device.profiler.enabled = True
        _ = g.csr
        assert "coo_to_csr" in [r.name for r in fresh_device.profiler.records]

    def test_src_dst_length_mismatch(self):
        with pytest.raises(ValueError):
            DGLGraph(np.array([0]), np.array([0, 1]), 2)


class TestUpdateAll:
    def test_copy_u_sum_matches_manual(self):
        g = DGLGraph.from_sample(sample(3))
        x = np.array([[1.0], [10.0], [100.0]], np.float32)
        g.ndata["h"] = Tensor(x)
        g.update_all(fn.copy_u("h", "m"), fn.sum("m", "out"))
        np.testing.assert_allclose(g.ndata["out"].data, [[100.0], [1.0], [10.0]])

    def test_copy_u_mean(self):
        s = GraphSample(np.array([[0, 1], [2, 2]]), np.zeros((3, 1), np.float32), 0)
        g = DGLGraph.from_sample(s)
        g.ndata["h"] = Tensor(np.array([[2.0], [4.0], [0.0]], np.float32))
        g.update_all(fn.copy_u("h", "m"), fn.mean("m", "out"))
        np.testing.assert_allclose(g.ndata["out"].data, [[0.0], [0.0], [3.0]])

    def test_u_mul_e_sum(self):
        g = DGLGraph.from_sample(sample(3))
        g.ndata["h"] = Tensor(np.ones((3, 2), np.float32))
        g.edata["w"] = Tensor(np.array([2.0, 3.0, 4.0], np.float32))
        g.update_all(fn.u_mul_e("h", "w", "m"), fn.sum("m", "out"))
        # edges: 0->1 (w=2), 1->2 (w=3), 2->0 (w=4)
        np.testing.assert_allclose(g.ndata["out"].data, [[4, 4], [2, 2], [3, 3]])

    def test_mismatched_fields_rejected(self):
        g = DGLGraph.from_sample(sample(3))
        g.ndata["h"] = Tensor(np.ones((3, 1), np.float32))
        with pytest.raises(ValueError):
            g.update_all(fn.copy_u("h", "m"), fn.sum("m2", "out"))

    def test_charges_scheduler_overhead(self, fresh_device):
        g = DGLGraph.from_sample(sample(3))
        g.ndata["h"] = Tensor(np.ones((3, 1), np.float32))
        before = fresh_device.clock.elapsed
        g.update_all(fn.copy_u("h", "m"), fn.sum("m", "out"))
        overhead = fresh_device.host_costs.dgl_update_all_overhead
        assert fresh_device.clock.elapsed - before >= overhead


class TestApplyEdges:
    def test_u_add_v(self):
        g = DGLGraph.from_sample(sample(3))
        g.ndata["a"] = Tensor(np.array([[1.0], [2.0], [3.0]], np.float32))
        g.ndata["b"] = Tensor(np.array([[10.0], [20.0], [30.0]], np.float32))
        g.apply_edges(fn.u_add_v("a", "b", "e"))
        # edge order: 0->1, 1->2, 2->0
        np.testing.assert_allclose(g.edata["e"].data, [[21.0], [32.0], [13.0]])

    def test_u_dot_v(self):
        g = DGLGraph.from_sample(sample(3))
        g.ndata["a"] = Tensor(np.eye(3, dtype=np.float32))
        g.ndata["b"] = Tensor(np.eye(3, dtype=np.float32))
        g.apply_edges(fn.u_dot_v("a", "b", "e"))
        np.testing.assert_allclose(g.edata["e"].data, [0.0, 0.0, 0.0])

    def test_unknown_op(self):
        g = DGLGraph.from_sample(sample(3))
        g.ndata["a"] = Tensor(np.ones((3, 1), np.float32))
        from repro.dglx.function import EdgeFunc

        with pytest.raises(ValueError):
            g.apply_edges(EdgeFunc("u_pow_v", "a", "a", "e"))
        with pytest.raises(ValueError):
            g.apply_edges(EdgeFunc("bogus", "a", "a", "e"))


class TestFusedKernels:
    def test_u_add_v_gradients(self, rng):
        from repro.tensor import CSRGraph

        src = np.array([0, 1, 1])
        dst = np.array([1, 0, 2])
        g = CSRGraph.from_edge_index(src, dst, 3, 3)
        a = Tensor(rng.normal(size=(3, 2)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)).astype(np.float32), requires_grad=True)
        gsddmm_u_add_v(g, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, np.array([[1, 1], [2, 2], [0, 0]], np.float32))
        np.testing.assert_allclose(b.grad, np.array([[1, 1], [1, 1], [1, 1]], np.float32))

    def test_fused_softmax_matches_pygx_composition(self, rng):
        from repro.pygx import edge_softmax as pygx_softmax
        from repro.tensor import CSRGraph

        src = rng.integers(0, 5, size=12)
        dst = rng.integers(0, 5, size=12)
        g = CSRGraph.from_edge_index(src, dst, 5, 5)
        logits = rng.normal(size=(12, 3)).astype(np.float32)
        fused = edge_softmax_fused(g, Tensor(logits)).data
        composed = pygx_softmax(Tensor(logits), dst, 5).data
        np.testing.assert_allclose(fused, composed, atol=1e-5)

    def test_fused_softmax_gradient_near_zero_for_sum(self, rng):
        from repro.tensor import CSRGraph

        dst = np.array([0, 0, 1, 1])
        g = CSRGraph.from_edge_index(np.array([0, 1, 2, 3]), dst, 4, 2)
        logits = Tensor(rng.normal(size=(4,)).astype(np.float32), requires_grad=True)
        edge_softmax_fused(g, logits).sum().backward()
        np.testing.assert_allclose(logits.grad, np.zeros(4), atol=1e-5)

    def test_fused_softmax_fewer_launches_than_composed(self, fresh_device, rng):
        from repro.pygx import edge_softmax as pygx_softmax
        from repro.tensor import CSRGraph

        dst = np.array([0, 0, 1])
        g = CSRGraph.from_edge_index(np.array([0, 1, 2]), dst, 3, 2)
        logits = Tensor(rng.normal(size=(3,)).astype(np.float32))
        prof = fresh_device.profiler
        prof.enabled = True
        prof.clear()
        edge_softmax_fused(g, logits)
        fused_launches = len(prof.records)
        prof.clear()
        pygx_softmax(logits, dst, 2)
        composed_launches = len(prof.records)
        assert fused_launches < composed_launches


class TestBatching:
    def graphs(self, n=5):
        return [sample(3 + i, label=i % 2, seed=i) for i in range(n)]

    def test_batched_structure(self):
        g = batch(self.graphs(3))
        assert g.batch_size() == 3
        assert g.num_nodes() == 3 + 4 + 5
        np.testing.assert_array_equal(g.batch_num_nodes(), [3, 4, 5])
        np.testing.assert_array_equal(g.node_offsets(), [0, 3, 7, 12])

    def test_features_in_frame(self):
        gs = self.graphs(2)
        g = batch(gs)
        np.testing.assert_array_equal(g.ndata["feat"].data, np.concatenate([s.x for s in gs]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            batch([])

    def test_costs_more_than_pygx_batching(self, fresh_device):
        from repro.pygx import Batch, Data

        gs = self.graphs(20)
        before = fresh_device.clock.elapsed
        Batch.from_data_list([Data.from_sample(g) for g in gs])
        pyg_cost = fresh_device.clock.elapsed - before
        before = fresh_device.clock.elapsed
        batch(gs)
        dgl_cost = fresh_device.clock.elapsed - before
        assert dgl_cost > pyg_cost

    def test_with_pos_requires_positions(self):
        with pytest.raises(ValueError):
            batch(self.graphs(2), with_pos=True)


class TestReadout:
    def make_batched(self):
        g = batch([sample(2, seed=1), sample(3, seed=2)])
        g.ndata["h"] = Tensor(
            np.array([[1.0], [3.0], [3.0], [6.0], [0.0]], np.float32)
        )
        return g

    def test_mean_nodes(self):
        out = mean_nodes(self.make_batched(), "h")
        np.testing.assert_allclose(out.data, [[2.0], [3.0]])

    def test_sum_nodes(self):
        out = sum_nodes(self.make_batched(), "h")
        np.testing.assert_allclose(out.data, [[4.0], [9.0]])

    def test_max_nodes(self):
        out = max_nodes(self.make_batched(), "h")
        np.testing.assert_allclose(out.data, [[3.0], [6.0]])


class TestGraphDataLoader:
    def test_yields_graph_and_labels(self):
        gs = [sample(3, label=i, seed=i) for i in range(4)]
        loader = GraphDataLoader(gs, batch_size=2)
        batches = list(loader)
        assert len(batches) == 2
        g, labels = batches[0]
        assert isinstance(g, DGLGraph)
        np.testing.assert_array_equal(labels, [0, 1])

    def test_loading_phase(self, fresh_device):
        gs = [sample(3, seed=i) for i in range(4)]
        list(GraphDataLoader(gs, batch_size=2))
        assert fresh_device.clock.phase_elapsed["data_loading"] > 0

    def test_int_seed_accepted_and_reproducible(self):
        gs = [sample(3, label=i, seed=i) for i in range(8)]
        first = GraphDataLoader(gs, batch_size=8, shuffle=True, rng=11)
        second = GraphDataLoader(gs, batch_size=8, shuffle=True, rng=11)
        (_, labels_a), (_, labels_b) = next(iter(first)), next(iter(second))
        np.testing.assert_array_equal(labels_a, labels_b)

    def test_drop_last_zero_batches_rejected(self):
        gs = [sample(3, seed=i) for i in range(3)]
        with pytest.raises(ValueError, match="zero"):
            GraphDataLoader(gs, batch_size=8, drop_last=True)

    def test_frame_set_charges_host_time(self, fresh_device):
        g = DGLGraph.from_sample(sample(3))
        before = fresh_device.clock.elapsed
        g.ndata["h"] = Tensor(np.ones((3, 1), np.float32))
        assert fresh_device.clock.elapsed > before
