"""Multi-type heterographs: schema handling, message passing, batching cost."""

import numpy as np
import pytest

from repro.dglx import function as fn
from repro.dglx.hetero_multitype import HeteroDGLGraph, as_k_type_graph, batch_hetero
from repro.tensor import Tensor


def bipartite():
    """users -(rates)-> items"""
    edges = {
        ("user", "rates", "item"): (np.array([0, 1, 1]), np.array([0, 0, 1])),
    }
    return HeteroDGLGraph({"user": 2, "item": 2}, edges)


class TestSchema:
    def test_types_listed(self):
        g = bipartite()
        assert set(g.ntypes) == {"user", "item"}
        assert g.canonical_etypes == [("user", "rates", "item")]

    def test_counts(self):
        g = bipartite()
        assert g.num_nodes("user") == 2
        assert g.num_edges(("user", "rates", "item")) == 3

    def test_unknown_node_type_in_edges_rejected(self):
        with pytest.raises(ValueError):
            HeteroDGLGraph({"a": 2}, {("a", "r", "b"): (np.array([0]), np.array([0]))})

    def test_src_dst_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HeteroDGLGraph(
                {"a": 2}, {("a", "r", "a"): (np.array([0, 1]), np.array([0]))}
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            HeteroDGLGraph({}, {})


class TestMessagePassing:
    def test_cross_type_aggregation(self):
        g = bipartite()
        g.ndata("user")["h"] = Tensor(np.array([[1.0], [10.0]], np.float32))
        g.update_all(fn.copy_u("h", "m"), fn.sum("m", "out"))
        # item0 <- user0 + user1 ; item1 <- user1
        np.testing.assert_allclose(g.ndata("item")["out"].data, [[11.0], [10.0]])

    def test_etype_required_when_ambiguous(self):
        edges = {
            ("a", "r1", "a"): (np.array([0]), np.array([0])),
            ("a", "r2", "a"): (np.array([0]), np.array([0])),
        }
        g = HeteroDGLGraph({"a": 1}, edges)
        g.ndata("a")["h"] = Tensor(np.ones((1, 1), np.float32))
        with pytest.raises(ValueError):
            g.update_all(fn.copy_u("h", "m"), fn.sum("m", "out"))
        g.update_all(fn.copy_u("h", "m"), fn.sum("m", "out"), etype=("a", "r1", "a"))
        assert "out" in g.ndata("a")

    def test_k_type_recast_preserves_aggregate(self, rng):
        """Splitting edges into k relations must not change the total sum."""
        edge_index = np.array([[0, 1, 2, 0, 2], [1, 2, 0, 2, 1]])
        x = rng.normal(size=(3, 4)).astype(np.float32)
        totals = {}
        for k in (1, 3):
            g = as_k_type_graph(edge_index, x, k, np.random.default_rng(0))
            agg = np.zeros((3, 4), np.float32)
            for etype in g.canonical_etypes:
                g.update_all(fn.copy_u("feat", "m"), fn.sum("m", "out"), etype=etype)
                agg += g.ndata("_N")["out"].data
            totals[k] = agg
        np.testing.assert_allclose(totals[1], totals[3], atol=1e-5)


class TestHeterogeneousBatching:
    def make_graphs(self, n, k, rng):
        graphs = []
        for _ in range(n):
            edge_index = np.stack([rng.integers(0, 8, 20), rng.integers(0, 8, 20)])
            x = rng.normal(size=(8, 4)).astype(np.float32)
            graphs.append(as_k_type_graph(edge_index, x, k, rng))
        return graphs

    def test_batched_counts(self, rng):
        graphs = self.make_graphs(3, 2, rng)
        batched = batch_hetero(graphs)
        assert batched.num_nodes("_N") == 24
        total_edges = sum(
            batched.num_edges(e) for e in batched.canonical_etypes
        )
        assert total_edges == 60

    def test_features_concatenated(self, rng):
        graphs = self.make_graphs(2, 1, rng)
        batched = batch_hetero(graphs)
        expected = np.concatenate(
            [g.ndata("_N")["feat"].data for g in graphs], axis=0
        )
        np.testing.assert_array_equal(batched.ndata("_N")["feat"].data, expected)

    def test_schema_mismatch_rejected(self, rng):
        a = self.make_graphs(1, 1, rng)[0]
        b = self.make_graphs(1, 2, rng)[0]
        with pytest.raises(ValueError):
            batch_hetero([a, b])

    def test_batching_cost_grows_with_type_count(self, rng, fresh_device):
        """The heterograph tax: same structure, more types, slower collation."""
        costs = {}
        for k in (1, 4):
            graphs = self.make_graphs(16, k, rng)
            before = fresh_device.clock.elapsed
            batch_hetero(graphs)
            costs[k] = fresh_device.clock.elapsed - before
        assert costs[4] > costs[1]

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            batch_hetero([])
