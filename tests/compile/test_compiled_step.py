"""CompiledStep: plan caching, guards, recapture, trainer/serving wiring."""

import numpy as np
import pytest

from repro.compile import CompiledStep, FusionConfig, default_signature
from repro.device import Device, current_device, use_device
from repro.tensor import Tensor, ops


def _linear_step(w):
    def step(x):
        return ops.relu(ops.matmul(x, w)).sum()

    return step


class TestPlanCaching:
    def test_capture_then_replay(self):
        w = Tensor(np.ones((8, 8)), requires_grad=True)
        cs = CompiledStep(_linear_step(w))
        x = Tensor(np.ones((4, 8)))
        cs(x)
        assert cs.stats.captures == 1
        cs(x)
        assert cs.stats.replays == 1
        assert cs.stats.guard_failures == 0

    def test_structural_signature_shares_plans_across_batch_sizes(self):
        w = Tensor(np.ones((8, 8)), requires_grad=True)
        cs = CompiledStep(_linear_step(w))
        cs(Tensor(np.ones((4, 8))))
        cs(Tensor(np.ones((32, 8))))  # same rank + feature dim -> same plan
        assert cs.stats.captures == 1
        assert cs.stats.replays == 1
        assert len(cs.plans) == 1

    def test_different_feature_width_gets_own_plan(self):
        def step(x):
            return ops.exp(x)

        cs = CompiledStep(step)
        cs(Tensor(np.ones((4, 8))))
        cs(Tensor(np.ones((4, 16))))
        assert cs.stats.captures == 2
        assert len(cs.plans) == 2

    def test_max_plans_evicts_fifo(self):
        cs = CompiledStep(lambda x: ops.exp(x), max_plans=2)
        for width in (2, 3, 4):
            cs(Tensor(np.ones((1, width))))
        assert len(cs.plans) == 2
        assert cs.stats.captures == 3

    def test_invalidate_forces_recapture(self):
        cs = CompiledStep(lambda x: ops.exp(x))
        x = Tensor(np.ones((2, 2)))
        cs(x)
        cs.invalidate()
        cs(x)
        assert cs.stats.captures == 2

    def test_unhashable_signature_falls_back_to_eager(self):
        cs = CompiledStep(lambda x: ops.exp(x), signature_fn=lambda a, k: [1])
        cs(Tensor(np.ones(2)))
        assert cs.stats.eager_calls == 1
        assert cs.stats.captures == 0

    def test_plan_for_lookup(self):
        cs = CompiledStep(lambda x: ops.exp(x))
        x = Tensor(np.ones((2, 4)))
        assert cs.plan_for(x) is None
        cs(x)
        assert cs.plan_for(x) is not None


class TestGuardRecapture:
    def test_control_flow_change_recaptures(self):
        w = Tensor(np.ones((4, 4)), requires_grad=True)
        mode = {"extra": False}

        def step(x):
            h = ops.matmul(x, w)
            if mode["extra"]:
                h = ops.exp(h)
            return h.sum()

        cs = CompiledStep(step)
        x = Tensor(np.ones((2, 4)))
        cs(x)  # capture
        mode["extra"] = True
        cs(x)  # guard failure: extra kernel not in plan
        assert cs.stats.guard_failures == 1
        assert len(cs.plans) == 0  # stale plan dropped
        cs(x)  # recapture with the new control flow
        cs(x)
        assert cs.stats.captures == 2
        assert cs.stats.replays == 1

    def test_nested_compiled_step_runs_eagerly(self):
        inner = CompiledStep(lambda x: ops.exp(x))

        def outer_fn(x):
            return inner(x)

        outer = CompiledStep(outer_fn)
        x = Tensor(np.ones((2, 2)))
        outer(x)  # inner sees capture in progress -> eager passthrough
        outer(x)  # inner sees replay in progress -> eager passthrough
        assert inner.stats.eager_calls == 2
        assert inner.stats.captures == 0
        assert outer.stats.captures == 1
        assert outer.stats.replays == 1


class TestDefaultSignature:
    def test_tensor_and_scalar_components(self):
        sig = default_signature((Tensor(np.ones((3, 7))), 5), {"flag": True})
        assert ("tensor", 2, 7) in sig
        assert ("scalar", 5) in sig

    def test_vector_tensor_uses_unit_width(self):
        sig = default_signature((Tensor(np.ones(9)),), {})
        assert sig == (("tensor", 1, 1),)

    def test_opaque_objects_keyed_by_type(self):
        class Thing:
            pass

        sig = default_signature((Thing(),), {})
        assert sig == (("opaque", "Thing"),)


class TestTrainerIntegration:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_compiled_training_matches_eager_losses(self, framework):
        from repro.datasets import load_dataset
        from repro.train import GraphClassificationTrainer

        ds = load_dataset("enzymes", num_graphs=120)
        eager = GraphClassificationTrainer(framework, "gcn", ds, batch_size=64)
        r_eager = eager.measure_epoch(n_epochs=2, seed=0)
        compiled = GraphClassificationTrainer(
            framework, "gcn", ds, batch_size=64, compile=True
        )
        r_comp = compiled.measure_epoch(n_epochs=2, seed=0)

        eager_losses = [e.train_loss for e in r_eager.epochs]
        comp_losses = [e.train_loss for e in r_comp.epochs]
        np.testing.assert_allclose(comp_losses, eager_losses, rtol=1e-6)
        step = compiled.compiled_step
        assert step is not None
        assert step.stats.replays > 0
        assert step.stats.guard_failures == 0
        # compiled epochs must be faster on the simulated clock
        assert r_comp.mean_epoch_time < r_eager.mean_epoch_time

    def test_gcn_enzymes_batch128_launch_reduction_at_least_40pct(self):
        """Acceptance criterion: >= 40% fewer launches per training step."""
        from repro.datasets import load_dataset
        from repro.train import GraphClassificationTrainer

        ds = load_dataset("enzymes", num_graphs=240)
        trainer = GraphClassificationTrainer(
            "pygx", "gcn", ds, batch_size=128, compile=True
        )
        trainer.measure_epoch(n_epochs=1, seed=0)
        plans = trainer.compiled_step.plans
        assert plans
        for plan in plans.values():
            assert plan.launch_reduction >= 0.40, repr(plan)


class TestServingIntegration:
    def test_inference_model_compiled_forward_matches_eager(self):
        from repro.bench import trained_inference_model

        inference = trained_inference_model("pygx", "gcn", "enzymes", num_graphs=60)
        from repro.datasets import load_dataset

        graphs = load_dataset("enzymes", num_graphs=60).graphs[:8]
        eager_pred = inference.predict(graphs)
        inference.enable_compile()
        compiled_first = inference.predict(graphs)   # capture
        compiled_second = inference.predict(graphs)  # replay
        np.testing.assert_array_equal(eager_pred, compiled_first)
        np.testing.assert_array_equal(eager_pred, compiled_second)
        assert inference.compiled.stats.captures >= 1
        assert inference.compiled.stats.replays >= 1
        inference.disable_compile()
        assert inference.compiled is None

    def test_compiled_serving_is_faster_per_batch(self):
        from repro.bench import trained_inference_model
        from repro.datasets import load_dataset

        inference = trained_inference_model("dglx", "gcn", "enzymes", num_graphs=60)
        graphs = load_dataset("enzymes", num_graphs=60).graphs[:8]
        device = current_device()

        inference.predict(graphs)  # warm caches
        before = device.clock.elapsed
        inference.predict(graphs)
        eager_time = device.clock.elapsed - before

        inference.enable_compile()
        inference.predict(graphs)  # capture
        before = device.clock.elapsed
        inference.predict(graphs)  # replay
        compiled_time = device.clock.elapsed - before
        assert compiled_time < eager_time
