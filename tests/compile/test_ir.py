"""IR data model: nodes, aliases, producers/consumers, outputs."""

import numpy as np
import pytest

from repro.compile import GraphIR, IRNode, PassStats, Tracer, capture, content_hash
from repro.device import current_device
from repro.tensor import Tensor, ops


def _node(index, name, out_id=None, parent_ids=(), **kwargs):
    defaults = dict(scope=(), flops=0.0, bytes_moved=0.0)
    defaults.update(kwargs)
    node = IRNode(index=index, name=name, **defaults)
    node.out_id = out_id
    node.parent_ids = tuple(parent_ids)
    if out_id is not None and node.out_shape is None:
        node.out_shape = (1,)
        node.out_size = 1
    return node


class TestIRNode:
    def test_opaque_node_has_no_dataflow(self):
        assert not _node(0, "adam_update").has_dataflow

    def test_annotated_node_has_dataflow(self):
        assert _node(0, "add", out_id=11).has_dataflow


class TestGraphIR:
    def test_producer_and_consumers(self):
        a = _node(0, "matmul", out_id=1)
        b = _node(1, "relu", out_id=2, parent_ids=(1,))
        ir = GraphIR([a, b], output_ids={2})
        assert ir.producer(1) is a
        consumers = ir.consumers()
        assert consumers[0] == [b]
        assert 1 not in consumers

    def test_alias_resolution_reaches_producer(self):
        a = _node(0, "matmul", out_id=1)
        b = _node(1, "relu", out_id=3, parent_ids=(2,))  # consumes a view
        ir = GraphIR([a, b], output_ids={3}, aliases={2: 1})
        assert ir.resolve(2) == 1
        assert ir.producer(2) is a
        assert ir.consumers()[0] == [b]

    def test_alias_cycle_terminates(self):
        ir = GraphIR([], output_ids=set(), aliases={1: 2, 2: 1})
        assert ir.resolve(1) in (1, 2)

    def test_is_output_through_alias(self):
        a = _node(0, "matmul", out_id=1)
        ir = GraphIR([a], output_ids={5}, aliases={5: 1})
        assert ir.is_output(a)

    def test_len_and_launch_count(self):
        ir = GraphIR([_node(0, "x"), _node(1, "y")], output_ids=set())
        assert len(ir) == 2
        assert ir.launch_count == 2


class TestTracer:
    def test_on_launch_records_stream_order(self):
        tracer = Tracer()
        tracer.on_launch("matmul", 10.0, 20.0, ("net",))
        tracer.on_launch("relu", 1.0, 2.0, ())
        assert [n.name for n in tracer.nodes] == ["matmul", "relu"]
        assert tracer.nodes[0].scope == ("net",)
        assert tracer.nodes[1].index == 1

    def test_annotate_before_launch_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().annotate_op(Tensor(np.ones(2)), [])

    def test_capture_annotates_dataflow(self):
        x = Tensor(np.ones((3, 4)))
        w = Tensor(np.ones((4, 2)), requires_grad=True)
        result, ir = capture(lambda: ops.relu(ops.matmul(x, w)))
        assert [n.name for n in ir.nodes] == ["matmul", "relu"]
        matmul, relu = ir.nodes
        assert matmul.has_dataflow and relu.has_dataflow
        assert matmul.out_id in relu.parent_ids
        assert relu.requires_grad  # w requires grad
        assert ir.is_output(relu)
        assert not ir.is_output(matmul)

    def test_capture_sees_reshape_alias(self):
        x = Tensor(np.ones((2, 6)))
        result, ir = capture(lambda: ops.exp(x.reshape(3, 4)))
        # reshape launches nothing but the exp's parent must resolve to x.
        assert [n.name for n in ir.nodes] == ["exp"]
        assert ir.resolve(ir.nodes[0].parent_ids[0]) == id(x)

    def test_capture_sees_detach_alias(self):
        x = Tensor(np.ones(4), requires_grad=True)
        result, ir = capture(lambda: ops.exp(x.detach()))
        assert ir.resolve(ir.nodes[0].parent_ids[0]) == id(x)

    def test_content_hash_distinguishes_values_and_caps_size(self):
        a = np.arange(8, dtype=np.float32)
        b = np.arange(8, dtype=np.float32) + 1
        assert content_hash(a) != content_hash(b)
        assert content_hash(a) == content_hash(a.copy())
        huge = np.lib.stride_tricks.as_strided(
            np.zeros(1, dtype=np.float32), shape=(9 * 1024 * 1024,), strides=(0,)
        )
        assert content_hash(huge) is None

    def test_device_not_tracing_outside_context(self):
        x = Tensor(np.ones(3))
        capture(lambda: ops.exp(x))
        assert current_device().tracer is None


class TestPassStats:
    def test_launches_removed_counts_all_sources(self):
        stats = PassStats(dce_removed=2, cse_removed=3, folded=1, fused_groups=2, fused_members=5)
        assert stats.launches_removed == 11
        assert "dce=2" in stats.summary()
