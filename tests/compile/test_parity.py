"""Numerical parity: compiled replay must be bit-identical to eager.

Replay re-executes the same numpy program — only the performance
accounting changes — so forward outputs, loss values and every parameter
gradient must match *exactly* across GCN/GIN/GraphSAGE on both framework
packs, over multiple seeds (property-style: same property, sampled
configurations).
"""

import numpy as np
import pytest

from repro.compile import CompiledStep
from repro.datasets import load_dataset
from repro.models import graph_config
from repro.nn import cross_entropy

MODELS = ("gcn", "gin", "sage")
FRAMEWORKS = ("pygx", "dglx")


def _build_step(framework, model_name, seed):
    dataset = load_dataset("enzymes", num_graphs=60)
    config = graph_config(
        model_name, in_dim=dataset.num_features, n_classes=dataset.num_classes
    )
    rng = np.random.default_rng(seed)
    if framework == "pygx":
        from repro.pygx import Batch, Data, build_model

        net = build_model(config, rng)
        inputs = Batch.from_data_list(
            [Data.from_sample(g) for g in dataset.graphs[:32]]
        )
        labels = inputs.y
    else:
        from repro.dglx import batch as dgl_batch
        from repro.dglx import build_model

        net = build_model(config, rng)
        samples = dataset.graphs[:32]
        inputs = dgl_batch(samples)
        labels = np.array([g.y for g in samples])
    return net, inputs, labels


@pytest.mark.parametrize("framework", FRAMEWORKS)
@pytest.mark.parametrize("model_name", MODELS)
def test_forward_and_gradient_parity(framework, model_name):
    net, inputs, labels = _build_step(framework, model_name, seed=7)

    def run_eager():
        for p in net.parameters():
            p.zero_grad()
        loss = cross_entropy(net(inputs), labels)
        loss.backward()
        return loss.item(), [np.array(p.grad) for p in net.parameters()]

    def step(batch):
        loss = cross_entropy(net(batch), labels)
        loss.backward()
        return loss

    # Reference eager run.
    eager_loss, eager_grads = run_eager()

    # Capture run, then replay run: both must reproduce the eager numbers.
    compiled = CompiledStep(step)
    for expected_stat in ("captures", "replays"):
        for p in net.parameters():
            p.zero_grad()
        loss = compiled(inputs)
        assert loss.item() == eager_loss
        for grad, ref in zip([p.grad for p in net.parameters()], eager_grads):
            np.testing.assert_allclose(grad, ref, rtol=1e-6, atol=0.0)
        assert getattr(compiled.stats, expected_stat) == 1
    assert compiled.stats.guard_failures == 0


@pytest.mark.parametrize("framework", FRAMEWORKS)
def test_logits_parity_across_seeds(framework):
    """Forward-only property over random parameter draws."""
    for seed in (0, 11, 23):
        net, inputs, _ = _build_step(framework, "gcn", seed=seed)
        eager = net(inputs)
        compiled = CompiledStep(net)
        captured = compiled(inputs)
        replayed = compiled(inputs)
        np.testing.assert_array_equal(eager.data, captured.data)
        np.testing.assert_array_equal(eager.data, replayed.data)
        assert not compiled.last_session.failed
