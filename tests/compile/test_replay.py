"""ExecutionPlan lowering and ReplaySession accounting on the device."""

import numpy as np
import pytest

from repro.compile import (
    ACTION_EAGER,
    ACTION_FUSE_HEAD,
    ACTION_FUSE_MEMBER,
    ACTION_SKIP,
    ReplaySession,
    build_plan,
    capture,
    run_passes,
)
from repro.device import Device, current_device, use_device
from repro.tensor import Tensor, ops


def _plan_for(fn, passes=("dce", "cse", "fold", "fuse")):
    _, ir = capture(fn)
    decisions, stats = run_passes(ir, passes=passes)
    return build_plan(ir, decisions, stats), ir


class TestBuildPlan:
    def test_launch_counts_and_reduction(self):
        x = Tensor(np.ones((4, 8)))
        w = Tensor(np.ones((8, 8)), requires_grad=True)
        plan, ir = _plan_for(lambda: ops.relu(ops.matmul(x, w)))
        assert plan.eager_launches == 2
        assert plan.compiled_launches == 1  # matmul+relu fused
        assert plan.launch_reduction == pytest.approx(0.5)

    def test_group_named_after_members_and_closed_once(self):
        x = Tensor(np.ones((4, 8)))
        plan, _ = _plan_for(lambda: ops.relu(ops.exp(ops.matmul(x, x.T))))
        closing = [n for n in plan.nodes if n.closes_group]
        assert len(closing) == 1
        assert closing[-1].group_name.startswith("fused[")
        assert "matmul" in closing[-1].group_name

    def test_decision_count_mismatch_rejected(self):
        x = Tensor(np.ones(3))
        _, ir = capture(lambda: ops.exp(x))
        with pytest.raises(ValueError):
            build_plan(ir, [], run_passes(ir)[1])


class TestReplayAccounting:
    def test_skip_charges_nothing(self):
        x = Tensor(np.ones(16))

        def step():
            dead = ops.exp(x)  # unobserved
            return ops.log(x)

        plan, _ = _plan_for(step, passes=("dce",))
        device = Device()
        with use_device(device):
            session = ReplaySession(plan)
            before = device.clock.elapsed
            with device.replaying(session):
                step()
            assert not session.failed
            assert session.launches_skipped == 1
            assert session.launches_issued == 1
        eager = Device()
        with use_device(eager):
            step()
        assert device.clock.elapsed < eager.clock.elapsed

    def test_fused_group_pays_one_launch_overhead(self):
        x = Tensor(np.ones(16))

        def step():
            return ops.relu(ops.exp(ops.log(x)))

        plan, _ = _plan_for(step, passes=("fuse",))
        assert plan.compiled_launches == 1
        compiled_dev = Device()
        with use_device(compiled_dev):
            with compiled_dev.replaying(ReplaySession(plan)):
                step()
        eager_dev = Device()
        with use_device(eager_dev):
            step()
        overhead = compiled_dev.spec.launch_overhead
        host = lambda d: d.clock.elapsed - d.clock.gpu_busy
        assert host(eager_dev) - host(compiled_dev) == pytest.approx(2 * overhead)

    def test_fused_group_emits_single_profiler_record(self):
        x = Tensor(np.ones(16))

        def step():
            return ops.relu(ops.exp(ops.log(x)))

        plan, _ = _plan_for(step, passes=("fuse",))
        device = Device()
        device.profiler.enabled = True
        with use_device(device):
            with device.replaying(ReplaySession(plan)):
                step()
        assert len(device.profiler.records) == 1
        record = device.profiler.records[0]
        assert record.name.startswith("fused[")
        assert record.duration > 0

    def test_replay_numerics_identical_to_eager(self):
        x = Tensor(np.linspace(0.1, 2.0, 32, dtype=np.float32))

        def step():
            return ops.relu(ops.exp(ops.log(x)))

        eager_out = step()
        plan, _ = _plan_for(step)
        device = current_device()
        with device.replaying(ReplaySession(plan)):
            replay_out = step()
        np.testing.assert_array_equal(eager_out.data, replay_out.data)


class TestGuards:
    def test_name_mismatch_fails_open_to_eager(self):
        x = Tensor(np.ones(8))
        plan, _ = _plan_for(lambda: ops.exp(x))
        device = Device()
        with use_device(device):
            session = ReplaySession(plan)
            with device.replaying(session):
                ops.log(x)  # diverges immediately
            assert session.failed
            assert session.failure.expected == "exp"
            assert session.failure.got == "log"
            # the divergent kernel was still charged (eagerly)
            assert device.clock.elapsed > 0

    def test_longer_stream_than_plan_fails(self):
        x = Tensor(np.ones(8))
        plan, _ = _plan_for(lambda: ops.exp(x))
        device = Device()
        with use_device(device):
            session = ReplaySession(plan)
            with device.replaying(session):
                ops.exp(x)
                ops.exp(x)  # one more than captured
            assert session.failed
            assert session.failure.got == "exp"

    def test_truncated_stream_fails_on_finish(self):
        x = Tensor(np.ones(8))
        plan, _ = _plan_for(lambda: (ops.exp(x), ops.log(x)))
        device = Device()
        with use_device(device):
            session = ReplaySession(plan)
            with device.replaying(session):
                ops.exp(x)  # stop early
            assert session.failed
            assert session.failure.got is None

    def test_open_group_emitted_on_failure(self):
        x = Tensor(np.ones(8))

        def step():
            return ops.relu(ops.exp(ops.log(x)))

        plan, _ = _plan_for(step, passes=("fuse",))
        device = Device()
        device.profiler.enabled = True
        with use_device(device):
            session = ReplaySession(plan)
            with device.replaying(session):
                ops.log(x)
                ops.exp(x)
                ops.sqrt(x)  # diverges inside the fused group
            assert session.failed
        fused = [r for r in device.profiler.records if r.name.startswith("fused")]
        assert len(fused) == 1  # partial group still accounted


class TestDeviceContexts:
    def test_no_nested_capture_or_replay(self):
        from repro.compile import Tracer

        device = Device()
        with device.capturing(Tracer()):
            with pytest.raises(RuntimeError):
                device.capturing(Tracer()).__enter__()
            with pytest.raises(RuntimeError):
                device.replaying(None).__enter__()

    def test_tracer_cleared_after_capture(self):
        from repro.compile import Tracer

        device = Device()
        with device.capturing(Tracer()):
            assert device.tracer is not None
        assert device.tracer is None
        assert not device.capturing_or_replaying
