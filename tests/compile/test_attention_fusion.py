"""The attention fusion pass: SDDMM -> edge softmax -> SpMM pipelines.

docs/kernels.md's fusion-eligibility contract on real model streams: the
pass finds every attention pipeline in a GAT step on both framework
packs (the pygx pack via its fused GATConv lowering), cuts per-step
launches >= 40%, and replay stays bitwise-identical to eager — while
models without attention kernels compile exactly as before.
"""

import numpy as np
import pytest

from repro.compile import CompiledStep
from repro.compile.ir import GraphIR, IRNode, PassStats
from repro.compile.passes import (
    ACTION_FUSE_HEAD,
    ACTION_FUSE_MEMBER,
    NodeDecision,
    fuse_attention,
    fuse_elementwise,
    run_passes,
)
from repro.datasets import load_dataset
from repro.models import graph_config
from repro.nn import cross_entropy


def _build_step(framework, model_name, seed=7, fused_attention=False):
    dataset = load_dataset("enzymes", num_graphs=60)
    config = graph_config(
        model_name, in_dim=dataset.num_features, n_classes=dataset.num_classes
    )
    rng = np.random.default_rng(seed)
    if framework == "pygx":
        from repro.pygx import Batch, Data, build_model
        from repro.pygx.models.gat import GATConv

        net = build_model(config, rng)
        if fused_attention:
            for module in net.modules():
                if isinstance(module, GATConv):
                    module.fused = True
        inputs = Batch.from_data_list(
            [Data.from_sample(g) for g in dataset.graphs[:32]]
        )
        labels = inputs.y
    else:
        from repro.dglx import batch as dgl_batch
        from repro.dglx import build_model

        net = build_model(config, rng)
        samples = dataset.graphs[:32]
        inputs = dgl_batch(samples)
        labels = np.array([g.y for g in samples])
    return net, inputs, labels


def _compile(net, inputs, labels):
    def step(batch):
        loss = cross_entropy(net(batch), labels)
        loss.backward()
        return loss

    compiled = CompiledStep(step)
    compiled(inputs)  # capture
    return compiled, next(iter(compiled.plans.values()))


class TestGATPipelines:
    @pytest.mark.parametrize("framework", ("pygx", "dglx"))
    def test_launch_reduction_and_bitwise_parity(self, framework):
        net, inputs, labels = _build_step(
            framework, "gat", fused_attention=True
        )

        for p in net.parameters():
            p.zero_grad()
        eager_loss = cross_entropy(net(inputs), labels)
        eager_loss.backward()
        eager = eager_loss.item()
        eager_grads = [np.array(p.grad) for p in net.parameters()]

        def step(batch):
            loss = cross_entropy(net(batch), labels)
            loss.backward()
            return loss

        compiled = CompiledStep(step)
        for expected_stat in ("captures", "replays"):
            for p in net.parameters():
                p.zero_grad()
            loss = compiled(inputs)
            assert loss.item() == eager
            for grad, ref in zip(
                [p.grad for p in net.parameters()], eager_grads
            ):
                np.testing.assert_array_equal(grad, ref)
            assert getattr(compiled.stats, expected_stat) == 1
        assert compiled.stats.guard_failures == 0

        plan = next(iter(compiled.plans.values()))
        # One pipeline per GAT layer, all closed by the pass.
        assert plan.stats.attention_groups == 4
        # Acceptance bar: the fused attention path sheds >= 40% of the
        # eager stream's launches.
        assert plan.launch_reduction >= 0.40

    def test_unfused_pygx_stream_has_no_pipelines(self):
        # The default pygx GATConv composes scatter softmax: no gsddmm
        # heads, so the attention pass must find nothing.
        net, inputs, labels = _build_step("pygx", "gat")
        _, plan = _compile(net, inputs, labels)
        assert plan.stats.attention_groups == 0

    @pytest.mark.parametrize("model_name", ("gcn", "gin"))
    def test_models_without_attention_are_untouched(self, model_name):
        net, inputs, labels = _build_step("dglx", model_name)
        _, plan = _compile(net, inputs, labels)
        assert plan.stats.attention_groups == 0


def _node(index, name, out_id=None, parents=(), out_size=4):
    node = IRNode(index=index, name=name, scope=(), flops=10.0, bytes_moved=64.0)
    node.out_id = out_id
    node.parent_ids = tuple(parents)
    node.requires_grad = False
    if out_id is not None:
        node.out_shape = (out_size,)
        node.out_size = out_size
    return node


def _attention_stream():
    return GraphIR(
        [
            _node(0, "gsddmm_add", out_id=1),
            _node(1, "leaky_relu", out_id=2, parents=(1,)),
            _node(2, "edge_softmax_norm", out_id=3, parents=(2,)),
            _node(3, "edge_softmax", out_id=4, parents=(3,)),
            _node(4, "gspmm", out_id=5, parents=(4,)),
        ],
        output_ids={5},
    )


class TestPassMechanics:
    def test_pattern_is_fused_with_format_suffixes(self):
        ir = GraphIR(
            [
                _node(0, "gsddmm_dot@coo", out_id=1),
                _node(1, "edge_softmax@coo", out_id=2, parents=(1,)),
                _node(2, "gspmm@coo", out_id=3, parents=(2,)),
            ],
            output_ids={3},
        )
        decisions = [NodeDecision() for _ in ir.nodes]
        stats = PassStats()
        fuse_attention(ir, decisions, stats)
        assert stats.attention_groups == 1
        assert decisions[0].action == ACTION_FUSE_HEAD
        assert [d.action for d in decisions[1:]] == [ACTION_FUSE_MEMBER] * 2

    def test_chain_without_softmax_is_not_fused(self):
        ir = GraphIR(
            [
                _node(0, "gsddmm_dot", out_id=1),
                _node(1, "gspmm", out_id=2, parents=(1,)),
            ],
            output_ids={2},
        )
        decisions = [NodeDecision() for _ in ir.nodes]
        fuse_attention(ir, decisions, PassStats())
        assert all(d.group is None for d in decisions)

    def test_backward_kernels_never_join(self):
        ir = GraphIR(
            [
                _node(0, "gsddmm_add_backward", out_id=1),
                _node(1, "edge_softmax", out_id=2, parents=(1,)),
                _node(2, "gspmm", out_id=3, parents=(2,)),
            ],
            output_ids={3},
        )
        decisions = [NodeDecision() for _ in ir.nodes]
        stats = PassStats()
        fuse_attention(ir, decisions, stats)
        assert stats.attention_groups == 0

    def test_elementwise_pass_respects_attention_groups(self):
        # attention then fuse: the elementwise pass must neither extend
        # nor renumber the attention group.
        ir = _attention_stream()
        decisions, stats = run_passes(ir, passes=("attention", "fuse"))
        assert stats.attention_groups == 1
        attention_group = decisions[0].group
        assert attention_group is not None
        assert all(d.group == attention_group for d in decisions)

    def test_elementwise_chain_after_pipeline_gets_fresh_group(self):
        ir = GraphIR(
            _attention_stream().nodes
            + [
                _node(5, "matmul", out_id=6, parents=(5,)),
                _node(6, "relu", out_id=7, parents=(6,)),
            ],
            output_ids={7},
        )
        decisions, stats = run_passes(ir, passes=("attention", "fuse"))
        assert stats.attention_groups == 1
        assert stats.fused_groups == 2
        assert decisions[5].group is not None
        assert decisions[5].group != decisions[0].group
