"""Optimization passes over synthetic and captured IRs."""

import numpy as np
import pytest

from repro.compile import (
    ACTION_EAGER,
    ACTION_FUSE_HEAD,
    ACTION_FUSE_MEMBER,
    ACTION_SKIP,
    FusionConfig,
    GraphIR,
    IRNode,
    PassStats,
    capture,
    run_passes,
)
from repro.compile.passes import (
    common_subexpression_elimination,
    constant_folding,
    dead_code_elimination,
    fuse_elementwise,
    NodeDecision,
)
from repro.tensor import Tensor, ops


def _node(index, name, out_id=None, parent_ids=(), requires_grad=False,
          out_hash=None, out_size=1, bytes_moved=0.0):
    node = IRNode(index=index, name=name, scope=(), flops=0.0, bytes_moved=bytes_moved)
    node.out_id = out_id
    node.parent_ids = tuple(parent_ids)
    node.requires_grad = requires_grad
    node.out_hash = out_hash
    if out_id is not None:
        node.out_shape = (out_size,)
        node.out_size = out_size
    return node


def _fresh(ir):
    return [NodeDecision() for _ in ir.nodes], PassStats()


class TestDCE:
    def test_unobserved_chain_removed_transitively(self):
        # a -> b -> c, nothing consumes c and it is not an output.
        nodes = [
            _node(0, "exp", out_id=1),
            _node(1, "exp", out_id=2, parent_ids=(1,)),
            _node(2, "exp", out_id=3, parent_ids=(2,)),
        ]
        ir = GraphIR(nodes, output_ids=set())
        decisions, stats = _fresh(ir)
        dead_code_elimination(ir, decisions, stats)
        assert [d.action for d in decisions] == [ACTION_SKIP] * 3
        assert stats.dce_removed == 3

    def test_output_and_feeders_stay_live(self):
        nodes = [
            _node(0, "exp", out_id=1),
            _node(1, "exp", out_id=2, parent_ids=(1,)),
        ]
        ir = GraphIR(nodes, output_ids={2})
        decisions, stats = _fresh(ir)
        dead_code_elimination(ir, decisions, stats)
        assert [d.action for d in decisions] == [ACTION_EAGER, ACTION_EAGER]

    def test_autograd_and_opaque_nodes_never_removed(self):
        nodes = [
            _node(0, "matmul", out_id=1, requires_grad=True),
            _node(1, "adam_update"),  # opaque
        ]
        ir = GraphIR(nodes, output_ids=set())
        decisions, stats = _fresh(ir)
        dead_code_elimination(ir, decisions, stats)
        assert [d.action for d in decisions] == [ACTION_EAGER, ACTION_EAGER]
        assert stats.dce_removed == 0

    def test_dead_consumer_does_not_keep_producer(self):
        # b consumes a, but b itself is dead -> both go.
        nodes = [
            _node(0, "exp", out_id=1),
            _node(1, "log", out_id=2, parent_ids=(1,)),
        ]
        ir = GraphIR(nodes, output_ids=set())
        decisions, stats = _fresh(ir)
        dead_code_elimination(ir, decisions, stats)
        assert stats.dce_removed == 2


class TestCSE:
    def test_bitwise_identical_recompute_skipped(self):
        nodes = [
            _node(0, "gather", out_id=1, out_hash="h1"),
            _node(1, "gather", out_id=2, out_hash="h1"),
            _node(2, "gather", out_id=3, out_hash="h2"),  # different value
        ]
        ir = GraphIR(nodes, output_ids=set())
        decisions, stats = _fresh(ir)
        common_subexpression_elimination(ir, decisions, stats)
        assert [d.action for d in decisions] == [ACTION_EAGER, ACTION_SKIP, ACTION_EAGER]
        assert stats.cse_removed == 1

    def test_grad_unhashed_dropout_and_output_ineligible(self):
        nodes = [
            _node(0, "mul", out_id=1, out_hash="h", requires_grad=True),
            _node(1, "mul", out_id=2, out_hash="h", requires_grad=True),
            _node(2, "dropout", out_id=3, out_hash="d"),
            _node(3, "dropout", out_id=4, out_hash="d"),
            _node(4, "gather", out_id=5, out_hash=None),
            _node(5, "gather", out_id=6, out_hash=None),
        ]
        ir = GraphIR(nodes, output_ids=set())
        decisions, stats = _fresh(ir)
        common_subexpression_elimination(ir, decisions, stats)
        assert all(d.action == ACTION_EAGER for d in decisions)
        assert stats.cse_removed == 0

    def test_gcn_norm_chain_cse_on_real_capture(self):
        """Two identical degree-normalisation chains collapse to one."""
        deg = Tensor(np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32))

        def step():
            norms = []
            for _ in range(2):  # two layers recompute the same chain
                norms.append(ops.pow_scalar(ops.clamp_min(deg, 1.0), -0.5))
            return ops.add(norms[0], norms[1])

        _, ir = capture(step)
        decisions, stats = run_passes(ir, passes=("cse",))
        assert stats.cse_removed == 2  # second clamp_min + second pow


class TestConstantFolding:
    def test_scalar_chain_over_constants_folds(self):
        # const -> neg -> exp, all size-1, no grad.
        nodes = [
            _node(0, "neg", out_id=2, parent_ids=(1,)),
            _node(1, "exp", out_id=3, parent_ids=(2,)),
            _node(2, "add", out_id=4, parent_ids=(3, 5)),  # 5 unknown: not folded
        ]
        ir = GraphIR(nodes, output_ids={4}, constant_ids={1})
        decisions, stats = _fresh(ir)
        constant_folding(ir, decisions, stats)
        assert [d.action for d in decisions] == [ACTION_SKIP, ACTION_SKIP, ACTION_EAGER]
        assert stats.folded == 2

    def test_large_outputs_not_folded(self):
        nodes = [_node(0, "neg", out_id=2, parent_ids=(1,), out_size=64)]
        ir = GraphIR(nodes, output_ids=set(), constant_ids={1})
        decisions, stats = _fresh(ir)
        constant_folding(ir, decisions, stats)
        assert decisions[0].action == ACTION_EAGER

    def test_scalar_literal_math_folds_on_real_capture(self):
        x = Tensor(np.ones(1))
        _, ir = capture(lambda: x * 2.0 * 3.0)
        decisions, stats = run_passes(ir, passes=("fold",))
        # x is not constant, so nothing folds without registration...
        assert stats.folded == 0
        _, ir = capture(lambda: x * 2.0 * 3.0, constants=(x,))
        decisions, stats = run_passes(ir, passes=("fold",))
        # ...with it registered the first mul folds; the second produces
        # the step output, which stays observable.
        assert stats.folded == 1


class TestFusion:
    def test_head_plus_elementwise_chain(self):
        nodes = [
            _node(0, "matmul", out_id=1, bytes_moved=100.0),
            _node(1, "add", out_id=2, parent_ids=(1,), bytes_moved=100.0),
            _node(2, "relu", out_id=3, parent_ids=(2,), bytes_moved=100.0),
            _node(3, "matmul", out_id=4, parent_ids=(3,), bytes_moved=100.0),
        ]
        ir = GraphIR(nodes, output_ids={4})
        decisions, stats = _fresh(ir)
        fuse_elementwise(ir, decisions, stats)
        assert [d.action for d in decisions] == [
            ACTION_FUSE_HEAD, ACTION_FUSE_MEMBER, ACTION_FUSE_MEMBER, ACTION_EAGER,
        ]
        assert stats.fused_groups == 1
        assert stats.fused_members == 2

    def test_interior_edges_discount_bytes(self):
        # add consumes matmul's out (4-byte floats, size 10): the matmul
        # saves its write, the add saves its read.
        nodes = [
            _node(0, "matmul", out_id=1, out_size=10, bytes_moved=120.0),
            _node(1, "add", out_id=2, parent_ids=(1,), out_size=10, bytes_moved=80.0),
        ]
        ir = GraphIR(nodes, output_ids={2})
        decisions, stats = _fresh(ir)
        fuse_elementwise(ir, decisions, stats)
        assert decisions[0].byte_scale == pytest.approx((120 - 40) / 120)
        assert decisions[1].byte_scale == pytest.approx((80 - 40) / 80)

    def test_opaque_members_keep_bytes_but_join(self):
        nodes = [
            _node(0, "sum_backward", bytes_moved=100.0),
            _node(1, "relu_backward", bytes_moved=100.0),
        ]
        ir = GraphIR(nodes, output_ids=set())
        decisions, stats = _fresh(ir)
        fuse_elementwise(ir, decisions, stats)
        assert decisions[0].action == ACTION_FUSE_HEAD
        assert decisions[1].action == ACTION_FUSE_MEMBER
        assert decisions[1].byte_scale == 1.0

    def test_skipped_nodes_are_transparent(self):
        nodes = [
            _node(0, "matmul", out_id=1),
            _node(1, "gather", out_id=2),  # will be marked skip
            _node(2, "relu", out_id=3, parent_ids=(1,)),
        ]
        ir = GraphIR(nodes, output_ids={3})
        decisions, stats = _fresh(ir)
        decisions[1].action = ACTION_SKIP
        fuse_elementwise(ir, decisions, stats)
        assert decisions[0].action == ACTION_FUSE_HEAD
        assert decisions[2].action == ACTION_FUSE_MEMBER

    def test_max_group_splits_chains(self):
        nodes = [_node(i, "relu", out_id=i + 1, parent_ids=(i,) if i else ())
                 for i in range(7)]
        ir = GraphIR(nodes, output_ids={7})
        decisions, stats = _fresh(ir)
        fuse_elementwise(ir, decisions, stats, FusionConfig(max_group=3))
        heads = [d.action for d in decisions].count(ACTION_FUSE_HEAD)
        assert heads == 2  # 3 + 3 + 1 -> the trailing singleton stays eager
        assert decisions[6].action == ACTION_EAGER
        assert stats.fused_groups == 2

    def test_barrier_kernel_breaks_chains(self):
        nodes = [
            _node(0, "matmul", out_id=1),
            _node(1, "all_reduce"),
            _node(2, "relu", out_id=2, parent_ids=(1,)),
        ]
        ir = GraphIR(nodes, output_ids={2})
        decisions, stats = _fresh(ir)
        fuse_elementwise(ir, decisions, stats)
        assert all(d.action == ACTION_EAGER for d in decisions)

    def test_max_group_validation(self):
        with pytest.raises(ValueError):
            FusionConfig(max_group=1)


class TestRunPasses:
    def test_unknown_pass_rejected(self):
        ir = GraphIR([], output_ids=set())
        with pytest.raises(ValueError, match="unknown pass"):
            run_passes(ir, passes=("dce", "loop_unroll"))

    def test_pass_order_respected_dce_enables_fusion(self):
        # dead gather between matmul and relu: with dce first, fusion sees
        # an adjacent pair.
        nodes = [
            _node(0, "matmul", out_id=1),
            _node(1, "gather", out_id=2),  # dead
            _node(2, "relu", out_id=3, parent_ids=(1,)),
        ]
        ir = GraphIR(nodes, output_ids={3})
        decisions, stats = run_passes(ir)
        assert decisions[1].action == ACTION_SKIP
        assert decisions[0].action == ACTION_FUSE_HEAD
        assert decisions[2].action == ACTION_FUSE_MEMBER
