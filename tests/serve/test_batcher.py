"""Dynamic batcher budgets and FIFO behaviour."""

import numpy as np
import pytest

from repro.graph import GraphSample
from repro.serve import AdmissionController, DynamicBatcher, InferenceRequest, RequestQueue


def make_request(request_id, nodes=4, arrival=0.0, deadline=None):
    edge_index = np.array([[i for i in range(nodes - 1)], [i + 1 for i in range(nodes - 1)]])
    sample = GraphSample(edge_index, np.ones((nodes, 3), dtype=np.float32), y=0)
    return InferenceRequest(request_id, sample, arrival, deadline)


def filled_queue(requests, capacity=64):
    queue = RequestQueue(capacity)
    controller = AdmissionController(queue)
    for request in requests:
        controller.admit(request, now=request.arrival_time)
    return queue, controller


class TestDynamicBatcher:
    def test_takes_whole_queue_under_budget(self):
        queue, controller = filled_queue([make_request(i) for i in range(5)])
        batch, expired = DynamicBatcher(max_batch_size=8).next_batch(queue, controller, 0.0)
        assert [r.request_id for r in batch] == [0, 1, 2, 3, 4]
        assert expired == []
        assert len(queue) == 0

    def test_max_batch_size_respected_fifo(self):
        queue, controller = filled_queue([make_request(i) for i in range(5)])
        batcher = DynamicBatcher(max_batch_size=2)
        batch, _ = batcher.next_batch(queue, controller, 0.0)
        assert [r.request_id for r in batch] == [0, 1]
        batch, _ = batcher.next_batch(queue, controller, 0.0)
        assert [r.request_id for r in batch] == [2, 3]

    def test_node_budget_bounds_batch(self):
        queue, controller = filled_queue([make_request(i, nodes=10) for i in range(4)])
        batcher = DynamicBatcher(max_batch_size=8, max_nodes=25)
        batch, _ = batcher.next_batch(queue, controller, 0.0)
        assert len(batch) == 2  # 10 + 10 fits, +10 would exceed 25

    def test_edge_budget_bounds_batch(self):
        # nodes=5 -> 4 chain edges per graph
        queue, controller = filled_queue([make_request(i, nodes=5) for i in range(4)])
        batcher = DynamicBatcher(max_batch_size=8, max_edges=9)
        batch, _ = batcher.next_batch(queue, controller, 0.0)
        assert len(batch) == 2

    def test_single_oversized_graph_still_served(self):
        queue, controller = filled_queue([make_request(0, nodes=100), make_request(1)])
        batcher = DynamicBatcher(max_batch_size=8, max_nodes=10)
        batch, _ = batcher.next_batch(queue, controller, 0.0)
        assert [r.request_id for r in batch] == [0]
        assert len(queue) == 1

    def test_expired_requests_popped_and_reported(self):
        requests = [
            make_request(0, arrival=0.0, deadline=0.1),
            make_request(1, arrival=0.0, deadline=10.0),
        ]
        queue, controller = filled_queue(requests)
        batch, expired = DynamicBatcher(max_batch_size=8).next_batch(queue, controller, 5.0)
        assert [r.request_id for r in expired] == [0]
        assert [r.request_id for r in batch] == [1]

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_nodes=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_edges=-1)
