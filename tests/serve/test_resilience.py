"""Serving under faults: retries, circuit breaking, OOM splitting, and the
no-silent-loss invariant (every request resolves to a response, a shed, or
an explicit failure)."""

import dataclasses

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.device import Device
from repro.faults import FaultPlan
from repro.models import graph_config
from repro.serve import (
    CircuitBreaker,
    DynamicBatcher,
    InferenceModel,
    RetryPolicy,
    ServeSimulator,
    bursty_trace,
    poisson_trace,
)


@pytest.fixture(scope="module")
def dataset():
    return enzymes(seed=0, num_graphs=24)


def inference_for(framework, dataset, seed=0):
    config = graph_config("gcn", in_dim=dataset.num_features, n_classes=dataset.num_classes)
    if framework == "pygx":
        from repro.pygx import build_model
    else:
        from repro.dglx import build_model
    return InferenceModel(
        framework, build_model(config, np.random.default_rng(seed)), config, "enzymes"
    )


class TestRetryPolicy:
    def test_exponential_delays(self):
        policy = RetryPolicy(max_retries=3, backoff=0.01, multiplier=2.0)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(1) == pytest.approx(0.02)
        assert policy.delay(2) == pytest.approx(0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1.0)
        for _ in range(2):
            breaker.record_failure(now=0.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(now=0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(now=0.5)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1.0)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.allow(now=1.5)  # cooldown elapsed: one probe allowed
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0)
        breaker.record_failure(now=0.0)
        breaker.allow(now=1.5)
        breaker.record_failure(now=1.5)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        assert not breaker.allow(now=2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


class TestBatchSplit:
    def test_split_halves_preserving_fifo(self):
        first, second = DynamicBatcher.split([1, 2, 3, 4, 5])
        assert first == [1, 2, 3]
        assert second == [4, 5]
        assert first + second == [1, 2, 3, 4, 5]

    def test_split_pair(self):
        assert DynamicBatcher.split([1, 2]) == ([1], [2])

    def test_split_requires_two(self):
        with pytest.raises(ValueError):
            DynamicBatcher.split([1])


def _resolved_invariant(result):
    assert result.completed + result.shed + result.failed == result.n_requests
    assert result.resolved == result.n_requests


class TestServingUnderFaults:
    def _replay(self, dataset, plan, framework="pygx", n=200, rate=800.0, **kwargs):
        simulator = ServeSimulator(
            inference_for(framework, dataset),
            DynamicBatcher(max_batch_size=16, max_nodes=4096),
            queue_capacity=64,
            device=Device(),
            fault_plan=plan,
            **kwargs,
        )
        return simulator.replay(dataset.graphs, poisson_trace(n, rate=rate, rng=0))

    def test_fault_free_plan_changes_nothing(self, dataset):
        clean = self._replay(dataset, None)
        nulled = self._replay(dataset, FaultPlan(seed=0))
        assert dataclasses.asdict(clean) == dataclasses.asdict(nulled)

    def test_transient_faults_absorbed_by_retry(self, dataset):
        result = self._replay(
            dataset, FaultPlan(seed=1, kernel_fault_rate=0.005)
        )
        _resolved_invariant(result)
        assert result.retries > 0
        # Retries absorb most transients: nearly everything completes.
        assert result.completed >= 0.9 * result.n_requests

    def test_oom_splits_batches_and_serves_both_halves(self, dataset):
        result = self._replay(dataset, FaultPlan(seed=1, oom_rate=0.002))
        _resolved_invariant(result)
        assert result.batch_splits > 0
        assert result.completed > 0

    def test_mixed_faults_no_request_silently_lost(self, dataset):
        """The satellite invariant, under every fault kind at once plus an
        admission-control overload (queue_full + deadline sheds)."""
        plan = FaultPlan(
            seed=3, oom_rate=0.002, kernel_fault_rate=0.005, stall_rate=0.02
        )
        simulator = ServeSimulator(
            inference_for("pygx", dataset),
            DynamicBatcher(max_batch_size=8, max_nodes=1024),
            queue_capacity=16,
            deadline=0.05,
            device=Device(),
            fault_plan=plan,
        )
        trace = bursty_trace(300, burst_size=100, burst_rate=20000.0, idle_gap=0.05, rng=1)
        result = simulator.replay(dataset.graphs, trace)
        _resolved_invariant(result)
        # Overloaded *and* faulted, yet shedding stays bounded: admission
        # control sheds the overflow, not the whole trace.  (The fault-free
        # version of this over-capacity burst already sheds ~2/3.)
        assert 0 < result.shed_fraction < 0.8
        assert result.completed > 0

    def test_failures_are_explicit_not_dropped(self, dataset):
        """With retries disabled every kernel fault becomes an explicit
        failure, and the breaker starts shedding at the dispatch point."""
        result = self._replay(
            dataset,
            FaultPlan(seed=1, kernel_fault_rate=0.3),
            retry_policy=RetryPolicy(max_retries=0),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=0.01),
        )
        _resolved_invariant(result)
        assert result.failed > 0
        assert result.failed_by_reason.get("kernel_fault", 0) == result.failed
        assert result.circuit_opens > 0
        assert result.shed_by_reason.get("circuit_open", 0) > 0

    def test_faulted_replay_is_deterministic(self, dataset):
        plan = FaultPlan(seed=5, oom_rate=0.02, kernel_fault_rate=0.02)
        a = self._replay(dataset, plan)
        b = self._replay(dataset, plan)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_goodput_degrades_gracefully_with_fault_rate(self, dataset):
        """More faults cost throughput, but service never collapses."""
        clean = self._replay(dataset, None)
        faulted = self._replay(
            dataset, FaultPlan(seed=1, oom_rate=0.002, kernel_fault_rate=0.005)
        )
        _resolved_invariant(faulted)
        assert faulted.goodput <= clean.goodput
        assert faulted.goodput > 0.5 * clean.goodput
