"""Serving metrics: percentiles, histogram, throughput, shed accounting."""

import numpy as np
import pytest

from repro.serve import InferenceResponse, ServerMetrics


def response(request_id, arrival, dispatch, completion, batch_size=1):
    return InferenceResponse(
        request_id=request_id,
        prediction=0,
        arrival_time=arrival,
        dispatch_time=dispatch,
        completion_time=completion,
        batch_size=batch_size,
    )


class TestResponseProperties:
    def test_latency_decomposition(self):
        r = response(0, arrival=1.0, dispatch=1.5, completion=2.0)
        assert r.latency == pytest.approx(1.0)
        assert r.queue_delay == pytest.approx(0.5)


class TestServerMetrics:
    def test_percentiles_from_known_latencies(self):
        metrics = ServerMetrics()
        metrics.record_batch(
            [response(i, 0.0, 0.0, (i + 1) / 100.0) for i in range(100)]
        )
        pct = metrics.latency_percentiles()
        latencies = np.arange(1, 101) / 100.0
        for p in (50.0, 95.0, 99.0):
            assert pct[p] == pytest.approx(float(np.percentile(latencies, p)))

    def test_empty_metrics_are_zero(self):
        metrics = ServerMetrics()
        assert metrics.latency_percentiles() == {50.0: 0.0, 95.0: 0.0, 99.0: 0.0}
        summary = metrics.summary("pygx", "gcn", "enzymes", 0, 0.0, 0.0, 0.0, {})
        assert summary.completed == 0
        assert summary.throughput == 0.0
        assert summary.mean_batch_size == 0.0

    def test_batch_size_histogram_and_mean(self):
        metrics = ServerMetrics()
        metrics.record_batch([response(0, 0, 0, 1), response(1, 0, 0, 1)])
        metrics.record_batch([response(2, 0, 0, 2)])
        metrics.record_batch([response(3, 0, 0, 3), response(4, 0, 0, 3)])
        summary = metrics.summary("pygx", "gcn", "enzymes", 5, 3.0, 0.0, 1.0, {})
        assert summary.batch_size_histogram == {2: 2, 1: 1}
        assert summary.mean_batch_size == pytest.approx((2 + 1 + 2) / 3)

    def test_shed_accounting_by_reason(self):
        metrics = ServerMetrics()
        metrics.record_shed("queue_full")
        metrics.record_shed("queue_full")
        metrics.record_shed("deadline", count=3)
        assert metrics.shed == 5
        summary = metrics.summary("pygx", "gcn", "enzymes", 10, 1.0, 0.0, 1.0, {})
        assert summary.shed_by_reason == {"queue_full": 2, "deadline": 3}
        assert summary.shed_fraction == pytest.approx(0.5)

    def test_throughput_is_completed_per_elapsed(self):
        metrics = ServerMetrics()
        metrics.record_batch([response(i, 0, 0, 1) for i in range(6)])
        summary = metrics.summary("pygx", "gcn", "enzymes", 6, 2.0, 0.0, 1.0, {})
        assert summary.throughput == pytest.approx(3.0)

    def test_queue_depth_samples(self):
        metrics = ServerMetrics()
        for depth in (0, 3, 7, 2):
            metrics.sample_queue_depth(depth)
        summary = metrics.summary("pygx", "gcn", "enzymes", 0, 1.0, 0.0, 1.0, {})
        assert summary.max_queue_depth == 7
        assert summary.mean_queue_depth == pytest.approx(3.0)

    def test_p_properties_match_percentile_dict(self):
        metrics = ServerMetrics()
        metrics.record_batch([response(i, 0.0, 0.0, 0.5) for i in range(4)])
        summary = metrics.summary("pygx", "gcn", "enzymes", 4, 1.0, 0.0, 1.0, {})
        assert summary.p50 == summary.latency_percentiles[50.0] == pytest.approx(0.5)
        assert summary.p95 == pytest.approx(0.5)
        assert summary.p99 == pytest.approx(0.5)
