"""Latency percentile estimators on degenerate windows.

Regression tests for the 0- and 1-sample edge cases: the classic
nearest-rank formula indexes past the end of an empty window and is
ambiguous at p=0, and interpolating estimators are undefined on a single
observation.  These cases are exactly what a mid-run control loop (the
fleet autoscaler) feeds the estimators, so they must stay well-defined.
"""

import numpy as np
import pytest

from repro.serve.metrics import (
    LATENCY_PERCENTILES,
    ServerMetrics,
    nearest_rank_percentile,
)
from repro.serve.request import InferenceResponse


def _response(request_id, latency):
    return InferenceResponse(
        request_id=request_id, prediction=0, arrival_time=0.0,
        dispatch_time=0.0, completion_time=latency, batch_size=1,
    )


class TestNearestRankPercentile:
    def test_empty_window_reports_zero(self):
        assert nearest_rank_percentile([], 99.0) == 0.0
        assert nearest_rank_percentile([], 0.0) == 0.0

    def test_single_sample_is_every_percentile(self):
        for p in (0.0, 50.0, 99.0, 100.0):
            assert nearest_rank_percentile([0.7], p) == 0.7

    def test_known_values(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert nearest_rank_percentile(values, 50.0) == 0.3
        assert nearest_rank_percentile(values, 95.0) == 0.5
        assert nearest_rank_percentile(values, 20.0) == 0.1

    def test_edges_are_pinned(self):
        values = [0.3, 0.1, 0.2]
        assert nearest_rank_percentile(values, 0.0) == 0.1
        assert nearest_rank_percentile(values, 100.0) == 0.3

    def test_result_is_an_observed_value(self):
        values = [0.1, 0.9]
        for p in (25.0, 50.0, 75.0, 99.0):
            assert nearest_rank_percentile(values, p) in values

    def test_input_order_does_not_matter(self):
        assert nearest_rank_percentile([0.5, 0.1, 0.3], 50.0) == 0.3

    @pytest.mark.parametrize("p", [-0.1, 100.1, 200.0])
    def test_out_of_range_percentile_rejected(self, p):
        with pytest.raises(ValueError, match="percentile"):
            nearest_rank_percentile([0.1], p)


class TestLatencyPercentiles:
    def test_no_responses_reports_zeros(self):
        assert ServerMetrics().latency_percentiles() == {
            p: 0.0 for p in LATENCY_PERCENTILES
        }

    def test_single_response_is_every_percentile(self):
        metrics = ServerMetrics()
        metrics.record_batch([_response(0, 0.42)])
        percentiles = metrics.latency_percentiles()
        assert set(percentiles) == set(LATENCY_PERCENTILES)
        assert all(v == pytest.approx(0.42) for v in percentiles.values())

    def test_multi_sample_percentiles_are_ordered(self):
        metrics = ServerMetrics()
        metrics.record_batch([_response(i, 0.01 * (i + 1)) for i in range(100)])
        percentiles = metrics.latency_percentiles()
        assert percentiles[50.0] <= percentiles[95.0] <= percentiles[99.0]
        assert percentiles[50.0] == pytest.approx(
            float(np.percentile(np.arange(1, 101) * 0.01, 50.0))
        )


class TestWindowLatencyPercentiles:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            ServerMetrics().window_latency_percentiles(0)
        with pytest.raises(ValueError, match="window"):
            ServerMetrics().window_latency_percentiles(-4)

    def test_empty_history_reports_zeros(self):
        assert ServerMetrics().window_latency_percentiles(16) == {
            p: 0.0 for p in LATENCY_PERCENTILES
        }

    def test_single_response_window(self):
        metrics = ServerMetrics()
        metrics.record_batch([_response(0, 0.2)])
        assert metrics.window_latency_percentiles(16) == {
            p: pytest.approx(0.2) for p in LATENCY_PERCENTILES
        }

    def test_window_sees_only_the_most_recent_responses(self):
        metrics = ServerMetrics()
        metrics.record_batch([_response(i, 10.0) for i in range(5)])
        metrics.record_batch([_response(5 + i, 0.1) for i in range(5)])
        windowed = metrics.window_latency_percentiles(5)
        assert windowed[99.0] == pytest.approx(0.1)
        # The full history still carries the slow head.
        assert metrics.window_latency_percentiles(10)[99.0] == pytest.approx(10.0)

    def test_window_larger_than_history_uses_everything(self):
        metrics = ServerMetrics()
        metrics.record_batch([_response(0, 0.1), _response(1, 0.3)])
        assert metrics.window_latency_percentiles(100)[99.0] == pytest.approx(0.3)
