"""Overlapped serving: async forwards on a compute stream."""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.device import Device, use_device
from repro.models import graph_config
from repro.serve import InferenceModel, ServeSimulator, poisson_trace


@pytest.fixture(scope="module")
def setup():
    dataset = enzymes(seed=0, num_graphs=64)
    config = graph_config("gcn", in_dim=dataset.num_features,
                          n_classes=dataset.num_classes)
    device = Device()
    with use_device(device):
        from repro.pygx import build_model

        model = build_model(config, np.random.default_rng(0))
    return dataset, config, model


def _replay(setup, overlap, n_requests=150, rate=400.0):
    dataset, config, model = setup
    inference = InferenceModel("pygx", model, config, "enzymes")
    simulator = ServeSimulator(inference, device=Device(), overlap=overlap)
    trace = poisson_trace(n_requests, rate=rate, rng=np.random.default_rng(7))
    return simulator.replay(dataset.graphs, trace)


class TestOverlapServing:
    def test_all_requests_resolve(self, setup):
        result = _replay(setup, overlap=True)
        assert result.completed + result.shed + result.failed == result.n_requests

    def test_same_outcomes_as_serial(self, setup):
        serial = _replay(setup, overlap=False)
        overlapped = _replay(setup, overlap=True)
        assert overlapped.completed == serial.completed
        assert overlapped.shed == serial.shed
        assert overlapped.failed == serial.failed

    def test_latency_no_worse_than_serial(self, setup):
        serial = _replay(setup, overlap=False)
        overlapped = _replay(setup, overlap=True)
        assert overlapped.mean_latency <= serial.mean_latency + 1e-9

    def test_uses_compute_stream(self, setup):
        dataset, config, model = setup
        inference = InferenceModel("pygx", model, config, "enzymes")
        device = Device()
        simulator = ServeSimulator(inference, device=device, overlap=True)
        trace = poisson_trace(20, rate=400.0, rng=np.random.default_rng(7))
        simulator.replay(dataset.graphs, trace)
        compute = device.stream("compute")
        assert compute.busy > 0.0
        # The end-of-replay synchronize drains the stream into elapsed.
        assert compute.ready <= device.clock.elapsed + 1e-12
        assert device.clock.gpu_busy <= device.clock.elapsed + 1e-12

    def test_serial_path_untouched_by_flag_default(self, setup):
        dataset, config, model = setup
        inference = InferenceModel("pygx", model, config, "enzymes")
        device = Device()
        simulator = ServeSimulator(inference, device=device)
        trace = poisson_trace(20, rate=400.0, rng=np.random.default_rng(7))
        simulator.replay(dataset.graphs, trace)
        assert device.stream_names() == {0: "default"}
