"""Bounded queue and admission-control semantics."""

import numpy as np
import pytest

from repro.graph import GraphSample
from repro.serve import AdmissionController, InferenceRequest, Overloaded, RequestQueue


def make_request(request_id=0, arrival=0.0, deadline=None, nodes=4):
    edge_index = np.array([[i for i in range(nodes - 1)], [i + 1 for i in range(nodes - 1)]])
    sample = GraphSample(edge_index, np.ones((nodes, 3), dtype=np.float32), y=0)
    return InferenceRequest(request_id, sample, arrival, deadline)


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue(capacity=4)
        for i in range(3):
            queue.push(make_request(i))
        assert [queue.pop().request_id for _ in range(3)] == [0, 1, 2]

    def test_push_beyond_capacity_raises_typed_overloaded(self):
        queue = RequestQueue(capacity=2)
        queue.push(make_request(0))
        queue.push(make_request(1))
        with pytest.raises(Overloaded) as exc_info:
            queue.push(make_request(2))
        assert exc_info.value.reason == "queue_full"
        assert exc_info.value.queue_depth == 2
        assert len(queue) == 2  # rejection does not mutate the queue

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            RequestQueue(capacity=1).pop()

    def test_peek_does_not_remove(self):
        queue = RequestQueue(capacity=2)
        queue.push(make_request(7))
        assert queue.peek().request_id == 7
        assert len(queue) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RequestQueue(capacity=0)


class TestAdmissionController:
    def test_admit_enqueues(self):
        queue = RequestQueue(capacity=2)
        controller = AdmissionController(queue)
        controller.admit(make_request(0), now=0.0)
        assert len(queue) == 1

    def test_default_deadline_applied(self):
        queue = RequestQueue(capacity=2)
        controller = AdmissionController(queue, default_deadline=0.5)
        request = make_request(0, arrival=1.0)
        controller.admit(request, now=1.0)
        assert request.deadline == 0.5

    def test_explicit_deadline_kept(self):
        controller = AdmissionController(RequestQueue(capacity=2), default_deadline=0.5)
        request = make_request(0, deadline=2.0)
        controller.admit(request, now=0.0)
        assert request.deadline == 2.0

    def test_expired_on_arrival_is_shed_as_deadline(self):
        controller = AdmissionController(RequestQueue(capacity=2), default_deadline=0.1)
        with pytest.raises(Overloaded) as exc_info:
            controller.admit(make_request(0, arrival=0.0), now=5.0)
        assert exc_info.value.reason == "deadline"

    def test_still_live_vs_expired(self):
        controller = AdmissionController(RequestQueue(capacity=2))
        request = make_request(0, arrival=0.0, deadline=1.0)
        assert controller.still_live(request, now=0.5)
        assert not controller.still_live(request, now=1.5)

    def test_no_deadline_never_expires(self):
        request = make_request(0, arrival=0.0, deadline=None)
        assert not request.expired(now=1e9)
