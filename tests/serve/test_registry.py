"""Model registry: checkpoint loading, eval mode, framework-uniform predict."""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.models import graph_config
from repro.serve import InferenceModel, ModelRegistry
from repro.tensor import no_grad
from repro.train import checkpoint_name, save_checkpoint


@pytest.fixture()
def dataset():
    return enzymes(seed=0, num_graphs=12)


def build(framework, config, seed=0):
    if framework == "pygx":
        from repro.pygx import build_model
    else:
        from repro.dglx import build_model
    return build_model(config, np.random.default_rng(seed))


@pytest.fixture()
def config(dataset):
    return graph_config("gcn", in_dim=dataset.num_features, n_classes=dataset.num_classes)


class TestInferenceModel:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_predict_shape_and_range(self, framework, dataset, config):
        inference = InferenceModel(framework, build(framework, config), config, "enzymes")
        predictions = inference.predict(dataset.graphs[:5])
        assert predictions.shape == (5,)
        assert np.all((predictions >= 0) & (predictions < dataset.num_classes))

    def test_model_put_in_eval_mode(self, dataset, config):
        model = build("pygx", config)
        assert model.training
        InferenceModel("pygx", model, config, "enzymes")
        assert not model.training

    def test_collate_charged_to_data_loading_phase(self, fresh_device, dataset, config):
        inference = InferenceModel("pygx", build("pygx", config), config, "enzymes")
        inference.predict(dataset.graphs[:4])
        phases = fresh_device.clock.phase_elapsed
        assert phases.get("data_loading", 0.0) > 0.0
        assert phases.get("forward", 0.0) > 0.0

    def test_forward_is_gradient_free(self, dataset, config):
        inference = InferenceModel("pygx", build("pygx", config), config, "enzymes")
        logits = inference.forward(inference.collate(dataset.graphs[:3]))
        assert not logits.requires_grad

    def test_unknown_framework_rejected(self, config):
        with pytest.raises(ValueError):
            InferenceModel("tfx", build("pygx", config), config, "enzymes")

    def test_empty_predict_rejected(self, dataset, config):
        inference = InferenceModel("pygx", build("pygx", config), config, "enzymes")
        with pytest.raises(ValueError):
            inference.predict([])


class TestModelRegistry:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_checkpoint_roundtrip_matches_source_model(
        self, framework, dataset, config, tmp_path
    ):
        model = build(framework, config, seed=3)
        path = tmp_path / checkpoint_name(framework, "gcn", "enzymes")
        save_checkpoint(model, path)

        registry = ModelRegistry()
        registry.register_checkpoint(framework, "gcn", "enzymes", path, config=config)
        inference = registry.get(framework, "gcn", "enzymes")

        model.eval()
        with no_grad():
            expected = np.argmax(model(inference.collate(dataset.graphs[:6])).data, axis=1)
        np.testing.assert_array_equal(inference.predict(dataset.graphs[:6]), expected)

    def test_lazy_load_cached(self, dataset, config, tmp_path):
        path = tmp_path / "m.npz"
        save_checkpoint(build("pygx", config), path)
        registry = ModelRegistry()
        registry.register_checkpoint("pygx", "gcn", "enzymes", path, config=config)
        assert registry.get("pygx", "gcn", "enzymes") is registry.get("pygx", "gcn", "enzymes")

    def test_register_in_memory(self, config):
        registry = ModelRegistry()
        returned = registry.register("pygx", "gcn", "enzymes", build("pygx", config), config)
        assert registry.get("pygx", "GCN", "ENZYMES") is returned  # case-insensitive key

    def test_unknown_key_lists_known(self, config):
        registry = ModelRegistry()
        registry.register("pygx", "gcn", "enzymes", build("pygx", config), config)
        with pytest.raises(KeyError, match="pygx"):
            registry.get("dglx", "gcn", "enzymes")

    def test_contains_and_len(self, config, tmp_path):
        registry = ModelRegistry()
        assert ("pygx", "gcn", "enzymes") not in registry
        registry.register("pygx", "gcn", "enzymes", build("pygx", config), config)
        path = tmp_path / "d.npz"
        save_checkpoint(build("dglx", config), path)
        registry.register_checkpoint("dglx", "gcn", "enzymes", path, config=config)
        assert ("pygx", "gcn", "enzymes") in registry
        assert ("dglx", "gcn", "enzymes") in registry
        assert len(registry) == 2
