"""End-to-end serving simulation: traces, batching, shedding, phases."""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.models import graph_config
from repro.serve import (
    DynamicBatcher,
    InferenceModel,
    ServeSimulator,
    bursty_trace,
    poisson_trace,
)


@pytest.fixture(scope="module")
def dataset():
    return enzymes(seed=0, num_graphs=24)


def inference_for(framework, dataset, seed=0):
    config = graph_config("gcn", in_dim=dataset.num_features, n_classes=dataset.num_classes)
    if framework == "pygx":
        from repro.pygx import build_model
    else:
        from repro.dglx import build_model
    return InferenceModel(framework, build_model(config, np.random.default_rng(seed)), config, "enzymes")


class TestTraces:
    def test_poisson_trace_shape_and_rate(self):
        trace = poisson_trace(2000, rate=100.0, rng=0)
        assert trace.shape == (2000,)
        assert np.all(np.diff(trace) >= 0)
        # mean inter-arrival ~ 1/rate
        assert np.mean(np.diff(trace)) == pytest.approx(0.01, rel=0.2)

    def test_poisson_trace_seed_reproducible(self):
        np.testing.assert_array_equal(
            poisson_trace(50, 10.0, rng=3), poisson_trace(50, 10.0, rng=3)
        )

    def test_bursty_trace_has_idle_gaps(self):
        trace = bursty_trace(60, burst_size=20, burst_rate=1000.0, idle_gap=1.0, rng=0)
        assert trace.shape == (60,)
        gaps = np.diff(trace)
        assert np.sum(gaps > 1.0) == 2  # two inter-burst gaps in three bursts
        assert np.all(gaps >= 0)

    def test_invalid_trace_parameters(self):
        with pytest.raises(ValueError):
            poisson_trace(0, 10.0)
        with pytest.raises(ValueError):
            poisson_trace(10, 0.0)
        with pytest.raises(ValueError):
            bursty_trace(10, burst_size=0, burst_rate=1.0, idle_gap=0.1)


class TestServeSimulator:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_low_load_serves_everything(self, framework, dataset):
        simulator = ServeSimulator(inference_for(framework, dataset), queue_capacity=64)
        result = simulator.replay(dataset.graphs, poisson_trace(40, rate=50.0, rng=0))
        assert result.completed == 40
        assert result.shed == 0
        assert result.n_requests == 40
        assert result.framework == framework
        assert result.p50 > 0.0
        assert result.p50 <= result.p95 <= result.p99
        # low load means the server mostly waits
        assert result.busy_fraction < 1.0
        assert result.phase_times.get("idle", 0.0) > 0.0

    def test_phase_breakdown_matches_training_phases(self, dataset):
        simulator = ServeSimulator(inference_for("pygx", dataset), queue_capacity=64)
        result = simulator.replay(dataset.graphs, poisson_trace(30, rate=200.0, rng=1))
        assert result.phase_times["data_loading"] > 0.0
        assert result.phase_times["forward"] > 0.0
        assert result.gpu_utilization > 0.0

    def test_dynamic_batching_beats_unbatched_under_load(self, dataset):
        inference = inference_for("pygx", dataset)
        trace = poisson_trace(300, rate=3000.0, rng=2)
        unbatched = ServeSimulator(
            inference, DynamicBatcher(max_batch_size=1), queue_capacity=64
        ).replay(dataset.graphs, trace)
        batched = ServeSimulator(
            inference, DynamicBatcher(max_batch_size=32), queue_capacity=64
        ).replay(dataset.graphs, trace)
        assert batched.throughput > unbatched.throughput
        assert batched.mean_batch_size > 1.0
        assert batched.p99 < unbatched.p99

    def test_overload_sheds_and_queue_stays_bounded(self, dataset):
        trace = bursty_trace(200, burst_size=100, burst_rate=50000.0, idle_gap=0.01, rng=3)
        simulator = ServeSimulator(
            inference_for("pygx", dataset),
            DynamicBatcher(max_batch_size=4),
            queue_capacity=16,
        )
        result = simulator.replay(dataset.graphs, trace)
        assert result.shed_by_reason.get("queue_full", 0) > 0
        assert result.max_queue_depth <= 16
        assert result.completed + result.shed == 200

    def test_deadline_expiry_shed_at_dispatch(self, dataset):
        # One lone arrival, then a burst far in the future: the first batch
        # is served, and by the time the burst queue drains some requests
        # have outlived a very tight deadline.
        simulator = ServeSimulator(
            inference_for("pygx", dataset),
            DynamicBatcher(max_batch_size=1),
            queue_capacity=256,
            deadline=0.002,
        )
        trace = np.concatenate([[0.0], np.full(50, 0.01)])
        result = simulator.replay(dataset.graphs, trace)
        assert result.shed_by_reason.get("deadline", 0) > 0
        assert result.completed + result.shed == 51

    def test_accounting_is_complete(self, dataset):
        trace = poisson_trace(100, rate=5000.0, rng=4)
        simulator = ServeSimulator(
            inference_for("pygx", dataset),
            DynamicBatcher(max_batch_size=8),
            queue_capacity=8,
        )
        result = simulator.replay(dataset.graphs, trace)
        assert result.completed + result.shed == result.n_requests
        assert result.completed == sum(
            size * count for size, count in result.batch_size_histogram.items()
        )

    def test_empty_or_unsorted_trace_rejected(self, dataset):
        simulator = ServeSimulator(inference_for("pygx", dataset))
        with pytest.raises(ValueError):
            simulator.replay(dataset.graphs, [])
        with pytest.raises(ValueError):
            simulator.replay(dataset.graphs, [1.0, 0.5])
        with pytest.raises(ValueError):
            simulator.replay([], [0.0])

    def test_responses_cycle_over_samples_deterministically(self, dataset):
        inference = inference_for("pygx", dataset)
        trace = poisson_trace(20, rate=100.0, rng=5)
        first = ServeSimulator(inference, queue_capacity=32).replay(dataset.graphs, trace)
        second = ServeSimulator(inference, queue_capacity=32).replay(dataset.graphs, trace)
        assert first.latency_percentiles == second.latency_percentiles
        assert first.throughput == pytest.approx(second.throughput)
