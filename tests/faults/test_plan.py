"""FaultPlan / FaultInjector: validation, determinism, stream independence."""

import numpy as np
import pytest

from repro.device import Device, OutOfMemoryError
from repro.faults import FaultError, FaultPlan, KernelFault


class TestFaultPlanValidation:
    @pytest.mark.parametrize("field", ["oom_rate", "kernel_fault_rate", "stall_rate"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: value})

    def test_negative_stall_seconds_rejected(self):
        with pytest.raises(ValueError, match="stall_seconds"):
            FaultPlan(stall_seconds=-1.0)

    def test_negative_max_faults_rejected(self):
        with pytest.raises(ValueError, match="max_faults"):
            FaultPlan(max_faults=-1)

    def test_kernel_fault_is_a_fault_error(self):
        err = KernelFault("spmm", 7)
        assert isinstance(err, FaultError)
        assert err.kernel == "spmm"
        assert err.index == 7
        assert "spmm" in str(err)


def _launch_decisions(plan, n, device=None):
    """Run ``n`` launches through a fresh injector; True = fault injected."""
    device = device or Device()
    injector = plan.start()
    decisions = []
    for _ in range(n):
        try:
            injector.on_launch(device, "k")
            decisions.append(False)
        except KernelFault:
            decisions.append(True)
    return decisions, injector


def _alloc_decisions(injector, device, n):
    decisions = []
    for _ in range(n):
        try:
            injector.on_alloc(device.memory, 1024)
            decisions.append(False)
        except OutOfMemoryError:
            decisions.append(True)
    return decisions


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan(seed=7, kernel_fault_rate=0.3)
        a, _ = _launch_decisions(plan, 200)
        b, _ = _launch_decisions(plan, 200)
        assert a == b
        assert any(a) and not all(a)

    def test_different_seeds_differ(self):
        a, _ = _launch_decisions(FaultPlan(seed=0, kernel_fault_rate=0.3), 200)
        b, _ = _launch_decisions(FaultPlan(seed=1, kernel_fault_rate=0.3), 200)
        assert a != b

    def test_alloc_stream_independent_of_launch_count(self):
        """The alloc schedule must not shift when launches consume RNG."""
        plan = FaultPlan(seed=3, oom_rate=0.3, kernel_fault_rate=0.3)
        device = Device()

        quiet = plan.start()
        baseline = _alloc_decisions(quiet, device, 100)

        noisy = plan.start()
        for _ in range(57):  # different launch history...
            try:
                noisy.on_launch(device, "k")
            except KernelFault:
                pass
        assert _alloc_decisions(noisy, device, 100) == baseline  # ...same allocs


class TestStatsAndBudget:
    def test_stats_count_events_and_injections(self):
        plan = FaultPlan(seed=0, kernel_fault_rate=0.5)
        decisions, injector = _launch_decisions(plan, 100)
        assert injector.stats.launches_seen == 100
        assert injector.stats.kernel_faults_injected == sum(decisions)
        assert injector.stats.errors_injected == sum(decisions)
        assert injector.stats.ooms_injected == 0

    def test_max_faults_caps_errors_not_stalls(self):
        plan = FaultPlan(
            seed=0, kernel_fault_rate=1.0, stall_rate=1.0, max_faults=3
        )
        decisions, injector = _launch_decisions(plan, 50)
        assert sum(decisions) == 3
        assert injector.stats.errors_injected == 3
        # Stalls keep firing after the error budget is spent.
        assert injector.stats.stalls_injected == 50

    def test_zero_rate_plan_is_a_no_op(self):
        device = Device()
        decisions, injector = _launch_decisions(FaultPlan(), 20, device)
        assert not any(decisions)
        assert _alloc_decisions(injector, device, 20) == [False] * 20

    def test_stall_charges_host_time(self):
        device = Device()
        plan = FaultPlan(seed=0, stall_rate=1.0, stall_seconds=0.5)
        injector = plan.start()
        before = device.clock.elapsed
        injector.on_launch(device, "k")
        assert device.clock.elapsed - before == pytest.approx(0.5)
        assert injector.stats.stall_seconds_total == pytest.approx(0.5)

    def test_kernel_fault_charges_launch_overhead(self):
        """A failed launch still burns dispatch time on the host."""
        device = Device()
        injector = FaultPlan(seed=0, kernel_fault_rate=1.0).start()
        before = device.clock.elapsed
        with pytest.raises(KernelFault):
            injector.on_launch(device, "k")
        assert device.clock.elapsed - before == pytest.approx(
            device.spec.launch_overhead
        )
