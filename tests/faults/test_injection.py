"""Device/MemoryPool fault hooks and the OOM diagnostics they rely on."""

import numpy as np
import pytest

from repro.device import Device, OutOfMemoryError, use_device
from repro.device.memory import MemoryPool
from repro.faults import FaultPlan, KernelFault


class TestInjectingContext:
    def test_installs_and_removes_hooks(self):
        device = Device()
        plan = FaultPlan(seed=0)
        assert device.faults is None
        with device.injecting(plan) as injector:
            assert device.faults is injector
            assert device.memory.injector is injector
        assert device.faults is None
        assert device.memory.injector is None

    def test_hooks_removed_even_on_error(self):
        device = Device()
        with pytest.raises(RuntimeError, match="boom"):
            with device.injecting(FaultPlan()):
                raise RuntimeError("boom")
        assert device.faults is None
        assert device.memory.injector is None

    def test_nested_injection_rejected(self):
        device = Device()
        with device.injecting(FaultPlan()):
            with pytest.raises(RuntimeError, match="active fault injector"):
                with device.injecting(FaultPlan()):
                    pass

    def test_accepts_prebuilt_injector(self):
        """A started injector can be reinstalled, keeping its decision
        stream across installs (what fault-tolerant training relies on)."""
        device = Device()
        injector = FaultPlan(seed=0, kernel_fault_rate=1.0).start()
        with device.injecting(injector):
            with pytest.raises(KernelFault):
                device.launch("k")
        with device.injecting(injector):
            with pytest.raises(KernelFault):
                device.launch("k")
        assert injector.stats.kernel_faults_injected == 2

    def test_launch_unaffected_without_injector(self):
        device = Device()
        device.launch("k")  # must not raise


class TestLaunchInjection:
    def test_certain_kernel_fault_raises_from_launch(self):
        device = Device()
        with device.injecting(FaultPlan(seed=0, kernel_fault_rate=1.0)) as inj:
            with pytest.raises(KernelFault) as exc:
                device.launch("spmm_csr")
        assert exc.value.kernel == "spmm_csr"
        assert inj.stats.kernel_faults_injected == 1

    def test_stalls_slow_the_clock_but_do_not_raise(self):
        device = Device()
        plan = FaultPlan(seed=0, stall_rate=1.0, stall_seconds=0.01)
        before = device.clock.elapsed
        with device.injecting(plan) as inj:
            for _ in range(5):
                device.launch("k")
        stalled = device.clock.elapsed - before
        assert inj.stats.stalls_injected == 5
        assert stalled >= 5 * 0.01

    def test_tensor_ops_hit_the_alloc_hook(self):
        """Injected OOM surfaces through ordinary tensor allocation."""
        device = Device()
        with use_device(device):
            from repro.tensor import Tensor

            with device.injecting(FaultPlan(seed=0, oom_rate=1.0)):
                with pytest.raises(OutOfMemoryError, match="injected"):
                    Tensor(np.zeros((64,), np.float32))


class TestOOMDiagnostics:
    """The OOM message must carry usage, capacity and the requested size."""

    def test_real_oom_message_fields(self):
        pool = MemoryPool(1000)
        pool.alloc(600)
        with pytest.raises(OutOfMemoryError) as exc:
            pool.alloc(500)
        message = str(exc.value)
        assert "requested 500 bytes" in message
        assert "600 in use" in message
        assert "1000 capacity" in message
        assert "400 free" in message

    def test_injected_oom_message_fields(self):
        pool = MemoryPool(2048)
        pool.alloc(48)
        injector = FaultPlan(seed=0, oom_rate=1.0).start()
        pool.injector = injector
        with pytest.raises(OutOfMemoryError) as exc:
            pool.alloc(100)
        message = str(exc.value)
        assert message.startswith("injected")
        assert "requested 100 bytes" in message
        assert "48 in use" in message
        assert "2048 capacity" in message
        assert "2000 free" in message

    def test_injected_oom_does_not_reserve_bytes(self):
        pool = MemoryPool(2048)
        pool.injector = FaultPlan(seed=0, oom_rate=1.0).start()
        with pytest.raises(OutOfMemoryError):
            pool.alloc(100)
        assert pool.current == 0
